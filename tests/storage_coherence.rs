//! Storage-backend coherence: the terrain pipeline must be **bit-identical**
//! over owned and mapped storage. The same graph served from an in-memory
//! [`CsrGraph`] and from a binary v3 snapshot behind [`MappedCsrGraph`] has
//! to produce exact `==` trees, layout rectangles, mesh buffers and SVG
//! bytes — for a vertex measure and an edge measure, across
//! [`Parallelism::Serial`] and `Threads(2)`. The storage backend is a
//! residency decision, never a semantic one.

use graph_terrain::prelude::*;
use proptest::prelude::*;
use ugraph::generators::barabasi_albert;
use ugraph::io::{encode_binary_v3, write_binary_v3_file, MappedCsrGraph};
use ugraph::par::Parallelism;

/// Exact equality of every stage output of two sessions.
fn assert_sessions_identical(
    a: &mut TerrainPipeline<'_>,
    b: &mut TerrainPipeline<'_>,
    context: &str,
) {
    assert_eq!(a.svg().unwrap(), b.svg().unwrap(), "{context}: svg");
    let sa = a.stages().unwrap();
    let sb = b.stages().unwrap();
    assert_eq!(sa.super_tree.node_count(), sb.super_tree.node_count(), "{context}: super tree");
    assert_eq!(sa.super_tree.scalars(), sb.super_tree.scalars(), "{context}: super scalars");
    assert_eq!(sa.render_tree.node_count(), sb.render_tree.node_count(), "{context}: render tree");
    assert_eq!(sa.layout.rects, sb.layout.rects, "{context}: layout rects");
    assert_eq!(sa.mesh.vertices, sb.mesh.vertices, "{context}: mesh vertices");
    assert_eq!(sa.mesh.triangles, sb.mesh.triangles, "{context}: mesh triangles");
}

/// One vertex measure and one edge measure, so both tree algorithms run.
fn measures() -> [Measure; 2] {
    [Measure::KCore, Measure::EdgeTriangles]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn owned_and_mapped_storage_yield_identical_terrains(
        (n, m, seed) in (8usize..48, 2usize..4, 0u64..1_000),
    ) {
        let graph = barabasi_albert(n, m, seed);
        // Round-trip through the v3 snapshot encoding into the zero-copy
        // mapped representation (heap-backed here; the mmap syscall path is
        // covered by the deterministic test below — both hand out the same
        // `MappedBytes` view).
        let blob = encode_binary_v3(&graph, None).unwrap();
        let mapped = MappedCsrGraph::from_bytes(&blob).unwrap();
        prop_assert!(mapped.is_zero_copy(), "round-trip fell back to eager decode");

        for measure in measures() {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
                let mut owned = TerrainPipeline::from_measure(&graph, measure.clone());
                owned.set_parallelism(parallelism);
                let mut via_mapped = TerrainPipeline::from_measure(&mapped, measure.clone());
                via_mapped.set_parallelism(parallelism);
                let context =
                    format!("measure {measure:?}, parallelism {parallelism}, n={n} m={m} seed={seed}");
                assert_sessions_identical(&mut owned, &mut via_mapped, &context);
            }
        }
    }
}

#[test]
fn open_mapped_session_matches_owned_end_to_end() {
    // The file-backed path: write a v3 snapshot to disk, reopen it through
    // `TerrainPipeline::open_mapped` (a live kernel mapping on Unix), and
    // demand the identical artifact the owned graph produces.
    let graph = barabasi_albert(64, 3, 7);
    let path = std::env::temp_dir()
        .join(format!("graph-terrain-storage-coherence-{}.gtsb", std::process::id()));
    write_binary_v3_file(&graph, None, &path).unwrap();

    for measure in measures() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
            let mut owned = TerrainPipeline::from_measure(&graph, measure.clone());
            owned.set_parallelism(parallelism);
            let mut mapped = TerrainPipeline::open_mapped(&path, measure.clone()).unwrap();
            mapped.set_parallelism(parallelism);
            let context = format!("measure {measure:?}, parallelism {parallelism}");
            assert_sessions_identical(&mut owned, &mut mapped, &context);
        }
    }
    std::fs::remove_file(&path).unwrap();
}
