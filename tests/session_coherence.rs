//! Cache-coherence property test for the staged [`TerrainPipeline`] session:
//! **any** sequence of staged mutations (`set_color` → `set_layout` →
//! `set_simplification` → …), with the pipeline forced to the SVG stage after
//! every step so each mutation really exercises cache invalidation, must
//! leave the session bit-identical to a from-scratch build with the final
//! settings — exact `==` on tree node counts and scalars, layout rectangles,
//! mesh vertices and triangles, and the SVG text — for both vertex and edge
//! fields, across [`Parallelism::Serial`] and `Threads(2)`.

use graph_terrain::prelude::*;
use proptest::collection;
use proptest::prelude::*;
use terrain::{role_palette, ColorScheme, LayoutConfig};
use ugraph::generators::barabasi_albert;
use ugraph::par::Parallelism;
use ugraph::CsrGraph;

/// One staged mutation: `(knob, variant)` indices drawn by proptest.
type Op = (u8, u8);

/// The settings a session ends up with after replaying a mutation sequence.
/// `u8` variant indices; every knob starts at variant 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Settings {
    scalar: u8,
    simplification: u8,
    layout: u8,
    color: u8,
    svg: u8,
    parallelism: u8,
}

impl Settings {
    fn apply(&mut self, (knob, variant): Op) {
        match knob {
            0 => self.color = variant,
            1 => self.layout = variant,
            2 => self.simplification = variant,
            3 => self.svg = variant,
            4 => self.scalar = variant,
            _ => self.parallelism = variant,
        }
    }
}

/// Deterministic scalar field with ties: variant changes the level pattern.
fn scalar_field(variant: u8, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(variant as u64 * 97) % 7) as f64
        })
        .collect()
}

fn layout_config(variant: u8) -> LayoutConfig {
    match variant {
        0 => LayoutConfig::default(),
        1 => LayoutConfig { width: 2.0, height: 1.5, margin_fraction: 0.04 },
        _ => LayoutConfig { width: 0.8, height: 1.2, margin_fraction: 0.1 },
    }
}

fn simplification_config(variant: u8) -> SimplificationConfig {
    match variant {
        0 => SimplificationConfig::default(),
        1 => SimplificationConfig::disabled(),
        // A budget of 4 forces simplification on almost every generated tree.
        _ => SimplificationConfig { node_budget: Some(4), levels: 3 },
    }
}

fn color_scheme(variant: u8, element_count: usize) -> ColorScheme {
    match variant {
        0 => ColorScheme::ByHeight,
        1 => ColorScheme::BySecondaryScalar((0..element_count).map(|i| (i % 5) as f64).collect()),
        _ => ColorScheme::ByClass {
            classes: (0..element_count).map(|i| i % 4).collect(),
            palette: role_palette(),
        },
    }
}

fn svg_size(variant: u8) -> SvgSize {
    match variant {
        0 => SvgSize::default(),
        1 => SvgSize::new(400.0, 300.0),
        _ => SvgSize::new(640.0, 480.0),
    }
}

fn parallelism(variant: u8) -> Parallelism {
    match variant {
        0 => Parallelism::Serial,
        1 => Parallelism::Threads(2),
        _ => Parallelism::Threads(3),
    }
}

fn element_count(graph: &CsrGraph, kind: FieldKind) -> usize {
    match kind {
        FieldKind::Vertex => graph.vertex_count(),
        FieldKind::Edge => graph.edge_count(),
    }
}

/// Build a fresh session directly at `settings`.
fn fresh_session<'g>(
    graph: &'g CsrGraph,
    kind: FieldKind,
    settings: Settings,
) -> TerrainPipeline<'g> {
    let n = element_count(graph, kind);
    let scalar = scalar_field(settings.scalar, n);
    let mut session = match kind {
        FieldKind::Vertex => TerrainPipeline::vertex(graph, scalar).unwrap(),
        FieldKind::Edge => TerrainPipeline::edge(graph, scalar).unwrap(),
    };
    session
        .set_parallelism(parallelism(settings.parallelism))
        .set_simplification(simplification_config(settings.simplification))
        .set_layout(layout_config(settings.layout))
        .set_color(color_scheme(settings.color, n))
        .set_svg_size(svg_size(settings.svg));
    session
}

/// Apply one mutation to a live session.
fn apply(session: &mut TerrainPipeline<'_>, n: usize, (knob, variant): Op) {
    match knob {
        0 => session.set_color(color_scheme(variant, n)),
        1 => session.set_layout(layout_config(variant)),
        2 => session.set_simplification(simplification_config(variant)),
        3 => session.set_svg_size(svg_size(variant)),
        4 => session.set_scalar(scalar_field(variant, n)).unwrap(),
        _ => session.set_parallelism(parallelism(variant)),
    };
}

/// Exact equality of every stage output of two sessions.
fn assert_sessions_identical(
    a: &mut TerrainPipeline<'_>,
    b: &mut TerrainPipeline<'_>,
    context: &str,
) {
    assert_eq!(a.svg().unwrap(), b.svg().unwrap(), "{context}: svg");
    let sa = a.stages().unwrap();
    let sb = b.stages().unwrap();
    assert_eq!(sa.super_tree.node_count(), sb.super_tree.node_count(), "{context}: super tree");
    assert_eq!(sa.super_tree.scalars(), sb.super_tree.scalars(), "{context}: super scalars");
    assert_eq!(sa.render_tree.node_count(), sb.render_tree.node_count(), "{context}: render tree");
    assert_eq!(sa.layout.rects, sb.layout.rects, "{context}: layout rects");
    assert_eq!(sa.mesh.vertices, sb.mesh.vertices, "{context}: mesh vertices");
    assert_eq!(sa.mesh.triangles, sb.mesh.triangles, "{context}: mesh triangles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn staged_mutations_equal_fresh_build(
        (n, m, seed) in (8usize..32, 2usize..4, 0u64..1_000),
        ops in collection::vec((0u8..6, 0u8..3), 1..7),
    ) {
        let graph = barabasi_albert(n, m, seed);
        for start in [Parallelism::Serial, Parallelism::Threads(2)] {
            for kind in [FieldKind::Vertex, FieldKind::Edge] {
                let elements = element_count(&graph, kind);
                let mut settings = Settings::default();
                let mut staged = fresh_session(&graph, kind, settings);
                staged.set_parallelism(start);
                // Force the full pipeline, mutate, force again — every op
                // exercises invalidation on a fully populated cache.
                staged.svg().unwrap();
                for &op in &ops {
                    apply(&mut staged, elements, op);
                    settings.apply(op);
                    staged.svg().unwrap();
                }
                // Parallelism mutations change no stage output, but the
                // staged session keeps whatever the last op set; give the
                // fresh build the same final setting for a fair comparison.
                if !ops.iter().any(|&(knob, _)| knob >= 5) {
                    settings.parallelism = match start {
                        Parallelism::Serial => 0,
                        _ => 1,
                    };
                }
                let mut fresh = fresh_session(&graph, kind, settings);
                let context = format!("kind {kind:?}, start {start}, ops {ops:?}");
                assert_sessions_identical(&mut staged, &mut fresh, &context);
            }
        }
    }
}
