//! Scene/tile coherence: a tile's bytes are a pure function of the graph
//! and the tile key. The same key must render **bit-identically** across
//! [`Parallelism::Serial`] and `Threads(2)`, over owned and mapped
//! (snapshot-backed) storage, and after a delta batch the incrementally
//! updated session must serve the exact tiles a from-scratch build over
//! the final graph serves. The release-mode test pushes the same claims
//! through the 1M-edge R-MAT rung and pins the bandwidth story: any single
//! tile at zoom >= 1 is at most ~1/8 of the full terrain SVG the
//! `/graphs/{id}/terrain` route would serve.

use graph_terrain::{Measure, Scene, TerrainPipeline, TileKey};
use ugraph::delta::{DeltaOp, DeltaOverlay, GraphDelta};
use ugraph::generators::barabasi_albert;
use ugraph::io::encode_binary_v3;
use ugraph::io::MappedCsrGraph;
use ugraph::par::Parallelism;

/// Render one tile of a session's retained scene to bytes.
fn tile_bytes(scene: &Scene, key: &TileKey, size: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    scene.write_tile_svg(key, size, &mut bytes).expect("tile renders");
    bytes
}

/// Every tile key on the power-of-two grid at zooms 0..=max.
fn grid_keys(max_zoom: u8) -> Vec<TileKey> {
    let mut keys = Vec::new();
    for zoom in 0..=max_zoom {
        for tx in 0..(1u32 << zoom) {
            for ty in 0..(1u32 << zoom) {
                keys.push(TileKey { zoom, tx, ty });
            }
        }
    }
    keys
}

#[test]
fn tiles_are_bit_identical_across_threads_and_storage_backends() {
    let graph = barabasi_albert(400, 3, 11);
    let blob = encode_binary_v3(&graph, None).unwrap();
    let mapped = MappedCsrGraph::from_bytes(&blob).unwrap();
    assert!(mapped.is_zero_copy(), "round-trip fell back to eager decode");

    for measure in [Measure::KCore, Measure::Degree] {
        let mut reference = TerrainPipeline::from_measure(&graph, measure.clone());
        reference.set_parallelism(Parallelism::Serial);
        let reference_tiles: Vec<Vec<u8>> = {
            let scene = reference.scene().unwrap();
            grid_keys(2).iter().map(|key| tile_bytes(scene, key, 256)).collect()
        };
        // The whole-scene binary stream rides the same invariance.
        let reference_gtsc = {
            let mut bytes = Vec::new();
            reference.scene().unwrap().write_scene_gtsc(&mut bytes).unwrap();
            bytes
        };

        let mut threaded = TerrainPipeline::from_measure(&graph, measure.clone());
        threaded.set_parallelism(Parallelism::Threads(2));
        let mut via_mapped = TerrainPipeline::from_measure(&mapped, measure.clone());
        via_mapped.set_parallelism(Parallelism::Serial);
        for (what, other) in [("threads(2)", &mut threaded), ("mapped", &mut via_mapped)] {
            let scene = other.scene().unwrap();
            for (key, expected) in grid_keys(2).iter().zip(&reference_tiles) {
                let got = tile_bytes(scene, key, 256);
                assert_eq!(&got, expected, "{measure:?} tile {key} differs under {what}");
            }
            let mut gtsc = Vec::new();
            scene.write_scene_gtsc(&mut gtsc).unwrap();
            assert_eq!(gtsc, reference_gtsc, "{measure:?} GTSC stream differs under {what}");
        }
    }
}

#[test]
fn tiles_after_a_delta_match_a_from_scratch_build_of_the_final_graph() {
    let graph = barabasi_albert(300, 3, 5);
    // Structural churn: grow into fresh vertices and delete a few existing
    // edges, the same shape the serve delta route applies.
    let mut delta = GraphDelta::new();
    let n = graph.vertex_count() as u32;
    for i in 0..8u32 {
        delta.push(DeltaOp::Insert, i * 7 % n, n + i);
    }
    for e in graph.edges().take(5) {
        delta.push(DeltaOp::Delete, e.u, e.v);
    }
    let final_graph = {
        let mut overlay = DeltaOverlay::new(&graph);
        overlay.apply(&delta);
        overlay.compact().graph
    };

    for measure in [Measure::Degree, Measure::KCore, Measure::PageRank] {
        let mut warm = TerrainPipeline::from_measure(&graph, measure.clone());
        warm.scene().unwrap(); // build the scene pre-delta, then invalidate
        warm.apply_delta(&delta).unwrap();
        let mut fresh = TerrainPipeline::from_measure(&final_graph, measure.clone());
        let fresh_scene = fresh.scene().unwrap();
        let warm_scene = warm.scene().unwrap();
        assert_eq!(
            warm_scene.item_count(),
            fresh_scene.item_count(),
            "{measure:?}: item counts diverge after delta"
        );
        for key in grid_keys(2) {
            assert_eq!(
                tile_bytes(warm_scene, &key, 256),
                tile_bytes(fresh_scene, &key, 256),
                "{measure:?} tile {key}: incremental and from-scratch tiles disagree"
            );
        }
    }
}

/// The 1M-edge rung of the scale ladder, release builds only (the debug
/// pipeline is ~20x slower). One R-MAT terrain must serve tiles that are
/// individually small next to the whole-scene SVG — the bandwidth claim
/// behind streaming pan/zoom — and stay bit-identical across re-renders
/// and thread counts.
#[cfg(not(debug_assertions))]
#[test]
fn million_edge_rmat_serves_small_deterministic_tiles() {
    use ugraph::generators::rmat;

    let graph = rmat(17, 1_000_000, 20_170_419);
    let mut session = TerrainPipeline::from_measure(&graph, Measure::Degree);
    session.set_parallelism(Parallelism::Serial);

    // The "download everything" baseline a tile client avoids: the full
    // terrain SVG the `/graphs/{id}/terrain` route serves.
    let full_scene = session.svg().unwrap().len();
    assert!(full_scene > 0);

    let scene = session.scene().unwrap();
    let mut threaded = TerrainPipeline::from_measure(&graph, Measure::Degree);
    threaded.set_parallelism(Parallelism::Threads(2));
    let threaded_scene = threaded.scene().unwrap();
    for key in grid_keys(2) {
        let bytes = tile_bytes(scene, &key, 256);
        if key.zoom >= 1 {
            assert!(
                bytes.len() <= full_scene / 8,
                "tile {key} is {} bytes, full terrain SVG {full_scene} — tiles must stream small",
                bytes.len(),
            );
        }
        assert_eq!(bytes, tile_bytes(scene, &key, 256), "tile {key} re-render differs");
        assert_eq!(
            bytes,
            tile_bytes(threaded_scene, &key, 256),
            "tile {key} differs across thread counts"
        );
    }

    // Viewport queries over the quadtree stay fast at this scale: the mean
    // over the zoom-2 grid must be far under a millisecond (the ladder's
    // tile-query row records the real number; this is a 5ms tripwire, slack
    // enough for a loaded CI container).
    let viewports: Vec<_> =
        grid_keys(2).iter().map(|key| scene.tile_bounds(key).unwrap()).collect();
    let started = std::time::Instant::now();
    let mut found = 0usize;
    for viewport in &viewports {
        found += scene.query(viewport).len();
    }
    let mean = started.elapsed().as_secs_f64() / viewports.len() as f64;
    assert!(found > 0, "queries over the full grid must see items");
    assert!(mean < 0.005, "mean viewport query took {mean:.6}s on the 1M rung");
}
