//! Cross-crate integration tests: the full pipeline from generated graphs
//! through measures, scalar trees, terrains and exports.

use graph_terrain::prelude::*;
use scalarfield::{component_members_at_alpha, maximal_alpha_components, VertexScalarGraph};
use std::collections::BTreeSet;
use terrain::{ascii_heightmap, build_treemap, mesh_to_obj, peaks_at_alpha, treemap_to_svg};
use ugraph::generators::{barabasi_albert, collaboration_graph, CollaborationConfig};

fn collaboration_fixture() -> ugraph::CsrGraph {
    collaboration_graph(&CollaborationConfig {
        authors: 800,
        papers: 700,
        groups: 10,
        groups_per_component: 5,
        dense_groups: 3,
        dense_group_extra_papers: 40,
        seed: 77,
        ..Default::default()
    })
}

#[test]
fn kcore_terrain_peaks_are_kcores_end_to_end() {
    let graph = collaboration_fixture();
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let terrain = VertexTerrain::build(&graph, &scalar).unwrap();

    // Every peak at every integer level is a K-Core: each member has at least
    // alpha neighbors inside the peak (Proposition 4 through the whole stack).
    for alpha in 1..=cores.degeneracy {
        let peaks = peaks_at_alpha(&terrain.super_tree, &terrain.layout, alpha as f64);
        for peak in &peaks {
            let members: BTreeSet<u32> = peak.members.iter().copied().collect();
            for &m in &peak.members {
                let inside = graph
                    .neighbor_vertices(ugraph::VertexId(m))
                    .filter(|u| members.contains(&u.0))
                    .count();
                assert!(
                    inside >= alpha,
                    "vertex {m} has {inside} neighbors inside its alpha={alpha} peak"
                );
            }
        }
        // And the peak decomposition matches the direct component extraction.
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_components(&sg, alpha as f64)
            .into_iter()
            .map(|c| c.vertices.into_iter().map(|v| v.0).collect())
            .collect();
        let from_peaks: BTreeSet<BTreeSet<u32>> =
            peaks.into_iter().map(|p| p.members.into_iter().collect()).collect();
        assert_eq!(from_peaks, direct, "alpha {alpha}");
    }
}

#[test]
fn ktruss_terrain_members_are_ktruss_edges() {
    let graph = barabasi_albert(400, 4, 11);
    let truss = measures::truss_numbers(&graph);
    let scalar: Vec<f64> = truss.truss.iter().map(|&t| t as f64).collect();
    let terrain = EdgeTerrain::build(&graph, &scalar).unwrap();
    assert_eq!(terrain.super_tree.total_members(), graph.edge_count());

    // The members of every peak at the maximum truss level all have that truss
    // number.
    let peaks = peaks_at_alpha(&terrain.super_tree, &terrain.layout, truss.max_truss as f64);
    assert!(!peaks.is_empty());
    for peak in peaks {
        for e in peak.members {
            assert_eq!(truss.truss[e as usize], truss.max_truss);
        }
    }
}

#[test]
fn exports_are_consistent_across_formats() {
    let graph = collaboration_fixture();
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let terrain = VertexTerrain::build(&graph, &scalar).unwrap();

    let svg = terrain.to_svg(640.0, 480.0);
    assert_eq!(svg.matches("<polygon").count(), terrain.mesh.triangle_count());

    let obj = mesh_to_obj(&terrain.mesh);
    assert_eq!(obj.lines().filter(|l| l.starts_with("v ")).count(), terrain.mesh.vertex_count());

    let treemap = build_treemap(&terrain.super_tree, &terrain.layout);
    let map_svg = treemap_to_svg(&treemap, 640.0, 480.0);
    assert_eq!(map_svg.matches("<rect").count(), terrain.super_tree.node_count());

    let art = ascii_heightmap(&terrain.layout, 40, 10);
    assert_eq!(art.lines().count(), 10);
}

#[test]
fn simplification_keeps_the_headline_peaks() {
    // After discretizing to a handful of levels, the tallest structure of the
    // terrain must still be there (same summit level, non-empty membership).
    let graph = collaboration_fixture();
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let terrain = VertexTerrain::build(&graph, &scalar).unwrap();

    let simplified = scalarfield::simplify_super_tree(&terrain.super_tree, 8);
    assert!(simplified.node_count() <= terrain.super_tree.node_count());
    assert_eq!(simplified.total_members(), graph.vertex_count());

    let layout = terrain::layout_super_tree(&simplified, &terrain::LayoutConfig::default());
    let original_top = terrain::highest_peaks(&terrain.super_tree, &terrain.layout, 1);
    let simplified_top = terrain::highest_peaks(&simplified, &layout, 1);
    let orig_summit = original_top[0].summit_height;
    let simp_summit = simplified_top[0].summit_height;
    assert!(
        (orig_summit - simp_summit).abs() <= orig_summit * 0.2 + 1e-9,
        "summit moved too much: {orig_summit} -> {simp_summit}"
    );
    assert!(!simplified_top[0].members.is_empty());
}

#[test]
fn cut_counts_match_between_alpha_cut_api_and_peaks() {
    let graph = barabasi_albert(600, 3, 5);
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let terrain = VertexTerrain::build(&graph, &scalar).unwrap();
    for alpha in 1..=cores.degeneracy {
        let cut = component_members_at_alpha(&terrain.super_tree, alpha as f64);
        let peaks = peaks_at_alpha(&terrain.super_tree, &terrain.layout, alpha as f64);
        assert_eq!(cut.len(), peaks.len());
    }
}
