//! Cross-crate integration tests: the full pipeline from generated graphs
//! through measures, scalar trees, terrains and exports, driven through the
//! staged [`TerrainPipeline`] session API.

use graph_terrain::prelude::*;
use scalarfield::{component_members_at_alpha, maximal_alpha_components, VertexScalarGraph};
use std::collections::BTreeSet;
use terrain::{peaks_at_alpha, Ascii, Exporter, Obj, RenderScene, TreemapSvg};
use ugraph::generators::{barabasi_albert, collaboration_graph, CollaborationConfig};

fn collaboration_fixture() -> ugraph::CsrGraph {
    collaboration_graph(&CollaborationConfig {
        authors: 800,
        papers: 700,
        groups: 10,
        groups_per_component: 5,
        dense_groups: 3,
        dense_group_extra_papers: 40,
        seed: 77,
        ..Default::default()
    })
}

/// A session over the K-Core field with simplification disabled (these tests
/// reason about the exact, unsimplified tree).
fn kcore_session(graph: &ugraph::CsrGraph) -> TerrainPipeline<'_> {
    let mut session = TerrainPipeline::from_measure(graph, Measure::KCore);
    session.set_simplification(SimplificationConfig::disabled());
    session
}

#[test]
fn kcore_terrain_peaks_are_kcores_end_to_end() {
    let graph = collaboration_fixture();
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let mut session = kcore_session(&graph);
    let stages = session.stages().unwrap();

    // Every peak at every integer level is a K-Core: each member has at least
    // alpha neighbors inside the peak (Proposition 4 through the whole stack).
    for alpha in 1..=cores.degeneracy {
        let peaks = peaks_at_alpha(stages.render_tree, stages.layout, alpha as f64);
        for peak in &peaks {
            let members: BTreeSet<u32> = peak.members.iter().copied().collect();
            for &m in &peak.members {
                let inside = graph
                    .neighbor_vertices(ugraph::VertexId(m))
                    .filter(|u| members.contains(&u.0))
                    .count();
                assert!(
                    inside >= alpha,
                    "vertex {m} has {inside} neighbors inside its alpha={alpha} peak"
                );
            }
        }
        // And the peak decomposition matches the direct component extraction.
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_components(&sg, alpha as f64)
            .into_iter()
            .map(|c| c.vertices.into_iter().map(|v| v.0).collect())
            .collect();
        let from_peaks: BTreeSet<BTreeSet<u32>> =
            peaks.into_iter().map(|p| p.members.into_iter().collect()).collect();
        assert_eq!(from_peaks, direct, "alpha {alpha}");
    }
}

#[test]
fn ktruss_terrain_members_are_ktruss_edges() {
    let graph = barabasi_albert(400, 4, 11);
    let truss = measures::truss_numbers(&graph);
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KTruss);
    session.set_simplification(SimplificationConfig::disabled());
    let stages = session.stages().unwrap();
    assert_eq!(stages.super_tree.total_members(), graph.edge_count());

    // The members of every peak at the maximum truss level all have that truss
    // number.
    let peaks = peaks_at_alpha(stages.render_tree, stages.layout, truss.max_truss as f64);
    assert!(!peaks.is_empty());
    for peak in peaks {
        for e in peak.members {
            assert_eq!(truss.truss[e as usize], truss.max_truss);
        }
    }
}

#[test]
fn exports_are_consistent_across_formats() {
    let graph = collaboration_fixture();
    let mut session = kcore_session(&graph);
    session.set_svg_size(SvgSize::new(640.0, 480.0));
    let svg = session.build().unwrap();
    let stages = session.stages().unwrap();
    assert_eq!(svg.matches("<polygon").count(), stages.mesh.triangle_count());
    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);

    let obj = Obj.export_string(&scene).unwrap();
    assert_eq!(obj.lines().filter(|l| l.starts_with("v ")).count(), stages.mesh.vertex_count());

    let map_svg = TreemapSvg::new(640.0, 480.0).export_string(&scene).unwrap();
    assert_eq!(map_svg.matches("<rect").count(), stages.render_tree.node_count());

    let art = Ascii::new(40, 10).export_string(&scene).unwrap();
    assert_eq!(art.lines().count(), 10);
}

#[test]
fn simplification_keeps_the_headline_peaks() {
    // After discretizing to a handful of levels, the tallest structure of the
    // terrain must still be there (same summit level, non-empty membership).
    // Exercised as a staged mutation: flipping the simplification knob on a
    // live session reuses the cached super tree.
    let graph = collaboration_fixture();
    let mut session = kcore_session(&graph);
    let stages = session.stages().unwrap();
    let full_nodes = stages.super_tree.node_count();
    let original_top = terrain::highest_peaks(stages.render_tree, stages.layout, 1);
    let orig_summit = original_top[0].summit_height;

    session.set_simplification(SimplificationConfig { node_budget: Some(0), levels: 8 });
    let simplified = session.stages().unwrap();
    assert!(simplified.render_tree.node_count() <= full_nodes);
    assert_eq!(simplified.render_tree.total_members(), graph.vertex_count());

    let simplified_top = terrain::highest_peaks(simplified.render_tree, simplified.layout, 1);
    let simp_summit = simplified_top[0].summit_height;
    assert!(
        (orig_summit - simp_summit).abs() <= orig_summit * 0.2 + 1e-9,
        "summit moved too much: {orig_summit} -> {simp_summit}"
    );
    assert!(!simplified_top[0].members.is_empty());
}

#[test]
fn cut_counts_match_between_alpha_cut_api_and_peaks() {
    let graph = barabasi_albert(600, 3, 5);
    let cores = measures::core_numbers(&graph);
    let mut session = kcore_session(&graph);
    let stages = session.stages().unwrap();
    for alpha in 1..=cores.degeneracy {
        let cut = component_members_at_alpha(stages.render_tree, alpha as f64);
        let peaks = peaks_at_alpha(stages.render_tree, stages.layout, alpha as f64);
        assert_eq!(cut.len(), peaks.len());
    }
}
