//! Delta-coherence property test for the dynamic-graph subsystem: **any**
//! random sequence of delta batches (inserts, deletes, reweights, growth
//! into fresh vertices), applied incrementally through
//! [`TerrainPipeline::apply_delta`] with the pipeline forced to the SVG
//! stage between batches, must leave the session bit-identical to a
//! from-scratch build over the final edge list — exact `==` on the SVG
//! bytes — for every incremental-cost tier (local: degree and
//! edge-triangles; dirty-region: k-core and k-truss; full recompute:
//! PageRank), over both the owned and the memory-mapped zero-copy backend,
//! across [`Parallelism::Serial`] and `Threads(2)`.
//!
//! The from-scratch oracle never touches the delta code: it replays the
//! batches against a plain `BTreeSet` edge model and rebuilds with
//! [`GraphBuilder`], exactly like uploading the final edge list.

use std::collections::BTreeSet;

use graph_terrain::prelude::*;
use proptest::collection;
use proptest::prelude::*;
use ugraph::delta::{DeltaOp, GraphDelta};
use ugraph::generators::barabasi_albert;
use ugraph::io::encode_binary_v3;
use ugraph::par::Parallelism;
use ugraph::{CsrGraph, GraphBuilder};

// Each proptest mention is an `(op, u, v)` triple; vertex ids range a
// little past the base graph's so batches both hit existing edges and grow
// the graph.
fn op_of(code: u8) -> DeltaOp {
    match code % 3 {
        0 => DeltaOp::Insert,
        1 => DeltaOp::Delete,
        _ => DeltaOp::Reweight,
    }
}

/// The measures under test — one per incremental-cost tier plus the edge
/// field variants, so the local, dirty-region, and full-recompute paths all
/// run under every generated sequence.
fn measures() -> [Measure; 5] {
    [Measure::Degree, Measure::EdgeTriangles, Measure::KCore, Measure::KTruss, Measure::PageRank]
}

/// Replay one batch against the plain edge-set model, mirroring the
/// documented batch semantics (last-wins dedup is [`GraphDelta`]'s job;
/// the model consumes the already-deduplicated changes).
fn replay(delta: &GraphDelta, edges: &mut BTreeSet<(u32, u32)>, vertex_count: &mut usize) {
    *vertex_count = (*vertex_count).max(delta.min_vertex_count());
    for change in delta.changes() {
        let key = (change.u.0, change.v.0);
        match change.op {
            DeltaOp::Insert => {
                edges.insert(key);
            }
            DeltaOp::Delete => {
                edges.remove(&key);
            }
            DeltaOp::Reweight => {}
        }
    }
}

/// From-scratch oracle: a builder build of the final edge list with every
/// mentioned vertex ensured.
fn rebuild(vertex_count: usize, edges: &BTreeSet<(u32, u32)>) -> CsrGraph {
    let mut b = GraphBuilder::new();
    if vertex_count > 0 {
        b.ensure_vertex(vertex_count as u32 - 1);
    }
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// The two storage backends a session can sit on: an owned CSR and the
/// zero-copy mapped view of the same graph's v3 snapshot.
fn backends(base: &CsrGraph) -> Vec<(&'static str, SharedGraph)> {
    let snapshot = encode_binary_v3(base, None).expect("encode v3 snapshot");
    let mapped = SharedGraph::from_snapshot_bytes(&snapshot).expect("map v3 snapshot");
    assert_eq!(mapped.backend_name(), "mapped", "snapshots must use the zero-copy backend");
    vec![("owned", SharedGraph::new(base.clone())), ("mapped", mapped)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_deltas_equal_fresh_build_through_svg_bytes(
        (n, m, seed) in (10usize..24, 2usize..4, 0u64..1_000),
        batches in collection::vec(collection::vec((0u8..3, 0u32..28, 0u32..28), 1..10), 1..4),
    ) {
        let base = barabasi_albert(n, m, seed);
        // Parse the proptest mentions into batches once; the same deltas
        // are applied to every (measure, backend, parallelism) combination.
        let deltas: Vec<GraphDelta> = batches
            .iter()
            .map(|mentions| {
                let mut delta = GraphDelta::new();
                for &(code, u, v) in mentions {
                    delta.push(op_of(code), u, v);
                }
                delta
            })
            .collect();
        let mut edges: BTreeSet<(u32, u32)> = base.edges().map(|e| (e.u.0, e.v.0)).collect();
        let mut vertex_count = base.vertex_count();
        for delta in &deltas {
            replay(delta, &mut edges, &mut vertex_count);
        }
        let final_graph = rebuild(vertex_count, &edges);

        for measure in measures() {
            // The oracle renders once per measure, serially: determinism
            // across thread counts is part of what the comparison checks.
            let mut fresh = TerrainPipeline::from_shared(
                SharedGraph::new(final_graph.clone()),
                measure.clone(),
            );
            let reference = fresh.svg().unwrap().to_string();

            for (backend, shared) in backends(&base) {
                for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
                    let mut session =
                        TerrainPipeline::from_shared(shared.clone(), measure.clone());
                    session.set_parallelism(parallelism);
                    // Force the full pipeline before and after every batch
                    // so each apply_delta exercises incremental recompute
                    // on a fully populated stage cache.
                    session.svg().unwrap();
                    for delta in &deltas {
                        let report = session.apply_delta(delta).unwrap();
                        prop_assert_eq!(
                            report.delta_cost, Some(measure.delta_cost()),
                            "reported cost tier for {}", measure.name()
                        );
                        session.svg().unwrap();
                    }
                    let context = format!(
                        "measure {}, backend {backend}, parallelism {parallelism}",
                        measure.name()
                    );
                    prop_assert_eq!(session.svg().unwrap(), reference.as_str(), "{}", context);
                }
            }
        }
    }
}
