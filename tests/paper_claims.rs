//! Integration tests pinning the qualitative claims of the paper's evaluation
//! on the synthetic dataset analogs (the "shape" the reproduction must hold).

use graph_terrain::prelude::*;
use measures::{betweenness_centrality_sampled, degrees};
use scalarfield::global_correlation_index;
use study::{run_user_study, StudyConfig, Task, Tool};
use terrain::peaks_at_alpha;
use ugraph::generators::{
    barabasi_albert, collaboration_graph, hub_periphery_community, CollaborationConfig,
};

/// Figure 6(c) vs 6(d): a collaboration graph has several disconnected dense
/// K-Cores, a preferential-attachment graph has a single dominant one.
#[test]
fn collaboration_has_many_dense_peaks_preferential_attachment_has_one() {
    let grqc_like = collaboration_graph(&CollaborationConfig {
        authors: 1_200,
        papers: 1_000,
        groups: 12,
        groups_per_component: 4,
        dense_groups: 4,
        dense_group_extra_papers: 50,
        seed: 3,
        ..Default::default()
    });
    let wikivote_like = barabasi_albert(1_500, 12, 3);

    let dense_peak_count = |graph: &ugraph::CsrGraph| -> usize {
        let cores = measures::core_numbers(graph);
        let mut session = TerrainPipeline::from_measure(graph, Measure::KCore);
        session.set_simplification(SimplificationConfig::disabled());
        let stages = session.stages().unwrap();
        let alpha = (cores.degeneracy as f64 * 0.6).floor().max(2.0);
        peaks_at_alpha(stages.render_tree, stages.layout, alpha).len()
    };

    let grqc_peaks = dense_peak_count(&grqc_like);
    let wikivote_peaks = dense_peak_count(&wikivote_like);
    assert!(
        grqc_peaks >= 2,
        "collaboration analog should show several dense peaks, got {grqc_peaks}"
    );
    assert_eq!(wikivote_peaks, 1, "preferential-attachment analog should show one dominant peak");
}

/// Figure 1(a): K-Core number and degree are positively correlated overall.
#[test]
fn kcore_and_degree_are_positively_correlated() {
    let graph = collaboration_graph(&CollaborationConfig {
        authors: 1_000,
        papers: 900,
        groups: 10,
        seed: 8,
        ..Default::default()
    });
    let cores = measures::core_numbers(&graph);
    let kc: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let degree_field: Vec<f64> = degrees(&graph).iter().map(|&d| d as f64).collect();
    let gci = global_correlation_index(&graph, &kc, &degree_field, 1).unwrap();
    assert!(gci > 0.2, "KC(v) vs degree GCI = {gci}");
}

/// Figure 10: degree and betweenness are strongly positively correlated on a
/// collaboration network (the paper measures GCI = 0.89 on Astro), yet some
/// vertices have negative local correlation.
#[test]
fn degree_betweenness_gci_is_strongly_positive_with_local_outliers() {
    let graph = collaboration_graph(&CollaborationConfig {
        authors: 1_500,
        papers: 3_000,
        groups: 15,
        groups_per_component: 15,
        max_authors_per_paper: 8,
        seed: 5,
        ..Default::default()
    });
    let degree_field: Vec<f64> = degrees(&graph).iter().map(|&d| d as f64).collect();
    let betweenness = betweenness_centrality_sampled(&graph, 200, 1);
    let gci = global_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap();
    assert!(gci > 0.4, "expected a strongly positive GCI, got {gci}");
    // Outliers: some neighborhoods deviate strongly from the global trend
    // (their local correlation sits far below the GCI). Whether any of them
    // dips below zero depends on the particular graph, so the reproduction
    // pins the weaker, structural claim.
    let lci = scalarfield::local_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap();
    let min_lci = lci.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        min_lci < gci - 0.4,
        "expected locally deviating neighborhoods: min LCI {min_lci} vs GCI {gci}"
    );
}

/// Figure 9: roles stratify by community score — hub highest, then dense
/// community, then periphery, then whiskers.
#[test]
fn roles_stratify_vertically_on_the_community_terrain() {
    let planted = hub_periphery_community(50, 120, 30, 7);
    let detected = measures::assign_roles(&planted.graph);
    let mean_score = |role: measures::Role| -> f64 {
        let members: Vec<usize> =
            (0..planted.graph.vertex_count()).filter(|&v| detected.roles[v] == role).collect();
        if members.is_empty() {
            return f64::NAN;
        }
        members.iter().map(|&v| planted.community_score[v]).sum::<f64>() / members.len() as f64
    };
    let dense = mean_score(measures::Role::DenseCommunity);
    let periphery = mean_score(measures::Role::Periphery);
    let whisker = mean_score(measures::Role::Whisker);
    assert!(dense > periphery, "dense {dense} vs periphery {periphery}");
    assert!(periphery > whisker, "periphery {periphery} vs whisker {whisker}");
}

/// Tables IV–VI: the simulated study reproduces the ordinal findings — terrain
/// at least as accurate as the baselines and faster on average.
#[test]
fn simulated_user_study_reproduces_the_paper_ordering() {
    let datasets: Vec<(String, ugraph::CsrGraph)> = vec![
        (
            "grqc-like".into(),
            collaboration_graph(&CollaborationConfig {
                authors: 500,
                papers: 420,
                groups: 8,
                groups_per_component: 4,
                dense_groups: 2,
                dense_group_extra_papers: 30,
                seed: 12,
                ..Default::default()
            }),
        ),
        ("ppi-like".into(), ugraph::generators::watts_strogatz(500, 6, 0.2, 9)),
    ];
    let design =
        vec![(Task::DensestKCore, datasets.clone()), (Task::SecondDisconnectedKCore, datasets)];
    let rows = run_user_study(
        &design,
        &StudyConfig { participants: 20, betweenness_samples: 40, ..Default::default() },
    );
    let avg = |tool: Tool, f: fn(&study::StudyResultRow) -> f64| -> f64 {
        let values: Vec<f64> = rows.iter().filter(|r| r.tool == tool).map(f).collect();
        values.iter().sum::<f64>() / values.len() as f64
    };
    assert!(avg(Tool::Terrain, |r| r.accuracy) >= avg(Tool::LanetVi, |r| r.accuracy));
    assert!(avg(Tool::Terrain, |r| r.accuracy) >= avg(Tool::OpenOrd, |r| r.accuracy));
    assert!(avg(Tool::Terrain, |r| r.mean_time_s) < avg(Tool::LanetVi, |r| r.mean_time_s));
    assert!(avg(Tool::Terrain, |r| r.mean_time_s) < avg(Tool::OpenOrd, |r| r.mean_time_s));
}
