//! The I/O boundary, end to end: every ingest format resolves to the same
//! `CsrGraph`, every export backend renders the same scene, and the whole
//! chain `GraphSource -> TerrainPipeline -> Exporter` is byte-stable across
//! ingest paths and identical to the pre-redesign output.

use graph_terrain::{Measure, TerrainPipeline};
use terrain::{builtin_exporters, Exporter, RenderScene, Svg};
use ugraph::io::{encode_binary, encode_binary_v2, GraphFormat, GraphSource};
use ugraph::{CsrGraph, GraphBuilder};

/// The quickstart graph: a K5 and a K4 bridged through two extra authors.
fn quickstart_graph() -> CsrGraph {
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v);
        }
    }
    for u in 5..9u32 {
        for v in (u + 1)..9u32 {
            builder.add_edge(u, v);
        }
    }
    builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]);
    builder.build()
}

/// Serialize the quickstart graph by hand in every text dialect.
fn edge_list_fixture(graph: &CsrGraph) -> String {
    let mut out = String::from("# quickstart graph\n");
    for e in graph.edges() {
        out.push_str(&format!("{} {}\n", e.u.0, e.v.0));
    }
    out
}

fn csv_fixture(graph: &CsrGraph) -> String {
    let mut out = String::from("source,target\n");
    for e in graph.edges() {
        out.push_str(&format!("{},{}\n", e.u.0, e.v.0));
    }
    out
}

fn metis_fixture(graph: &CsrGraph) -> String {
    let mut out = format!("{} {}\n", graph.vertex_count(), graph.edge_count());
    for v in graph.vertices() {
        let line: Vec<String> =
            graph.neighbor_slice(v).iter().map(|n| (n.0 + 1).to_string()).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

fn json_fixture(graph: &CsrGraph) -> String {
    let mut out = String::new();
    for v in graph.vertices() {
        let adj: Vec<String> = graph.neighbor_slice(v).iter().map(|n| n.0.to_string()).collect();
        out.push_str(&format!("{{\"id\": {}, \"adj\": [{}]}}\n", v.0, adj.join(", ")));
    }
    out
}

#[test]
fn every_ingest_format_round_trips_to_an_identical_graph() {
    let reference = quickstart_graph();
    let cases: Vec<(GraphFormat, Vec<u8>)> = vec![
        (GraphFormat::EdgeList, edge_list_fixture(&reference).into_bytes()),
        (GraphFormat::Csv, csv_fixture(&reference).into_bytes()),
        (GraphFormat::Metis, metis_fixture(&reference).into_bytes()),
        (GraphFormat::JsonAdjacency, json_fixture(&reference).into_bytes()),
        (GraphFormat::Binary, encode_binary_v2(&reference, None).unwrap()),
        (GraphFormat::Binary, encode_binary(&reference).as_ref().to_vec()),
    ];
    for (format, bytes) in cases {
        // Explicit format.
        let parsed = GraphSource::reader(std::io::Cursor::new(bytes.clone()))
            .with_format(format)
            .load()
            .unwrap_or_else(|e| panic!("{format} failed: {e}"));
        assert_eq!(parsed.graph, reference, "{format} does not round-trip");
        // Sniffed format (METIS is not sniffable by design — skip it there).
        if format != GraphFormat::Metis {
            let sniffed = GraphSource::reader(std::io::Cursor::new(bytes))
                .load()
                .unwrap_or_else(|e| panic!("sniffing the {format} fixture failed: {e}"));
            assert_eq!(sniffed.graph, reference, "sniffed {format} does not round-trip");
        }
    }
}

#[test]
#[allow(deprecated)]
fn streaming_svg_is_byte_identical_to_the_pre_redesign_output() {
    // The acceptance criterion of the redesign: the Exporter-based SVG path
    // must reproduce the old `terrain_to_svg` free function byte for byte on
    // the quickstart terrain — via the trait, via the session's cached
    // `svg()` stage, and via `render_to`.
    let graph = quickstart_graph();
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    let stages = session.stages().unwrap();
    let legacy = terrain::terrain_to_svg(stages.mesh, 900.0, 700.0);

    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);
    let streamed = Svg::new(900.0, 700.0).export_string(&scene).unwrap();
    assert_eq!(streamed, legacy);

    let mut via_render_to = Vec::new();
    session.render_to(&Svg::new(900.0, 700.0), &mut via_render_to).unwrap();
    assert_eq!(String::from_utf8(via_render_to).unwrap(), legacy);
    assert_eq!(session.svg().unwrap(), legacy);
}

#[test]
fn every_ingest_path_yields_the_same_svg_bytes() {
    // GraphSource -> from_source -> Exporter across all five formats: one
    // graph, five encodings, one set of SVG bytes.
    let reference = quickstart_graph();
    let mut direct = TerrainPipeline::from_measure(&reference, Measure::KCore);
    let expected = direct.svg().unwrap().to_string();

    let cases: Vec<(GraphFormat, Vec<u8>)> = vec![
        (GraphFormat::EdgeList, edge_list_fixture(&reference).into_bytes()),
        (GraphFormat::Csv, csv_fixture(&reference).into_bytes()),
        (GraphFormat::Metis, metis_fixture(&reference).into_bytes()),
        (GraphFormat::JsonAdjacency, json_fixture(&reference).into_bytes()),
        (GraphFormat::Binary, encode_binary_v2(&reference, None).unwrap()),
    ];
    for (format, bytes) in cases {
        let source = GraphSource::reader(std::io::Cursor::new(bytes)).with_format(format);
        let mut session = TerrainPipeline::from_source(source, Measure::KCore).unwrap();
        assert_eq!(session.svg().unwrap(), expected, "{format} ingest changes the terrain");
    }
}

#[test]
fn every_backend_renders_the_quickstart_scene_nonempty() {
    let graph = quickstart_graph();
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    for exporter in builtin_exporters() {
        let mut out = Vec::new();
        session.render_to(exporter.as_ref(), &mut out).unwrap();
        assert!(!out.is_empty(), "backend {} rendered nothing", exporter.name());
    }
}

#[test]
fn corrupt_snapshots_fail_loudly_through_the_whole_stack() {
    // Corruption must surface as an error from `from_source`, not a panic —
    // the session boundary is where a serving system catches bad uploads.
    let good = encode_binary_v2(&quickstart_graph(), None).unwrap();
    let mut corrupt = good.clone();
    corrupt[good.len() / 2] ^= 0xff;
    for blob in [corrupt, good[..good.len() - 3].to_vec(), b"GTSB\x07garbagegarbage".to_vec()] {
        let source = GraphSource::reader(std::io::Cursor::new(blob));
        match TerrainPipeline::from_source(source, Measure::KCore) {
            Err(e) => assert!(!e.to_string().is_empty()),
            Ok(_) => panic!("corrupt snapshot was accepted"),
        }
    }
}
