//! The I/O boundary, end to end: every ingest format resolves to the same
//! `CsrGraph`, every export backend renders the same scene, and the whole
//! chain `GraphSource -> TerrainPipeline -> Exporter` is byte-stable across
//! ingest paths and identical to the pre-redesign output.

use graph_terrain::{Measure, TerrainPipeline};
use terrain::{builtin_exporters, Exporter, RenderScene, Svg};
use ugraph::io::{
    encode_binary, encode_binary_v2, encode_binary_v3, restamp_v3_checksum, GraphFormat,
    GraphSource, MappedCsrGraph,
};
use ugraph::{CsrGraph, GraphBuilder};

/// The quickstart graph: a K5 and a K4 bridged through two extra authors.
fn quickstart_graph() -> CsrGraph {
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v);
        }
    }
    for u in 5..9u32 {
        for v in (u + 1)..9u32 {
            builder.add_edge(u, v);
        }
    }
    builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]);
    builder.build()
}

/// Serialize the quickstart graph by hand in every text dialect.
fn edge_list_fixture(graph: &CsrGraph) -> String {
    let mut out = String::from("# quickstart graph\n");
    for e in graph.edges() {
        out.push_str(&format!("{} {}\n", e.u.0, e.v.0));
    }
    out
}

fn csv_fixture(graph: &CsrGraph) -> String {
    let mut out = String::from("source,target\n");
    for e in graph.edges() {
        out.push_str(&format!("{},{}\n", e.u.0, e.v.0));
    }
    out
}

fn metis_fixture(graph: &CsrGraph) -> String {
    let mut out = format!("{} {}\n", graph.vertex_count(), graph.edge_count());
    for v in graph.vertices() {
        let line: Vec<String> =
            graph.neighbor_slice(v).iter().map(|n| (n.0 + 1).to_string()).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

fn json_fixture(graph: &CsrGraph) -> String {
    let mut out = String::new();
    for v in graph.vertices() {
        let adj: Vec<String> = graph.neighbor_slice(v).iter().map(|n| n.0.to_string()).collect();
        out.push_str(&format!("{{\"id\": {}, \"adj\": [{}]}}\n", v.0, adj.join(", ")));
    }
    out
}

#[test]
fn every_ingest_format_round_trips_to_an_identical_graph() {
    let reference = quickstart_graph();
    let cases: Vec<(GraphFormat, Vec<u8>)> = vec![
        (GraphFormat::EdgeList, edge_list_fixture(&reference).into_bytes()),
        (GraphFormat::Csv, csv_fixture(&reference).into_bytes()),
        (GraphFormat::Metis, metis_fixture(&reference).into_bytes()),
        (GraphFormat::JsonAdjacency, json_fixture(&reference).into_bytes()),
        (GraphFormat::Binary, encode_binary_v2(&reference, None).unwrap()),
        (GraphFormat::Binary, encode_binary(&reference).as_ref().to_vec()),
    ];
    for (format, bytes) in cases {
        // Explicit format.
        let parsed = GraphSource::reader(std::io::Cursor::new(bytes.clone()))
            .with_format(format)
            .load()
            .unwrap_or_else(|e| panic!("{format} failed: {e}"));
        assert_eq!(parsed.graph, reference, "{format} does not round-trip");
        // Sniffed format (METIS is not sniffable by design — skip it there).
        if format != GraphFormat::Metis {
            let sniffed = GraphSource::reader(std::io::Cursor::new(bytes))
                .load()
                .unwrap_or_else(|e| panic!("sniffing the {format} fixture failed: {e}"));
            assert_eq!(sniffed.graph, reference, "sniffed {format} does not round-trip");
        }
    }
}

#[test]
#[allow(deprecated)]
fn streaming_svg_is_byte_identical_to_the_pre_redesign_output() {
    // The acceptance criterion of the redesign: the Exporter-based SVG path
    // must reproduce the old `terrain_to_svg` free function byte for byte on
    // the quickstart terrain — via the trait, via the session's cached
    // `svg()` stage, and via `render_to`.
    let graph = quickstart_graph();
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    let stages = session.stages().unwrap();
    let legacy = terrain::terrain_to_svg(stages.mesh, 900.0, 700.0);

    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);
    let streamed = Svg::new(900.0, 700.0).export_string(&scene).unwrap();
    assert_eq!(streamed, legacy);

    let mut via_render_to = Vec::new();
    session.render_to(&Svg::new(900.0, 700.0), &mut via_render_to).unwrap();
    assert_eq!(String::from_utf8(via_render_to).unwrap(), legacy);
    assert_eq!(session.svg().unwrap(), legacy);
}

#[test]
fn every_ingest_path_yields_the_same_svg_bytes() {
    // GraphSource -> from_source -> Exporter across all five formats: one
    // graph, five encodings, one set of SVG bytes.
    let reference = quickstart_graph();
    let mut direct = TerrainPipeline::from_measure(&reference, Measure::KCore);
    let expected = direct.svg().unwrap().to_string();

    let cases: Vec<(GraphFormat, Vec<u8>)> = vec![
        (GraphFormat::EdgeList, edge_list_fixture(&reference).into_bytes()),
        (GraphFormat::Csv, csv_fixture(&reference).into_bytes()),
        (GraphFormat::Metis, metis_fixture(&reference).into_bytes()),
        (GraphFormat::JsonAdjacency, json_fixture(&reference).into_bytes()),
        (GraphFormat::Binary, encode_binary_v2(&reference, None).unwrap()),
    ];
    for (format, bytes) in cases {
        let source = GraphSource::reader(std::io::Cursor::new(bytes)).with_format(format);
        let mut session = TerrainPipeline::from_source(source, Measure::KCore).unwrap();
        assert_eq!(session.svg().unwrap(), expected, "{format} ingest changes the terrain");
    }
}

#[test]
fn every_backend_renders_the_quickstart_scene_nonempty() {
    let graph = quickstart_graph();
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    for exporter in builtin_exporters() {
        let mut out = Vec::new();
        session.render_to(exporter.as_ref(), &mut out).unwrap();
        assert!(!out.is_empty(), "backend {} rendered nothing", exporter.name());
    }
}

#[test]
fn corrupt_snapshots_fail_loudly_through_the_whole_stack() {
    // Corruption must surface as an error from `from_source`, not a panic —
    // the session boundary is where a serving system catches bad uploads.
    let good = encode_binary_v2(&quickstart_graph(), None).unwrap();
    let mut corrupt = good.clone();
    corrupt[good.len() / 2] ^= 0xff;
    for blob in [corrupt, good[..good.len() - 3].to_vec(), b"GTSB\x07garbagegarbage".to_vec()] {
        let source = GraphSource::reader(std::io::Cursor::new(blob));
        match TerrainPipeline::from_source(source, Measure::KCore) {
            Err(e) => assert!(!e.to_string().is_empty()),
            Ok(_) => panic!("corrupt snapshot was accepted"),
        }
    }
}

/// Assert `blob` is rejected — with an error, never a panic — by both v3
/// openers: the zero-copy [`MappedCsrGraph`] path and the full
/// `GraphSource -> TerrainPipeline` stack with an explicit binary format.
fn expect_v3_rejected(blob: &[u8], what: &str) {
    match MappedCsrGraph::from_bytes(blob) {
        Err(e) => assert!(!e.to_string().is_empty(), "{what}: empty mapped-open error"),
        Ok(_) => panic!("{what}: corrupt v3 snapshot accepted by MappedCsrGraph"),
    }
    let source =
        GraphSource::reader(std::io::Cursor::new(blob.to_vec())).with_format(GraphFormat::Binary);
    match TerrainPipeline::from_source(source, Measure::KCore) {
        Err(e) => assert!(!e.to_string().is_empty(), "{what}: empty from_source error"),
        Ok(_) => panic!("{what}: corrupt v3 snapshot accepted by from_source"),
    }
}

#[test]
fn every_v3_truncation_prefix_is_rejected() {
    let blob = encode_binary_v3(&quickstart_graph(), None).unwrap();
    for cut in 0..blob.len() {
        expect_v3_rejected(&blob[..cut], &format!("prefix of {cut} bytes"));
    }
}

#[test]
fn every_v3_byte_flip_is_rejected() {
    // Weighted snapshot so the flip sweep also crosses the weights section.
    let graph = quickstart_graph();
    let weights: Vec<f64> = (0..graph.edge_count()).map(|i| 1.0 + i as f64).collect();
    let blob = encode_binary_v3(&graph, Some(&weights)).unwrap();
    for at in 0..blob.len() {
        let mut corrupted = blob.to_vec();
        corrupted[at] ^= 0x20;
        if at < 4 {
            // A flip inside the magic stops the blob claiming to be a GTSB
            // snapshot at all — the auto-dispatching stack then applies its
            // documented legacy-v1 fallback, so only the strict v3 opener
            // is in scope here.
            assert!(
                MappedCsrGraph::from_bytes(&corrupted).is_err(),
                "flipped magic byte {at} accepted by MappedCsrGraph"
            );
        } else {
            expect_v3_rejected(&corrupted, &format!("flipped bit at byte {at}"));
        }
    }
}

#[test]
fn doctored_v3_snapshots_fail_for_the_right_reason() {
    let clean = encode_binary_v3(&quickstart_graph(), None).unwrap();

    // Bad magic (re-stamped so only the magic stands in the way).
    let mut blob = clean.clone();
    blob[..4].copy_from_slice(b"NOPE");
    restamp_v3_checksum(&mut blob);
    let err = MappedCsrGraph::from_bytes(&blob).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");

    // Wrong version stamp.
    let mut blob = clean.clone();
    blob[4] = 9;
    restamp_v3_checksum(&mut blob);
    let err = MappedCsrGraph::from_bytes(&blob).unwrap_err();
    assert!(err.to_string().contains("version 9"), "{err}");

    // Bad checksum trailer over otherwise pristine bytes.
    let mut blob = clean.clone();
    let trailer = blob.len() - 1;
    blob[trailer] ^= 0xff;
    let err = MappedCsrGraph::from_bytes(&blob).unwrap_err();
    assert!(err.to_string().contains("checksum mismatch"), "{err}");

    // Misaligned section length: the offsets section header declares a
    // length that is not a multiple of 8 (byte 48 is the low byte of that
    // length: magic+version 8, header section 16+16, section tag+len 8+8).
    let mut blob = clean.clone();
    blob[48] = blob[48].wrapping_add(4);
    restamp_v3_checksum(&mut blob);
    expect_v3_rejected(&blob, "misaligned section length");

    // Structurally broken payload behind a valid checksum: offsets[0] != 0.
    let mut blob = clean;
    blob[56] = 0xff;
    restamp_v3_checksum(&mut blob);
    expect_v3_rejected(&blob, "offsets[0] != 0");
}
