//! Dense-subgraph exploration on a realistic collaboration network
//! (the Figure 6 workflow): build K-Core and K-Truss terrains, compare the
//! landscape shapes, and drill into the densest peak with a linked spring
//! layout — the paper's "select a region, draw it with another visualization"
//! interaction.
//!
//! Run with:
//! ```text
//! cargo run --release --example kcore_exploration
//! ```

use baselines::{layout_to_svg, spring_layout, SpringConfig};
use graph_terrain::prelude::*;
use terrain::{highest_peaks, select_region, Svg};
use ugraph::generators::{collaboration_graph, CollaborationConfig};

fn main() {
    // A GrQc-like collaboration network: many research groups, a few of them
    // with long-running dense collaborations.
    let graph = collaboration_graph(&CollaborationConfig {
        authors: 3_000,
        papers: 2_600,
        groups: 30,
        groups_per_component: 6,
        dense_groups: 5,
        dense_group_extra_papers: 60,
        seed: 41,
        ..Default::default()
    });
    println!(
        "collaboration graph: {} authors, {} co-authorships",
        graph.vertex_count(),
        graph.edge_count()
    );

    // K-Core terrain: a staged session computes the measure itself.
    let cores = measures::core_numbers(&graph);
    let mut kcore_session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    kcore_session.set_svg_size(SvgSize::new(900.0, 700.0));
    let kcore = kcore_session.stages().expect("core field");
    let peaks = highest_peaks(kcore.render_tree, kcore.layout, 5);
    println!("\nK-Core landscape (degeneracy {}):", cores.degeneracy);
    for (i, p) in peaks.iter().enumerate() {
        println!(
            "  peak {}: summit K = {:.0}, {} authors, footprint area {:.4}",
            i + 1,
            p.summit_height,
            p.member_count,
            p.base_area()
        );
    }

    // K-Truss terrain over the same graph (edge scalar field) — the session
    // API is one generic core, so the edge path looks exactly the same.
    let truss = measures::truss_numbers(&graph);
    let mut ktruss_session = TerrainPipeline::from_measure(&graph, Measure::KTruss);
    ktruss_session.set_svg_size(SvgSize::new(900.0, 700.0));
    println!(
        "\nK-Truss landscape: max KT = {}, super tree nodes = {}",
        truss.max_truss,
        ktruss_session.super_tree().expect("truss field").node_count()
    );

    // Drill into the densest K-Core peak: select its footprint and draw that
    // subgraph with a spring layout (the linked 2D display of Section II-E).
    if let Some(top) = peaks.first() {
        let selected = select_region(kcore.render_tree, kcore.layout, &top.footprint);
        let mut keep = vec![false; graph.vertex_count()];
        for &v in &selected {
            keep[v as usize] = true;
        }
        let (subgraph, _mapping) = graph.induced_subgraph(&keep);
        println!(
            "\ndrill-down into the tallest peak: {} vertices, {} edges in the selected region",
            subgraph.vertex_count(),
            subgraph.edge_count()
        );
        let layout =
            spring_layout(&subgraph, &SpringConfig { iterations: 80, ..Default::default() });
        let svg = layout_to_svg(&subgraph, &layout, 600.0, 600.0, 20_000);
        let path = std::env::temp_dir().join("graph_terrain_densest_core.svg");
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote linked 2D view of the densest core to {}", path.display());
    }

    // Save both terrains, streamed through the SVG exporter backend.
    let dir = std::env::temp_dir();
    let svg = Svg::new(900.0, 700.0);
    kcore_session.write_artifact(&svg, dir.join("graph_terrain_kcore.svg")).unwrap();
    ktruss_session.write_artifact(&svg, dir.join("graph_terrain_ktruss.svg")).unwrap();
    println!("wrote K-Core and K-Truss terrains to {}", dir.display());
}
