//! Multi-scalar analysis (the Figure 10 workflow): compare degree and
//! betweenness centrality on a collaboration network with the Local/Global
//! Correlation Index, visualize the outlier score as a terrain colored by
//! degree, and drill into the strongest outliers.
//!
//! Run with:
//! ```text
//! cargo run --release --example centrality_correlation
//! ```

use graph_terrain::prelude::*;
use measures::{betweenness_centrality_sampled_with, degrees, Parallelism};
use scalarfield::{global_correlation_index, local_correlation_index, outlier_scores};
use terrain::{ColorScheme, Svg};
use ugraph::generators::{collaboration_graph, CollaborationConfig};
use ugraph::VertexId;

fn main() {
    // An Astro-like collaboration network.
    let graph = collaboration_graph(&CollaborationConfig {
        authors: 4_000,
        papers: 8_000,
        groups: 36,
        groups_per_component: 12,
        max_authors_per_paper: 8,
        dense_groups: 4,
        dense_group_extra_papers: 80,
        seed: 23,
        ..Default::default()
    });
    println!("network: {} authors, {} edges", graph.vertex_count(), graph.edge_count());

    // Two scalar fields on the same graph. The betweenness pass uses every
    // core the machine offers — safe for a reproducible figure because the
    // `ugraph::par` engine returns the same bits at any thread count.
    let degree_field: Vec<f64> = degrees(&graph).iter().map(|&d| d as f64).collect();
    let betweenness = betweenness_centrality_sampled_with(&graph, 256, 7, Parallelism::auto());

    // Global and local correlation.
    let gci = global_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap();
    let lci = local_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap();
    println!("Global Correlation Index (degree vs betweenness): {gci:.2}");

    // Outlier terrain: height = -LCI, color = degree. The staged session
    // makes "try another colormap" a mesh-only rebuild.
    let outlier = outlier_scores(&graph, &degree_field, &betweenness, 1).unwrap();
    let mut session = TerrainPipeline::vertex(&graph, outlier.clone()).expect("outlier field");
    session
        .set_color(ColorScheme::BySecondaryScalar(degree_field.clone()))
        .set_svg_size(SvgSize::new(900.0, 700.0));
    let path = std::env::temp_dir().join("graph_terrain_outliers.svg");
    session.write_artifact(&Svg::new(900.0, 700.0), &path).expect("write svg");
    println!("wrote outlier-score terrain (colored by degree) to {}", path.display());

    // Drill-down: the five strongest outliers and their local picture.
    let mut order: Vec<usize> = (0..graph.vertex_count()).collect();
    order.sort_by(|&a, &b| outlier[b].total_cmp(&outlier[a]));
    println!("\nstrongest outliers (local trend opposes the global correlation):");
    for &v in order.iter().take(5) {
        let vid = VertexId::from_index(v);
        let neighborhood = ugraph::traversal::k_hop_neighborhood(&graph, vid, 2);
        println!(
            "  author {v}: degree {}, betweenness {:.1}, LCI {:+.2}, 2-hop neighborhood of {} authors",
            graph.degree(vid),
            betweenness[v],
            lci[v],
            neighborhood.len()
        );
    }
    println!(
        "\nreading: the global trend is strongly positive, while these authors sit in\n\
         neighborhoods where high betweenness does not come with high degree — the\n\
         bridge-like outliers of the paper's Figure 10."
    );
}
