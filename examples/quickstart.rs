//! Quickstart: build a K-Core terrain for a small collaboration-style graph
//! with the staged [`TerrainPipeline`] session and inspect it from the
//! terminal.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart [-- --threads <serial|auto|N>] [-- --out <svg path>]
//! ```
//!
//! The `--threads` knob is pure wall-clock: the emitted SVG is byte-identical
//! for every setting (CI diffs the output of `--threads serial` against
//! `--threads 2` to guard that contract end-to-end).

use graph_terrain::prelude::*;
use measures::Parallelism;
use terrain::{ascii_heightmap, peaks_at_alpha};
use ugraph::GraphBuilder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parallelism = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| Parallelism::parse(v))
        .unwrap_or(Parallelism::Serial);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("graph_terrain_quickstart.svg"));

    // 1. Build a small graph by hand: two dense "research groups" (a K5 and a
    //    K4) connected through a chain of collaborations.
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v); // group A: vertices 0..5
        }
    }
    for u in 5..9u32 {
        for v in (u + 1)..9u32 {
            builder.add_edge(u, v); // group B: vertices 5..9
        }
    }
    builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]); // bridge authors
    let graph = builder.build();
    println!("graph: {} vertices, {} edges", graph.vertex_count(), graph.edge_count());

    // 2. Start a session whose scalar field is the K-Core number of each
    //    vertex, so the terrain's peaks are exactly the dense K-Cores
    //    (Proposition 4 of the paper). The session computes the measure
    //    itself, under the requested thread budget.
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    session.set_parallelism(parallelism).set_svg_size(SvgSize::new(800.0, 600.0));
    println!("measure parallelism: {parallelism} (the SVG is identical for every setting)");

    // 3. Stages compute lazily and are cached: asking for the mesh builds
    //    scalar field -> scalar tree -> super tree -> layout -> mesh once.
    let stages = session.stages().expect("valid scalar field");
    println!(
        "super tree: {} nodes; mesh: {} triangles",
        stages.super_tree.node_count(),
        stages.mesh.triangle_count()
    );

    // 4. Ask analysis questions directly on the cached stages.
    for alpha in [1.0, 3.0, 4.0] {
        let peaks = peaks_at_alpha(stages.render_tree, stages.layout, alpha);
        println!("maximal {alpha}-connected components (peaks at height {alpha}): {}", peaks.len());
        for p in &peaks {
            println!("   vertices {:?} (summit K = {})", p.members, p.summit_height);
        }
    }

    // 5. Look at it: ASCII in the terminal, SVG on disk.
    println!("\nterrain heightmap (top view):\n");
    println!("{}", ascii_heightmap(stages.layout, 60, 18));
    let svg = session.build().expect("svg stage");
    std::fs::write(&out_path, svg).expect("write svg");
    println!("wrote 3D terrain rendering to {}", out_path.display());
}
