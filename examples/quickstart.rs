//! Quickstart: build a K-Core terrain for a small collaboration-style graph
//! and inspect it from the terminal.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use graph_terrain::prelude::*;
use terrain::{ascii_heightmap, peaks_at_alpha};
use ugraph::GraphBuilder;

fn main() {
    // 1. Build a small graph by hand: two dense "research groups" (a K5 and a
    //    K4) connected through a chain of collaborations.
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v); // group A: vertices 0..5
        }
    }
    for u in 5..9u32 {
        for v in (u + 1)..9u32 {
            builder.add_edge(u, v); // group B: vertices 5..9
        }
    }
    builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]); // bridge authors
    let graph = builder.build();
    println!("graph: {} vertices, {} edges", graph.vertex_count(), graph.edge_count());

    // 2. Choose a scalar field. Here: the K-Core number of each vertex, so the
    //    terrain's peaks are exactly the dense K-Cores (Proposition 4 of the
    //    paper).
    let cores = measures::core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    println!("degeneracy (max K): {}", cores.degeneracy);

    // 3. Build the terrain: scalar tree -> super tree -> 2D layout -> 3D mesh.
    let terrain = VertexTerrain::build(&graph, &scalar).expect("valid scalar field");
    println!(
        "super tree: {} nodes; mesh: {} triangles",
        terrain.super_tree.node_count(),
        terrain.mesh.triangle_count()
    );

    // 4. Ask analysis questions directly on the terrain.
    for alpha in [1.0, 3.0, 4.0] {
        let peaks = peaks_at_alpha(&terrain.super_tree, &terrain.layout, alpha);
        println!("maximal {alpha}-connected components (peaks at height {alpha}): {}", peaks.len());
        for p in &peaks {
            println!("   vertices {:?} (summit K = {})", p.members, p.summit_height);
        }
    }

    // 5. Look at it: ASCII in the terminal, SVG on disk.
    println!("\nterrain heightmap (top view):\n");
    println!("{}", ascii_heightmap(&terrain.layout, 60, 18));
    let svg = terrain.to_svg(800.0, 600.0);
    let path = std::env::temp_dir().join("graph_terrain_quickstart.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("wrote 3D terrain rendering to {}", path.display());
}
