//! Quickstart: build a K-Core terrain with the staged [`TerrainPipeline`]
//! session and inspect it from the terminal — end to end through the I/O
//! boundary: graphs come in through `GraphSource`, artifacts go out through
//! `Exporter` backends.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart [-- --threads <serial|auto|N>]
//!                                [-- --input <graph file>]
//!                                [-- --format <svg|treemap|obj|ply|ascii|json>]
//!                                [-- --out <artifact path>]
//!                                [-- --save-graph <binary snapshot path>]
//! ```
//!
//! Without `--input` a small built-in collaboration graph is used;
//! `--save-graph` writes that graph as a binary v2 snapshot which a later
//! run can `--input` back (CI round-trips exactly this and diffs the SVG
//! bytes). The `--threads` knob is pure wall-clock: the emitted artifact is
//! byte-identical for every setting (CI diffs `--threads serial` against
//! `--threads 2` end-to-end).

use graph_terrain::prelude::*;
use measures::Parallelism;
use terrain::{exporter_by_name, peaks_at_alpha, Ascii, Exporter, RenderScene};
use ugraph::io::{encode_binary_v2, GraphSource};
use ugraph::GraphBuilder;

/// `--flag value` or `--flag=value`, matching the figure binaries' parser.
fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parallelism = flag(&args, "--threads")
        .and_then(|v| Parallelism::parse(&v))
        .unwrap_or(Parallelism::Serial);
    let exporter = flag(&args, "--format")
        .map(|name| exporter_by_name(&name).expect("unknown --format backend"))
        .unwrap_or_else(|| exporter_by_name("svg").expect("svg backend exists"));
    let out_path = flag(&args, "--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("graph_terrain_quickstart.{}", exporter.file_extension()))
    });

    // 1. Get a graph: ingest any supported format through GraphSource, or
    //    build the demo graph by hand — two dense "research groups" (a K5 and
    //    a K4) connected through a chain of collaborations.
    let graph = match flag(&args, "--input") {
        Some(path) => {
            let parsed = GraphSource::path(&path).load().expect("load --input graph");
            println!("loaded {path} ({} vertices)", parsed.graph.vertex_count());
            parsed.graph
        }
        None => {
            let mut builder = GraphBuilder::new();
            for u in 0..5u32 {
                for v in (u + 1)..5u32 {
                    builder.add_edge(u, v); // group A: vertices 0..5
                }
            }
            for u in 5..9u32 {
                for v in (u + 1)..9u32 {
                    builder.add_edge(u, v); // group B: vertices 5..9
                }
            }
            builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]); // bridge authors
            builder.build()
        }
    };
    println!("graph: {} vertices, {} edges", graph.vertex_count(), graph.edge_count());

    // Optionally snapshot the graph (binary v2: magic + version + checksum)
    // so a later run can `--input` it back, byte-identically.
    if let Some(path) = flag(&args, "--save-graph") {
        let blob = encode_binary_v2(&graph, None).expect("encode snapshot");
        std::fs::write(&path, blob).expect("write snapshot");
        println!("saved binary v2 snapshot to {path}");
    }

    // 2. Start a session whose scalar field is the K-Core number of each
    //    vertex, so the terrain's peaks are exactly the dense K-Cores
    //    (Proposition 4 of the paper). The session computes the measure
    //    itself, under the requested thread budget.
    let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
    session.set_parallelism(parallelism);
    println!("measure parallelism: {parallelism} (the artifact is identical for every setting)");

    // 3. Stages compute lazily and are cached: asking for the mesh builds
    //    scalar field -> scalar tree -> super tree -> layout -> mesh once.
    let stages = session.stages().expect("valid scalar field");
    println!(
        "super tree: {} nodes; mesh: {} triangles",
        stages.super_tree.node_count(),
        stages.mesh.triangle_count()
    );

    // 4. Ask analysis questions directly on the cached stages.
    for alpha in [1.0, 3.0, 4.0] {
        let peaks = peaks_at_alpha(stages.render_tree, stages.layout, alpha);
        println!("maximal {alpha}-connected components (peaks at height {alpha}): {}", peaks.len());
        for p in &peaks {
            println!("   vertices {:?} (summit K = {})", p.members, p.summit_height);
        }
    }

    // 5. Look at it: ASCII in the terminal (one exporter backend)...
    println!("\nterrain heightmap (top view):\n");
    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);
    println!("{}", Ascii::new(60, 18).export_string(&scene).expect("ascii render"));

    // ...and the requested artifact on disk (another backend, same scene).
    session.write_artifact(exporter.as_ref(), &out_path).expect("write artifact");
    println!("wrote {} terrain artifact to {}", exporter.name(), out_path.display());
}
