//! Quickstart: build a K-Core terrain with the staged [`TerrainPipeline`]
//! session and inspect it from the terminal — end to end through the I/O
//! boundary: graphs come in through `GraphSource`, artifacts go out through
//! `Exporter` backends.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart [-- --threads <serial|auto|N>]
//!                                [-- --input <graph file>]
//!                                [-- --format <svg|treemap|obj|ply|ascii|json>]
//!                                [-- --out <artifact path>]
//!                                [-- --save-graph <binary snapshot path>]
//!                                [-- --snapshot-version <2|3>]
//!                                [-- --mapped]
//! ```
//!
//! Without `--input` a small built-in collaboration graph is used;
//! `--save-graph` writes that graph as a binary snapshot which a later run
//! can `--input` back (CI round-trips exactly this and diffs the SVG
//! bytes). `--snapshot-version` picks the generation: `3` (the default) is
//! the zero-copy CSR layout that `TerrainPipeline::open_mapped` serves
//! straight from the mapped file; `2` keeps the legacy edge-list encoding
//! for older readers. `--mapped` makes `--input` (which must then name a
//! v3 snapshot) open memory-mapped instead of deserializing — the session
//! runs off the page cache and the artifact bytes are identical to the
//! owned path (CI diffs exactly that). The `--threads` knob is pure
//! wall-clock: the emitted artifact is byte-identical for every setting
//! (CI diffs `--threads serial` against `--threads 2` end-to-end).

use graph_terrain::prelude::*;
use measures::Parallelism;
use terrain::{exporter_by_name, peaks_at_alpha, Ascii, Exporter, RenderScene};
use ugraph::io::{encode_binary_v2, write_binary_v3_file, GraphSource};
use ugraph::GraphBuilder;

/// `--flag value` or `--flag=value`, matching the figure binaries' parser.
fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parallelism = flag(&args, "--threads")
        .and_then(|v| Parallelism::parse(&v).ok())
        .unwrap_or(Parallelism::Serial);
    let exporter = flag(&args, "--format")
        .map(|name| exporter_by_name(&name).expect("unknown --format backend"))
        .unwrap_or_else(|| exporter_by_name("svg").expect("svg backend exists"));
    let out_path = flag(&args, "--out").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("graph_terrain_quickstart.{}", exporter.file_extension()))
    });

    // 1+2. Get a graph and start a session whose scalar field is the K-Core
    //    number of each vertex, so the terrain's peaks are exactly the dense
    //    K-Cores (Proposition 4 of the paper). The session computes the
    //    measure itself, under the requested thread budget. With `--mapped`
    //    the graph never leaves the snapshot file: the session serves the
    //    CSR arrays straight out of the memory mapping.
    let input = flag(&args, "--input");
    let owned_graph; // keeps the owned graph alive for the borrowed session
    let mut session = if args.iter().any(|a| a == "--mapped") {
        let path = input.as_deref().expect("--mapped requires --input <v3 snapshot path>");
        let session =
            TerrainPipeline::open_mapped(path, Measure::KCore).expect("open mapped v3 snapshot");
        println!(
            "opened {path} zero-copy ({} vertices, {} edges)",
            session.graph().vertex_count(),
            session.graph().edge_count()
        );
        session
    } else {
        // Ingest any supported format through GraphSource, or build the demo
        // graph by hand — two dense "research groups" (a K5 and a K4)
        // connected through a chain of collaborations.
        owned_graph = match input {
            Some(path) => {
                let parsed = GraphSource::path(&path).load().expect("load --input graph");
                println!("loaded {path} ({} vertices)", parsed.graph.vertex_count());
                parsed.graph
            }
            None => {
                let mut builder = GraphBuilder::new();
                for u in 0..5u32 {
                    for v in (u + 1)..5u32 {
                        builder.add_edge(u, v); // group A: vertices 0..5
                    }
                }
                for u in 5..9u32 {
                    for v in (u + 1)..9u32 {
                        builder.add_edge(u, v); // group B: vertices 5..9
                    }
                }
                builder.extend_edges([(4u32, 9u32), (9, 10), (10, 5)]); // bridge authors
                builder.build()
            }
        };
        println!(
            "graph: {} vertices, {} edges",
            owned_graph.vertex_count(),
            owned_graph.edge_count()
        );

        // Optionally snapshot the graph so a later run can `--input` it back,
        // byte-identically. v3 (default) is the zero-copy CSR layout that
        // `MappedCsrGraph` serves without deserializing; v2 stays available
        // for readers that predate it.
        if let Some(path) = flag(&args, "--save-graph") {
            let version = flag(&args, "--snapshot-version").unwrap_or_else(|| "3".to_string());
            match version.as_str() {
                "3" => write_binary_v3_file(&owned_graph, None, &path).expect("write v3 snapshot"),
                "2" => {
                    let blob = encode_binary_v2(&owned_graph, None).expect("encode v2 snapshot");
                    std::fs::write(&path, blob).expect("write v2 snapshot");
                }
                other => panic!("unsupported --snapshot-version {other:?} (expected 2 or 3)"),
            }
            println!("saved binary v{version} snapshot to {path}");
        }

        TerrainPipeline::from_measure(&owned_graph, Measure::KCore)
    };
    session.set_parallelism(parallelism);
    println!("measure parallelism: {parallelism} (the artifact is identical for every setting)");

    // 3. Stages compute lazily and are cached: asking for the mesh builds
    //    scalar field -> scalar tree -> super tree -> layout -> mesh once.
    let stages = session.stages().expect("valid scalar field");
    println!(
        "super tree: {} nodes; mesh: {} triangles",
        stages.super_tree.node_count(),
        stages.mesh.triangle_count()
    );

    // 4. Ask analysis questions directly on the cached stages.
    for alpha in [1.0, 3.0, 4.0] {
        let peaks = peaks_at_alpha(stages.render_tree, stages.layout, alpha);
        println!("maximal {alpha}-connected components (peaks at height {alpha}): {}", peaks.len());
        for p in &peaks {
            println!("   vertices {:?} (summit K = {})", p.members, p.summit_height);
        }
    }

    // 5. Look at it: ASCII in the terminal (one exporter backend)...
    println!("\nterrain heightmap (top view):\n");
    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);
    println!("{}", Ascii::new(60, 18).export_string(&scene).expect("ascii render"));

    // ...and the requested artifact on disk (another backend, same scene).
    session.write_artifact(exporter.as_ref(), &out_path).expect("write artifact");
    println!("wrote {} terrain artifact to {}", exporter.name(), out_path.display());
}
