//! Community landscapes (the Figure 1(b) / Figure 8 workflow): detect
//! overlapping communities, draw one terrain per community score field, and
//! read off core members and sub-communities.
//!
//! Run with:
//! ```text
//! cargo run --release --example community_landscape
//! ```

use graph_terrain::prelude::*;
use measures::overlapping_community_scores;
use terrain::{highest_peaks, peaks_at_alpha, Svg};
use ugraph::generators::{overlapping_communities, OverlappingCommunityConfig};

fn main() {
    // A DBLP-like network with four planted overlapping communities, each made
    // of two sub-groups that only interact through their core members.
    let planted = overlapping_communities(&OverlappingCommunityConfig {
        communities: 4,
        community_size: 250,
        subgroups_per_community: 2,
        overlap_fraction: 0.05,
        p_subgroup: 0.12,
        p_community: 0.012,
        p_background: 0.0008,
        seed: 17,
    });
    let graph = &planted.graph;
    println!("network: {} authors, {} edges", graph.vertex_count(), graph.edge_count());

    // Detect overlapping communities from scratch (label propagation seeds +
    // embeddedness scores) — the stand-in for the paper's BigCLAM step.
    let detected = overlapping_community_scores(graph, 4, 99);
    println!("detected {} community score fields", detected.scores.len());

    for (community, scores) in detected.scores.iter().enumerate() {
        let mut session = TerrainPipeline::vertex(graph, scores.clone()).expect("score field");
        session.set_svg_size(SvgSize::new(900.0, 700.0));
        let stages = session.stages().expect("score terrain stages");
        let major = peaks_at_alpha(stages.render_tree, stages.layout, 0.5);
        let tallest = highest_peaks(stages.render_tree, stages.layout, 2);
        println!("\ncommunity {community}:");
        println!("  major peaks at score 0.5: {}", major.len());
        if let Some(top) = tallest.first() {
            // The top of the tallest peak holds the community's core members.
            let mut core: Vec<u32> = top.members.clone();
            core.truncate(8);
            println!(
                "  tallest peak: {} members, summit score {:.2}; sample of core members: {:?}",
                top.member_count, top.summit_height, core
            );
        }
        if tallest.len() > 1 {
            println!(
                "  second summit at score {:.2} — a separate sub-community inside the same terrain",
                tallest[1].summit_height
            );
        }
        let path = std::env::temp_dir().join(format!("graph_terrain_community{community}.svg"));
        session.write_artifact(&Svg::new(900.0, 700.0), &path).expect("write svg");
        println!("  wrote terrain to {}", path.display());
    }
}
