//! Degree and degree centrality.

use ugraph::GraphStorage;

/// Degree of every vertex, indexed by vertex id.
pub fn degrees<G: GraphStorage + ?Sized>(graph: &G) -> Vec<usize> {
    graph.vertices().map(|v| graph.degree(v)).collect()
}

/// Normalized degree centrality: `deg(v) / (n - 1)`.
///
/// For graphs with fewer than two vertices every centrality is 0.
pub fn degree_centrality<G: GraphStorage + ?Sized>(graph: &G) -> Vec<f64> {
    let n = graph.vertex_count();
    if n < 2 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    graph.vertices().map(|v| graph.degree(v) as f64 / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn star_graph_degrees() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=4u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        assert_eq!(degrees(&g), vec![4, 1, 1, 1, 1]);
        let dc = degree_centrality(&g);
        assert!((dc[0] - 1.0).abs() < 1e-12);
        assert!((dc[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trivial_graphs() {
        let g = GraphBuilder::new().build();
        assert!(degrees(&g).is_empty());
        assert!(degree_centrality(&g).is_empty());

        let mut b = GraphBuilder::new();
        b.ensure_vertex(0);
        let g = b.build();
        assert_eq!(degree_centrality(&g), vec![0.0]);
    }
}
