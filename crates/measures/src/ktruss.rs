//! K-Truss decomposition (truss numbers per edge).
//!
//! Definition 5 of the paper: a K-Truss is a subgraph in which every edge
//! participates in at least `K` triangles within the subgraph; `KT(e)` is the
//! largest `K` for which `e` belongs to a K-Truss. With `KT(e)` as the edge
//! scalar, Proposition 5 makes every maximal α-edge-connected component a
//! K-Truss with `K = α` — the scalar field of Figures 6(e) and 7(b,d).
//!
//! Note on conventions: the literature sometimes calls our `K` value `k - 2`
//! (so a triangle is a 3-truss). We follow the paper's Definition 5, where the
//! truss number counts *triangles*, so a lone triangle has `KT(e) = 1` on all
//! three edges.

use crate::triangles::edge_triangle_counts_with;
use ugraph::par::Parallelism;
use ugraph::{EdgeId, GraphStorage, VertexId};

/// Result of a K-Truss decomposition.
#[derive(Clone, Debug)]
pub struct KTrussDecomposition {
    /// `truss[e]` is `KT(e)`, the truss number of edge `e`.
    pub truss: Vec<usize>,
    /// The largest truss number present.
    pub max_truss: usize,
}

impl KTrussDecomposition {
    /// Edges whose truss number is at least `k`.
    pub fn edges_with_truss_at_least(&self, k: usize) -> Vec<EdgeId> {
        self.truss
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t >= k)
            .map(|(e, _)| EdgeId::from_index(e))
            .collect()
    }

    /// Edges of the densest K-Truss (`k = self.max_truss`).
    pub fn densest_truss_edges(&self) -> Vec<EdgeId> {
        self.edges_with_truss_at_least(self.max_truss)
    }
}

/// Compute truss numbers by iterative support peeling.
///
/// Edges are bucketed by their current support (number of triangles among
/// still-present edges); the minimum-support edge is peeled and the supports
/// of the edges closing triangles with it are decremented. Complexity is
/// `O(Σ_e (deg(u)+deg(v)))` ≈ `O(|E|^1.5)` on sparse graphs.
pub fn truss_numbers<G: GraphStorage + ?Sized>(graph: &G) -> KTrussDecomposition {
    truss_numbers_with(graph, Parallelism::Serial)
}

/// [`truss_numbers`] with the initial triangle-support pass parallelized
/// over edges.
///
/// The peeling itself is inherently sequential (each removal changes the
/// supports the next removal depends on), but on sparse graphs the support
/// initialization is a large share of the cost. Results are exactly equal
/// across every `parallelism` setting — the peeling always starts from the
/// same supports and proceeds identically.
pub fn truss_numbers_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> KTrussDecomposition {
    let m = graph.edge_count();
    if m == 0 {
        return KTrussDecomposition { truss: Vec::new(), max_truss: 0 };
    }
    let mut support = edge_triangle_counts_with(graph, parallelism);
    let max_support = support.iter().copied().max().unwrap_or(0);

    // Bucket queue over supports.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_support + 1];
    for (e, &s) in support.iter().enumerate() {
        buckets[s].push(e as u32);
    }
    let mut removed = vec![false; m];
    let mut truss = vec![0usize; m];
    let mut running_k = 0usize;
    let mut processed = 0usize;
    let mut level = 0usize;

    while processed < m {
        // Find the lowest non-empty bucket at or below the current level; a
        // decrement may have pushed an edge into a lower bucket.
        while level < buckets.len() && buckets[level].is_empty() {
            level += 1;
        }
        if level >= buckets.len() {
            break;
        }
        let e = buckets[level].pop().unwrap() as usize;
        if removed[e] {
            continue;
        }
        if support[e] != level {
            // Stale entry: the edge now lives in a lower bucket; skip it.
            continue;
        }
        removed[e] = true;
        processed += 1;
        running_k = running_k.max(support[e]);
        truss[e] = running_k;

        // Decrement the support of every edge that formed a triangle with e.
        let (u, v) = graph.endpoints(EdgeId::from_index(e));
        let (small, large) = if graph.degree(u) <= graph.degree(v) { (u, v) } else { (v, u) };
        for (w, ew_small) in graph.neighbors(small) {
            if removed[ew_small.index()] || w == large {
                continue;
            }
            if let Some(ew_large) = graph.find_edge(w, large) {
                if removed[ew_large.index()] {
                    continue;
                }
                for &other in &[ew_small.index(), ew_large.index()] {
                    if support[other] > 0 {
                        support[other] -= 1;
                        buckets[support[other]].push(other as u32);
                        if support[other] < level {
                            level = support[other];
                        }
                    }
                }
            }
        }
    }

    let max_truss = truss.iter().copied().max().unwrap_or(0);
    KTrussDecomposition { truss, max_truss }
}

/// Brute-force truss numbers for testing: for each `k`, iteratively delete
/// edges with fewer than `k` triangles and record the survivors.
pub fn truss_numbers_bruteforce<G: GraphStorage + ?Sized>(graph: &G) -> Vec<usize> {
    let m = graph.edge_count();
    let mut truss = vec![0usize; m];
    let mut k = 1usize;
    loop {
        // Determine which edges survive the k-truss peeling.
        let mut present = vec![true; m];
        loop {
            let mut changed = false;
            for e in graph.edges() {
                if !present[e.id.index()] {
                    continue;
                }
                let count = triangles_within(graph, &present, e.u, e.v);
                if count < k {
                    present[e.id.index()] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let survivors: Vec<usize> = (0..m).filter(|&e| present[e]).collect();
        if survivors.is_empty() {
            break;
        }
        for e in survivors {
            truss[e] = k;
        }
        k += 1;
    }
    truss
}

fn triangles_within<G: GraphStorage + ?Sized>(
    graph: &G,
    present: &[bool],
    u: VertexId,
    v: VertexId,
) -> usize {
    let mut count = 0;
    for (w, euw) in graph.neighbors(u) {
        if w == v || !present[euw.index()] {
            continue;
        }
        if let Some(evw) = graph.find_edge(v, w) {
            if present[evw.index()] {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::erdos_renyi;
    use ugraph::CsrGraph;
    use ugraph::GraphBuilder;

    fn clique(k: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..k as u32 {
            for v in (u + 1)..k as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn triangle_truss_is_one() {
        let g = clique(3);
        let d = truss_numbers(&g);
        assert_eq!(d.truss, vec![1, 1, 1]);
        assert_eq!(d.max_truss, 1);
    }

    #[test]
    fn clique_truss_is_k_minus_2() {
        for k in 4..=7usize {
            let g = clique(k);
            let d = truss_numbers(&g);
            assert!(d.truss.iter().all(|&t| t == k - 2), "K{k}: {:?}", d.truss);
        }
    }

    #[test]
    fn path_and_tree_have_zero_truss() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        let g = b.build();
        let d = truss_numbers(&g);
        assert_eq!(d.truss, vec![0, 0, 0]);
        assert_eq!(d.max_truss, 0);
    }

    #[test]
    fn clique_with_pendant_triangle() {
        // K5 on {0..4} plus a triangle {4,5,6}: clique edges have truss 3,
        // pendant triangle edges have truss 1.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        b.add_edge(5, 6);
        b.add_edge(4, 6);
        let g = b.build();
        let d = truss_numbers(&g);
        for e in g.edges() {
            let expected = if e.u.0 < 5 && e.v.0 < 5 { 3 } else { 1 };
            assert_eq!(d.truss[e.id.index()], expected, "edge {:?}-{:?}", e.u, e.v);
        }
        assert_eq!(d.densest_truss_edges().len(), 10);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        for seed in 0..4u64 {
            let g = erdos_renyi(35, 0.2, seed);
            let fast = truss_numbers(&g).truss;
            let slow = truss_numbers_bruteforce(&g);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn truss_invariant_edges_have_enough_triangles_in_their_truss() {
        let g = erdos_renyi(60, 0.15, 9);
        let d = truss_numbers(&g);
        for e in g.edges() {
            let k = d.truss[e.id.index()];
            if k == 0 {
                continue;
            }
            let present: Vec<bool> = (0..g.edge_count()).map(|i| d.truss[i] >= k).collect();
            let count = triangles_within(&g, &present, e.u, e.v);
            assert!(count >= k, "edge {:?} has {count} triangles in its {k}-truss", e.id);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let d = truss_numbers(&g);
        assert!(d.truss.is_empty());
        assert_eq!(d.max_truss, 0);
    }
}
