//! Betweenness centrality (Brandes' algorithm), exact and sampled.
//!
//! Betweenness is the second centrality of the paper's Figure 10 / user-study
//! Task 3 (degree vs betweenness correlation). Exact Brandes costs
//! `O(|V|·|E|)`; for the larger synthetic datasets the harness uses the
//! pivot-sampled estimator, which runs the same dependency accumulation from
//! a random subset of sources and rescales.
//!
//! Both variants are parallel over Brandes sources through
//! [`ugraph::par`]: each chunk of sources accumulates into its own
//! per-chunk centrality vector and the vectors are summed in fixed chunk
//! order, so [`Parallelism::Serial`] and [`Parallelism::Threads`]`(n)`
//! return bit-identical results for every `n`.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use ugraph::par::{map_reduce_chunks, Parallelism};
use ugraph::{GraphStorage, VertexId};

/// Exact betweenness centrality of every vertex (unnormalized, undirected
/// convention: each shortest path counted once). Single-threaded; see
/// [`betweenness_centrality_with`] for the parallel variant.
///
/// ```
/// use measures::betweenness_centrality;
/// use ugraph::GraphBuilder;
///
/// // Path 0-1-2-3-4: the middle vertex lies on the most shortest paths.
/// let mut b = GraphBuilder::new();
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
///     b.add_edge(u, v);
/// }
/// let bc = betweenness_centrality(&b.build());
/// assert_eq!(bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
/// ```
pub fn betweenness_centrality<G: GraphStorage + ?Sized>(graph: &G) -> Vec<f64> {
    betweenness_centrality_with(graph, Parallelism::Serial)
}

/// [`betweenness_centrality`] parallelized over Brandes sources.
///
/// The result is bit-identical for every `parallelism` setting (see
/// [`ugraph::par`]), so this is a pure wall-clock knob.
pub fn betweenness_centrality_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> Vec<f64> {
    let sources: Vec<VertexId> = graph.vertices().collect();
    brandes_from_sources(graph, &sources, 1.0, parallelism)
}

/// Sampled betweenness centrality using `samples` random source pivots.
/// Single-threaded; see [`betweenness_centrality_sampled_with`].
///
/// The estimate from each pivot is scaled by `n / samples` so that the
/// expected value equals the exact score. With a few hundred pivots the
/// ranking of vertices is already stable enough for visualization purposes.
///
/// # Exact-path boundary
///
/// When `samples >= n` there is nothing to sample: every vertex is a pivot,
/// the scale factor is 1 and the function returns the **exact** centrality
/// (identical to [`betweenness_centrality`], for any `seed`), rather than
/// drawing `n` of `n` pivots and rescaling.
pub fn betweenness_centrality_sampled<G: GraphStorage + ?Sized>(
    graph: &G,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    betweenness_centrality_sampled_with(graph, samples, seed, Parallelism::Serial)
}

/// [`betweenness_centrality_sampled`] parallelized over the sampled pivots.
///
/// Shares the sampled function's exact-path boundary (`samples >= n` falls
/// back to the exact computation) and the bit-identical-across-threads
/// guarantee of [`ugraph::par`].
pub fn betweenness_centrality_sampled_with<G: GraphStorage + ?Sized>(
    graph: &G,
    samples: usize,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    if samples >= n {
        return betweenness_centrality_with(graph, parallelism);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<VertexId> = graph.vertices().collect();
    all.shuffle(&mut rng);
    all.truncate(samples);
    let scale = n as f64 / samples as f64;
    brandes_from_sources(graph, &all, scale, parallelism)
}

/// Brandes dependency accumulation from `sources`, parallel over source
/// chunks. Each chunk owns a full centrality vector plus the per-source
/// scratch buffers; chunk vectors are summed elementwise in chunk order.
fn brandes_from_sources<G: GraphStorage + ?Sized>(
    graph: &G,
    sources: &[VertexId],
    scale: f64,
    parallelism: Parallelism,
) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut centrality = map_reduce_chunks(
        parallelism,
        sources.len(),
        |range| brandes_chunk(graph, &sources[range], scale),
        |mut acc, chunk| {
            for (a, c) in acc.iter_mut().zip(&chunk) {
                *a += c;
            }
            acc
        },
    )
    .unwrap_or_else(|| vec![0.0f64; n]);

    // Each undirected shortest path was counted from both endpoints when all
    // sources are used; halve to follow the standard undirected convention.
    for c in &mut centrality {
        *c /= 2.0;
    }
    centrality
}

/// The serial Brandes loop over one chunk of sources, accumulating into a
/// chunk-local centrality vector.
fn brandes_chunk<G: GraphStorage + ?Sized>(
    graph: &G,
    sources: &[VertexId],
    scale: f64,
) -> Vec<f64> {
    let n = graph.vertex_count();
    let mut centrality = vec![0.0f64; n];

    // Reused per-source scratch buffers.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut predecessors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);

    for &s in sources {
        // Reset scratch state.
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            predecessors[v].clear();
        }
        stack.clear();
        queue.clear();

        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        queue.push_back(s.0);

        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for w in graph.neighbor_vertices(VertexId(v)) {
                let w = w.index();
                if dist[w] < 0 {
                    dist[w] = dv + 1;
                    queue.push_back(w as u32);
                }
                if dist[w] == dv + 1 {
                    sigma[w] += sigma[v as usize];
                    predecessors[w].push(v);
                }
            }
        }

        // Dependency accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            let w = w as usize;
            let coeff = (1.0 + delta[w]) / sigma[w];
            for &v in &predecessors[w] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s.index() {
                centrality[w] += delta[w] * scale;
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::barabasi_albert;
    use ugraph::GraphBuilder;

    #[test]
    fn path_graph_center_has_highest_betweenness() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let bc = betweenness_centrality(&g);
        // Exact values for a path of 5 vertices: [0, 3, 4, 3, 0].
        assert!((bc[0] - 0.0).abs() < 1e-9);
        assert!((bc[1] - 3.0).abs() < 1e-9);
        assert!((bc[2] - 4.0).abs() < 1e-9);
        assert!((bc[3] - 3.0).abs() < 1e-9);
        assert!((bc[4] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_betweenness() {
        // Star with 5 leaves: center is on C(5,2) = 10 shortest paths.
        let mut b = GraphBuilder::new();
        for leaf in 1..=5u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let bc = betweenness_centrality(&g);
        assert!((bc[0] - 10.0).abs() < 1e-9);
        for &leaf_bc in &bc[1..=5] {
            assert!(leaf_bc.abs() < 1e-9);
        }
    }

    #[test]
    fn clique_has_zero_betweenness() {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let bc = betweenness_centrality(&g);
        assert!(bc.iter().all(|&c| c.abs() < 1e-9));
    }

    #[test]
    fn bridge_vertex_dominates() {
        // Two triangles joined through vertex 2: 0-1-2 and 2-3-4.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(2, 4);
        let g = b.build();
        let bc = betweenness_centrality(&g);
        let max = bc.iter().cloned().fold(f64::MIN, f64::max);
        assert!((bc[2] - max).abs() < 1e-12, "bridge vertex should have max betweenness");
        assert!(bc[2] > 3.0);
    }

    #[test]
    fn full_sampling_equals_exact() {
        let g = barabasi_albert(60, 2, 3);
        let exact = betweenness_centrality(&g);
        let sampled = betweenness_centrality_sampled(&g, 60, 0);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn oversampling_falls_back_to_the_exact_path() {
        // samples >= n must take the exact path: no pivot draw, no rescaling,
        // and therefore results bit-identical to the exact function for any
        // seed — including samples strictly greater than n.
        let g = barabasi_albert(60, 2, 3);
        let exact = betweenness_centrality(&g);
        for samples in [60usize, 61, 1000] {
            for seed in [0u64, 7, 0xdead] {
                let sampled = betweenness_centrality_sampled(&g, samples, seed);
                assert_eq!(sampled, exact, "samples {samples}, seed {seed}");
            }
        }
        // One pivot fewer than n is a genuine sample: scaled by n/(n-1), it
        // no longer matches the exact values bit for bit.
        let under = betweenness_centrality_sampled(&g, 59, 0);
        assert_ne!(under, exact);
    }

    #[test]
    fn parallel_brandes_is_bit_identical_to_serial() {
        let g = barabasi_albert(150, 3, 11);
        let serial = betweenness_centrality(&g);
        for threads in 1..=4 {
            let par = betweenness_centrality_with(&g, Parallelism::Threads(threads));
            assert_eq!(par, serial, "threads({threads})");
            let s_ser = betweenness_centrality_sampled(&g, 40, 5);
            let s_par =
                betweenness_centrality_sampled_with(&g, 40, 5, Parallelism::Threads(threads));
            assert_eq!(s_par, s_ser, "sampled, threads({threads})");
        }
    }

    #[test]
    fn sampled_estimate_preserves_top_vertex() {
        let g = barabasi_albert(300, 2, 8);
        let exact = betweenness_centrality(&g);
        let sampled = betweenness_centrality_sampled(&g, 100, 7);
        let top_exact = exact.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        // The exact top vertex should rank in the sampled top 5%.
        let mut order: Vec<usize> = (0..sampled.len()).collect();
        order.sort_by(|&a, &b| sampled[b].total_cmp(&sampled[a]));
        let rank = order.iter().position(|&v| v == top_exact).unwrap();
        assert!(rank < 15, "top exact vertex ranked {rank} in sampled estimate");
    }
}
