//! Closeness and harmonic centrality.
//!
//! Both are listed in the paper's introduction as global connectivity
//! measures. We use the component-local convention for closeness (distances
//! averaged over the vertex's own connected component, scaled by the component
//! fraction, as in Wasserman–Faust) so that disconnected graphs still produce
//! meaningful fields, and plain `Σ 1/d` for harmonic centrality, which handles
//! disconnection natively.
//!
//! Closeness is parallel over BFS sources through [`ugraph::par`]: every
//! vertex's score depends only on its own BFS, so chunks of sources compute
//! disjoint slices of the result and the outputs are identical — not merely
//! close — for every [`Parallelism`] setting.

use std::collections::VecDeque;
use ugraph::par::{map_collect_chunked, Parallelism};
use ugraph::{GraphStorage, VertexId};

/// Closeness centrality of every vertex. Single-threaded; see
/// [`closeness_centrality_with`] for the parallel variant.
///
/// `closeness(v) = ((r - 1) / (n - 1)) * ((r - 1) / Σ_{u reachable} d(v, u))`,
/// where `r` is the number of vertices reachable from `v` (including itself).
/// Isolated vertices get 0.
pub fn closeness_centrality<G: GraphStorage + ?Sized>(graph: &G) -> Vec<f64> {
    closeness_centrality_with(graph, Parallelism::Serial)
}

/// [`closeness_centrality`] parallelized over BFS sources.
///
/// Each chunk of sources runs its BFSs with chunk-local scratch buffers and
/// fills its own slice of the result, so the output is exactly the serial
/// output for every `parallelism` setting.
pub fn closeness_centrality_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> Vec<f64> {
    let n = graph.vertex_count();
    if n <= 1 {
        return vec![0.0f64; n];
    }
    map_collect_chunked(parallelism, n, |range| {
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        range
            .map(|v| {
                let v = VertexId::from_index(v);
                let (sum, reachable) = bfs_accumulate(graph, v, &mut dist, &mut queue);
                if reachable > 1 && sum > 0 {
                    let r = reachable as f64;
                    let frac = (r - 1.0) / (n as f64 - 1.0);
                    frac * (r - 1.0) / sum as f64
                } else {
                    0.0
                }
            })
            .collect()
    })
}

/// Harmonic centrality: `Σ_{u ≠ v} 1 / d(v, u)` with `1/∞ = 0`, normalized by
/// `n - 1` so values lie in `[0, 1]`.
pub fn harmonic_centrality<G: GraphStorage + ?Sized>(graph: &G) -> Vec<f64> {
    let n = graph.vertex_count();
    let mut result = vec![0.0f64; n];
    if n <= 1 {
        return result;
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for v in graph.vertices() {
        // BFS, accumulating 1/d on the fly.
        for d in dist.iter_mut() {
            *d = usize::MAX;
        }
        queue.clear();
        dist[v.index()] = 0;
        queue.push_back(v);
        let mut acc = 0.0f64;
        while let Some(x) = queue.pop_front() {
            let dx = dist[x.index()];
            if dx > 0 {
                acc += 1.0 / dx as f64;
            }
            for u in graph.neighbor_vertices(x) {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dx + 1;
                    queue.push_back(u);
                }
            }
        }
        result[v.index()] = acc / (n as f64 - 1.0);
    }
    result
}

/// BFS from `v`, returning (sum of distances to reachable vertices, number of
/// reachable vertices including `v`). Scratch buffers are reused.
fn bfs_accumulate<G: GraphStorage + ?Sized>(
    graph: &G,
    v: VertexId,
    dist: &mut [usize],
    queue: &mut VecDeque<VertexId>,
) -> (usize, usize) {
    for d in dist.iter_mut() {
        *d = usize::MAX;
    }
    queue.clear();
    dist[v.index()] = 0;
    queue.push_back(v);
    let mut sum = 0usize;
    let mut reachable = 0usize;
    while let Some(x) = queue.pop_front() {
        reachable += 1;
        sum += dist[x.index()];
        for u in graph.neighbor_vertices(x) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dist[x.index()] + 1;
                queue.push_back(u);
            }
        }
    }
    (sum, reachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn star_center_is_most_central() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=5u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let cc = closeness_centrality(&g);
        let hc = harmonic_centrality(&g);
        assert!(cc[0] > cc[1]);
        assert!(hc[0] > hc[1]);
        // Center closeness is exactly 1 (distance 1 to all 5 others).
        assert!((cc[0] - 1.0).abs() < 1e-9);
        assert!((hc[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_endpoints_are_least_central() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let cc = closeness_centrality(&g);
        assert!(cc[2] > cc[0]);
        assert!(cc[2] > cc[4]);
        assert!((cc[0] - cc[4]).abs() < 1e-12, "path is symmetric");
    }

    #[test]
    fn disconnected_graph_scales_by_component_size() {
        // One edge 0-1 and one isolated vertex 2.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(2);
        let g = b.build();
        let cc = closeness_centrality(&g);
        let hc = harmonic_centrality(&g);
        assert_eq!(cc[2], 0.0);
        assert_eq!(hc[2], 0.0);
        // Vertices 0 and 1: reachable component of size 2 out of 3 vertices.
        assert!((cc[0] - 0.5).abs() < 1e-9);
        assert!((hc[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn values_are_bounded() {
        let g = ugraph::generators::erdos_renyi(80, 0.05, 3);
        for &v in closeness_centrality(&g).iter().chain(harmonic_centrality(&g).iter()) {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn parallel_closeness_is_bit_identical_to_serial() {
        let g = ugraph::generators::erdos_renyi(120, 0.04, 5);
        let serial = closeness_centrality(&g);
        for threads in 1..=4 {
            let par = closeness_centrality_with(&g, Parallelism::Threads(threads));
            assert_eq!(par, serial, "threads({threads})");
        }
    }

    #[test]
    fn trivial_graphs() {
        let g = GraphBuilder::new().build();
        assert!(closeness_centrality(&g).is_empty());
        let mut b = GraphBuilder::new();
        b.ensure_vertex(0);
        let g = b.build();
        assert_eq!(closeness_centrality(&g), vec![0.0]);
        assert_eq!(harmonic_centrality(&g), vec![0.0]);
    }
}
