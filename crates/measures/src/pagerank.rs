//! PageRank on the undirected graph (power iteration).
//!
//! PageRank is listed in the paper's introduction as one of the global
//! importance measures a data scientist may want to visualize as a scalar
//! field. On an undirected graph the random walk follows each edge in both
//! directions.
//!
//! The edge sweep of each power iteration runs in **gather form**: vertex
//! `u`'s next rank sums `rank[v] / deg(v)` over `u`'s own (sorted) neighbor
//! list, so vertices are independent and the sweep parallelizes over vertex
//! chunks through [`ugraph::par`] with no write conflicts. The per-vertex
//! summation order is the neighbor order — fixed by the graph, not by the
//! chunking — and the dangling-mass and convergence-delta reductions merge
//! per-chunk sums in fixed chunk order, so every [`Parallelism`] setting
//! returns bit-identical ranks. The sweeps write into preallocated buffers
//! through disjoint `&mut` chunk slices
//! ([`ugraph::par::map_reduce_chunks_mut`]), so the steady state allocates
//! nothing per iteration.

use ugraph::par::{map_reduce_chunks_mut, Parallelism};
use ugraph::{GraphStorage, VertexId};

/// Configuration for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge rather than jumping).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iterations: 100, tolerance: 1e-9 }
    }
}

/// Compute PageRank scores; the result sums to 1. Single-threaded; see
/// [`pagerank_with`] for the parallel variant.
pub fn pagerank<G: GraphStorage + ?Sized>(graph: &G, config: &PageRankConfig) -> Vec<f64> {
    pagerank_with(graph, config, Parallelism::Serial)
}

/// [`pagerank`] with the edge sweep of every power iteration parallelized
/// over vertex chunks.
///
/// Ranks are bit-identical for every `parallelism` setting (see the module
/// docs for why the gather-form sweep makes that hold).
///
/// # Granularity
///
/// One power iteration is only `O(|E|)` of light arithmetic, and threads are
/// re-spawned per region (the engine has no persistent pool), so a thread
/// budget only pays off once the graph is large enough — roughly millions of
/// edges. For small graphs prefer [`Parallelism::Serial`], which spawns
/// nothing and still returns the same bits.
pub fn pagerank_with<G: GraphStorage + ?Sized>(
    graph: &G,
    config: &PageRankConfig,
    parallelism: Parallelism,
) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..1.0).contains(&config.damping), "damping must be in [0, 1)");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    // The three vectors of the steady state are allocated once; every power
    // iteration writes them in place through disjoint `&mut` chunk slices
    // (ugraph::par::map_reduce_chunks_mut), so iterations allocate nothing.
    let mut share = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];

    // Each iteration is two parallel regions (not four): the share pass also
    // sums the dangling mass, and the gather pass also sums its chunk's
    // convergence delta. Fewer thread-scope spawns per iteration matter here
    // because one power iteration is only O(|E|) light work.
    for _ in 0..config.max_iterations {
        // Outgoing share of every vertex, plus the rank mass sitting on
        // degree-0 vertices (redistributed uniformly via teleport).
        let rank_ref = &rank;
        let dangling_mass = map_reduce_chunks_mut(
            parallelism,
            &mut share,
            |range, chunk| {
                let mut dangling = 0.0f64;
                for (slot, v) in chunk.iter_mut().zip(range) {
                    let d = graph.degree(VertexId::from_index(v));
                    if d == 0 {
                        dangling += rank_ref[v];
                        *slot = 0.0;
                    } else {
                        *slot = rank_ref[v] / d as f64;
                    }
                }
                dangling
            },
            |a, b| a + b,
        )
        .expect("n > 0");

        let teleport = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        // Gather sweep: each vertex sums the shares of its sorted neighbor
        // list, an order the chunking cannot affect; the chunk also sums its
        // own |new - old| contribution to the convergence delta.
        let share_ref = &share;
        let delta = map_reduce_chunks_mut(
            parallelism,
            &mut next,
            |range, chunk| {
                let mut delta = 0.0f64;
                for (slot, u) in chunk.iter_mut().zip(range) {
                    let gathered: f64 = graph
                        .neighbor_vertices(VertexId::from_index(u))
                        .map(|v| share_ref[v.index()])
                        .sum();
                    let new_rank = teleport + config.damping * gathered;
                    delta += (new_rank - rank_ref[u]).abs();
                    *slot = new_rank;
                }
                delta
            },
            |a, b| a + b,
        )
        .expect("n > 0");
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::barabasi_albert;
    use ugraph::GraphBuilder;

    #[test]
    fn ranks_sum_to_one() {
        let g = barabasi_albert(200, 3, 4);
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn symmetric_graph_has_symmetric_ranks() {
        // A 4-cycle: all vertices are equivalent.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=8u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[0] > pr[1] * 3.0);
    }

    #[test]
    fn dangling_vertices_receive_teleport_mass() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(2); // isolated vertex
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[2] > 0.0);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn parallel_pagerank_is_bit_identical_to_serial() {
        let g = barabasi_albert(300, 3, 9);
        let config = PageRankConfig::default();
        let serial = pagerank(&g, &config);
        for threads in 1..=4 {
            let par = pagerank_with(&g, &config, Parallelism::Threads(threads));
            assert_eq!(par, serial, "threads({threads})");
        }
    }
}
