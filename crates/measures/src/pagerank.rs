//! PageRank on the undirected graph (power iteration).
//!
//! PageRank is listed in the paper's introduction as one of the global
//! importance measures a data scientist may want to visualize as a scalar
//! field. On an undirected graph the random walk follows each edge in both
//! directions.

use ugraph::CsrGraph;

/// Configuration for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge rather than jumping).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iterations: 100, tolerance: 1e-9 }
    }
}

/// Compute PageRank scores; the result sums to 1.
pub fn pagerank(graph: &CsrGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    assert!((0.0..1.0).contains(&config.damping), "damping must be in [0, 1)");
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..config.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_mass = 0.0;
        for v in graph.vertices() {
            let d = graph.degree(v);
            if d == 0 {
                dangling_mass += rank[v.index()];
                continue;
            }
            let share = rank[v.index()] / d as f64;
            for u in graph.neighbor_vertices(v) {
                next[u.index()] += share;
            }
        }
        let teleport = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new_rank = teleport + config.damping * next[v];
            delta += (new_rank - rank[v]).abs();
            rank[v] = new_rank;
        }
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::barabasi_albert;
    use ugraph::GraphBuilder;

    #[test]
    fn ranks_sum_to_one() {
        let g = barabasi_albert(200, 3, 4);
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn symmetric_graph_has_symmetric_ranks() {
        // A 4-cycle: all vertices are equivalent.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=8u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[0] > pr[1] * 3.0);
    }

    #[test]
    fn dangling_vertices_receive_teleport_mass() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(2); // isolated vertex
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[2] > 0.0);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }
}
