//! Incremental recomputation of measures after a graph delta.
//!
//! Inputs come from `ugraph::delta`: the compacted new graph, the
//! new-edge-id → base-edge-id remap, and the per-vertex *dirty* flags
//! (endpoints of every effective structural change). Each function here
//! reuses as much of the old result as its measure's locality allows, and
//! each is **exact** — the output is identical to recomputing from scratch
//! on the new graph, which the unit tests assert directly.
//!
//! Locality tiers (see [`DeltaCost`]):
//!
//! - **Local** — degree and triangle counts. A vertex's degree changes only
//!   when an incident edge changes (its endpoint is dirty); an edge's
//!   triangle count is `|N(u) ∩ N(v)|`, which changes only when `u` or `v`
//!   gains or loses a neighbor — i.e. when an endpoint is dirty. Everything
//!   else is copied through the edge remap.
//! - **DirtyRegion** — k-core and k-truss. Peeling is connected-component
//!   local: a component of the *new* graph containing no dirty vertex
//!   consists entirely of vertices whose incident edge sets are unchanged,
//!   so its old values still hold; only components touching dirty vertices
//!   are re-peeled (on their induced subgraph, or directly on the new graph
//!   when the dirty region is the majority of it — extracting an induced
//!   copy of most of the graph costs more than it saves). On a single
//!   connected component this degrades to a full re-peel — the honest
//!   worst case.
//! - **Full** — betweenness, closeness, PageRank. One edge can reroute
//!   shortest paths (or shift the stationary distribution) across the whole
//!   graph, so these fall back to full recomputation; the caller reports
//!   them as such.

use ugraph::delta::CompactedDelta;
use ugraph::par::Parallelism;
use ugraph::{connected_components, EdgeId, GraphStorage, VertexId};

use crate::kcore::{core_numbers, KCoreDecomposition};
use crate::ktruss::{truss_numbers_with, KTrussDecomposition};

/// How much of a measure survives a delta: the per-measure entry of the
/// delta report.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaCost {
    /// Recomputed only around dirty endpoints (degree, triangle counts).
    Local,
    /// Re-peeled only on connected components containing dirty vertices
    /// (k-core, k-truss).
    DirtyRegion,
    /// Recomputed from scratch — the measure is global (betweenness,
    /// closeness, PageRank).
    Full,
}

impl DeltaCost {
    /// Stable lower-case name (`local` / `dirty-region` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            DeltaCost::Local => "local",
            DeltaCost::DirtyRegion => "dirty-region",
            DeltaCost::Full => "full",
        }
    }
}

/// Degrees after a delta: dirty (and new) vertices are recounted, the rest
/// copied from `old_degrees` (indexed by the unchanged vertex ids).
///
/// Exact because a vertex's degree can only change when one of its incident
/// edges changes, which flags it dirty.
pub fn incremental_degrees<G: GraphStorage + ?Sized>(
    new_graph: &G,
    old_degrees: &[usize],
    dirty: &[bool],
) -> Vec<usize> {
    assert_eq!(dirty.len(), new_graph.vertex_count(), "dirty mask length mismatch");
    (0..new_graph.vertex_count())
        .map(|v| {
            if v < old_degrees.len() && !dirty[v] {
                old_degrees[v]
            } else {
                new_graph.degree(VertexId::from_index(v))
            }
        })
        .collect()
}

/// Per-edge triangle counts after a delta: edges with a dirty endpoint are
/// recomputed on the new graph, all others copied from the old counts
/// through the `base_edge` remap.
///
/// Exact because an edge's count is `|N(u) ∩ N(v)|` over the endpoint
/// neighbor sets, and a non-dirty vertex's neighbor set is unchanged.
pub fn incremental_edge_triangle_counts<G: GraphStorage + ?Sized>(
    new_graph: &G,
    old_counts: &[usize],
    compacted: &CompactedDelta,
    parallelism: Parallelism,
) -> Vec<usize> {
    assert_eq!(compacted.base_edge.len(), new_graph.edge_count(), "edge remap length mismatch");
    // Recompute dirty-incident edges in one deterministic parallel pass over
    // the touched subset, then scatter; clean edges copy through the remap.
    let mut counts = vec![0usize; new_graph.edge_count()];
    let mut touched: Vec<EdgeId> = Vec::new();
    for e in new_graph.edges() {
        if compacted.dirty[e.u.index()] || compacted.dirty[e.v.index()] {
            touched.push(e.id);
        } else {
            let old = compacted.base_edge[e.id.index()]
                .expect("an edge with clean endpoints must survive from the base");
            counts[e.id.index()] = old_counts[old.index()];
        }
    }
    let recomputed = ugraph::par::map_collect(parallelism, touched.len(), |i| {
        let (u, v) = new_graph.endpoints(touched[i]);
        sorted_intersection_size(new_graph.neighbor_slice(u), new_graph.neighbor_slice(v))
    });
    for (e, c) in touched.iter().zip(recomputed) {
        counts[e.index()] = c;
    }
    counts
}

/// Per-vertex triangle counts derived from (incrementally maintained)
/// per-edge counts: each triangle through `v` uses two incident edges.
pub fn vertex_triangle_counts_from_edges<G: GraphStorage + ?Sized>(
    graph: &G,
    edge_counts: &[usize],
    parallelism: Parallelism,
) -> Vec<usize> {
    assert_eq!(edge_counts.len(), graph.edge_count(), "edge counts length mismatch");
    ugraph::par::map_collect(parallelism, graph.vertex_count(), |v| {
        let sum: usize = graph
            .incident_edge_slice(VertexId::from_index(v))
            .iter()
            .map(|e| edge_counts[e.index()])
            .sum();
        sum / 2
    })
}

/// K-core decomposition after a delta: components of the new graph that
/// contain a dirty vertex are re-peeled on their induced subgraph; every
/// other vertex keeps its old core number.
///
/// Exact because peeling is component-local and a component with no dirty
/// vertex has an identical edge set (and thus identical peel) in both
/// graphs. A new vertex in a clean component is necessarily isolated
/// (anything that gave it an edge would have flagged it dirty): core 0.
pub fn incremental_core_numbers<G: GraphStorage + ?Sized>(
    new_graph: &G,
    old: &KCoreDecomposition,
    dirty: &[bool],
) -> KCoreDecomposition {
    assert_eq!(dirty.len(), new_graph.vertex_count(), "dirty mask length mismatch");
    let components = connected_components(new_graph);
    let keep = dirty_component_mask(&components.label, components.count, dirty);
    if keep.iter().all(|&k| !k) {
        // No component touched: copy, extending with isolated new vertices.
        let mut core = old.core.clone();
        core.resize(new_graph.vertex_count(), 0);
        return KCoreDecomposition { core, degeneracy: old.degeneracy };
    }
    let in_region: Vec<bool> = components.label.iter().map(|&c| keep[c]).collect();
    // When the dirty region is most of the graph, extracting the induced
    // subgraph costs more than it saves — peel the new graph directly
    // (still exact; this is the documented single-component worst case).
    if in_region.iter().filter(|&&r| r).count() * 2 > new_graph.vertex_count() {
        return core_numbers(new_graph);
    }
    let (sub, back) = new_graph.induced_subgraph(&in_region);
    let sub_cores = core_numbers(&sub);
    let mut core = vec![0usize; new_graph.vertex_count()];
    for v in 0..new_graph.vertex_count() {
        if !in_region[v] {
            core[v] = if v < old.core.len() {
                old.core[v]
            } else {
                debug_assert_eq!(new_graph.degree(VertexId::from_index(v)), 0);
                0
            };
        }
    }
    for (sub_v, &orig) in back.iter().enumerate() {
        core[orig.index()] = sub_cores.core[sub_v];
    }
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    KCoreDecomposition { core, degeneracy }
}

/// K-truss decomposition after a delta: same dirty-component strategy as
/// [`incremental_core_numbers`], but per edge. Edges in clean components
/// copy their old truss number through the `base_edge` remap; edges in
/// touched components get the re-peeled value of the induced subgraph.
pub fn incremental_truss_numbers<G: GraphStorage + ?Sized>(
    new_graph: &G,
    old: &KTrussDecomposition,
    compacted: &CompactedDelta,
    parallelism: Parallelism,
) -> KTrussDecomposition {
    assert_eq!(compacted.base_edge.len(), new_graph.edge_count(), "edge remap length mismatch");
    let components = connected_components(new_graph);
    let keep = dirty_component_mask(&components.label, components.count, &compacted.dirty);
    let in_region: Vec<bool> = components.label.iter().map(|&c| keep[c]).collect();
    // Same bail-out as the k-core path: a majority-dirty graph re-peels
    // directly rather than through an induced copy of itself.
    if in_region.iter().filter(|&&r| r).count() * 2 > new_graph.vertex_count() {
        return truss_numbers_with(new_graph, parallelism);
    }
    let mut truss = vec![0usize; new_graph.edge_count()];
    for e in new_graph.edges() {
        if !in_region[e.u.index()] {
            let old_e = compacted.base_edge[e.id.index()]
                .expect("an edge in a clean component must survive from the base");
            truss[e.id.index()] = old.truss[old_e.index()];
        }
    }
    if keep.iter().any(|&k| k) {
        let (sub, back) = new_graph.induced_subgraph(&in_region);
        let sub_truss = truss_numbers_with(&sub, parallelism);
        for e in sub.edges() {
            let (u, v) = (back[e.u.index()], back[e.v.index()]);
            let orig =
                new_graph.find_edge(u, v).expect("induced subgraph edges exist in the full graph");
            truss[orig.index()] = sub_truss.truss[e.id.index()];
        }
    }
    let max_truss = truss.iter().copied().max().unwrap_or(0);
    KTrussDecomposition { truss, max_truss }
}

/// Per-component flags: `true` for components containing a dirty vertex.
fn dirty_component_mask(label: &[usize], count: usize, dirty: &[bool]) -> Vec<bool> {
    let mut keep = vec![false; count];
    for (v, &c) in label.iter().enumerate() {
        if dirty[v] {
            keep[c] = true;
        }
    }
    keep
}

fn sorted_intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::degrees;
    use crate::triangles::{edge_triangle_counts_with, vertex_triangle_counts_with};
    use ugraph::delta::{DeltaOp, DeltaOverlay, GraphDelta};
    use ugraph::generators::rmat;
    use ugraph::CsrGraph;

    /// Apply a pseudo-random delta to `base`, returning the compaction.
    fn random_compaction(base: &CsrGraph, seed: u64, ops: usize) -> CompactedDelta {
        let mut state = seed | 1;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let span = (base.vertex_count() as u32).max(4) + 3;
        let mut delta = GraphDelta::new();
        for _ in 0..ops {
            let r = step();
            let u = (r >> 8) as u32 % span;
            let v = (r >> 40) as u32 % span;
            let op = if r % 2 == 0 { DeltaOp::Insert } else { DeltaOp::Delete };
            delta.push(op, u, v);
        }
        let mut overlay = DeltaOverlay::new(base);
        overlay.apply(&delta);
        overlay.compact()
    }

    fn check_all_measures(base: &CsrGraph, compacted: &CompactedDelta) {
        let new_graph = &compacted.graph;
        for par in [Parallelism::Serial, Parallelism::Threads(2)] {
            let inc_deg = incremental_degrees(new_graph, &degrees(base), &compacted.dirty);
            assert_eq!(inc_deg, degrees(new_graph));

            let old_tri = edge_triangle_counts_with(base, par);
            let inc_tri = incremental_edge_triangle_counts(new_graph, &old_tri, compacted, par);
            assert_eq!(inc_tri, edge_triangle_counts_with(new_graph, par));

            let vt = vertex_triangle_counts_from_edges(new_graph, &inc_tri, par);
            assert_eq!(vt, vertex_triangle_counts_with(new_graph, par));

            let inc_core =
                incremental_core_numbers(new_graph, &core_numbers(base), &compacted.dirty);
            let full_core = core_numbers(new_graph);
            assert_eq!(inc_core.core, full_core.core);
            assert_eq!(inc_core.degeneracy, full_core.degeneracy);

            let inc_truss = incremental_truss_numbers(
                new_graph,
                &truss_numbers_with(base, par),
                compacted,
                par,
            );
            let full_truss = truss_numbers_with(new_graph, par);
            assert_eq!(inc_truss.truss, full_truss.truss);
            assert_eq!(inc_truss.max_truss, full_truss.max_truss);
        }
    }

    #[test]
    fn incremental_matches_full_recompute_on_random_deltas() {
        for seed in [3u64, 17, 99] {
            let base = rmat(6, 150, seed);
            let compacted = random_compaction(&base, seed.wrapping_mul(0x9e37), 40);
            check_all_measures(&base, &compacted);
        }
    }

    #[test]
    fn empty_delta_copies_everything() {
        let base = rmat(5, 60, 7);
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&GraphDelta::new());
        let compacted = overlay.compact();
        assert_eq!(compacted.graph, base);
        check_all_measures(&base, &compacted);
        // With no dirty vertices the triangle pass recomputes nothing.
        let old_tri = edge_triangle_counts_with(&base, Parallelism::Serial);
        let inc = incremental_edge_triangle_counts(
            &compacted.graph,
            &old_tri,
            &compacted,
            Parallelism::Serial,
        );
        assert_eq!(inc, old_tri);
    }

    #[test]
    fn vertex_growth_extends_results() {
        let base = rmat(4, 30, 11);
        let mut delta = GraphDelta::new();
        let far = base.vertex_count() as u32 + 5;
        delta.push(DeltaOp::Insert, 0, far);
        delta.push(DeltaOp::Insert, far + 2, far + 2); // isolated mention
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&delta);
        let compacted = overlay.compact();
        assert_eq!(compacted.graph.vertex_count(), far as usize + 3);
        check_all_measures(&base, &compacted);
    }

    #[test]
    fn delta_cost_names_are_stable() {
        assert_eq!(DeltaCost::Local.name(), "local");
        assert_eq!(DeltaCost::DirtyRegion.name(), "dirty-region");
        assert_eq!(DeltaCost::Full.name(), "full");
    }
}
