//! Scalar field containers.
//!
//! A scalar field is simply a `f64` value per vertex (or per edge), but the
//! wrappers here carry the association with a specific graph (length checked
//! at construction), provide the normalization and discretization helpers the
//! terrain pipeline needs, and give the rest of the workspace a common
//! vocabulary type.

use ugraph::{EdgeId, GraphError, GraphStorage, GraphStorageExt, Result, VertexId};

/// A scalar value per vertex of a specific graph.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexScalarField {
    values: Vec<f64>,
}

/// A scalar value per edge of a specific graph.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeScalarField {
    values: Vec<f64>,
}

impl VertexScalarField {
    /// Wrap per-vertex values, checking the length against `graph`.
    pub fn new<G: GraphStorage + ?Sized>(graph: &G, values: Vec<f64>) -> Result<Self> {
        graph.check_vertex_values(&values)?;
        Ok(VertexScalarField { values })
    }

    /// Build a field by evaluating `f` on every vertex.
    pub fn from_fn<G: GraphStorage + ?Sized>(
        graph: &G,
        mut f: impl FnMut(VertexId) -> f64,
    ) -> Self {
        VertexScalarField { values: graph.vertices().map(&mut f).collect() }
    }

    /// Build from integer values (e.g. core numbers).
    pub fn from_usize<G: GraphStorage + ?Sized>(graph: &G, values: &[usize]) -> Result<Self> {
        graph.check_vertex_values(values)?;
        Ok(VertexScalarField { values: values.iter().map(|&v| v as f64).collect() })
    }

    /// The scalar value of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> f64 {
        self.values[v.index()]
    }

    /// All values, indexed by vertex id.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum and maximum value, or `None` for an empty field.
    pub fn range(&self) -> Option<(f64, f64)> {
        range_of(&self.values)
    }

    /// Return a copy rescaled linearly to `[0, 1]` (constant fields map to 0).
    pub fn normalized(&self) -> Self {
        VertexScalarField { values: normalize(&self.values) }
    }

    /// Return a copy with values snapped to `levels` evenly spaced values
    /// between the minimum and maximum.
    ///
    /// This is the *simplification* operation of Section II-E: discretizing
    /// the scalar values lets Algorithm 2 merge many more nodes into super
    /// nodes, shrinking the tree the terrain has to render.
    pub fn discretized(&self, levels: usize) -> Self {
        VertexScalarField { values: discretize(&self.values, levels) }
    }
}

impl EdgeScalarField {
    /// Wrap per-edge values, checking the length against `graph`.
    pub fn new<G: GraphStorage + ?Sized>(graph: &G, values: Vec<f64>) -> Result<Self> {
        graph.check_edge_values(&values)?;
        Ok(EdgeScalarField { values })
    }

    /// Build a field by evaluating `f` on every edge.
    pub fn from_fn<G: GraphStorage + ?Sized>(graph: &G, mut f: impl FnMut(EdgeId) -> f64) -> Self {
        EdgeScalarField {
            values: (0..graph.edge_count()).map(|i| f(EdgeId::from_index(i))).collect(),
        }
    }

    /// Build from integer values (e.g. truss numbers).
    pub fn from_usize<G: GraphStorage + ?Sized>(graph: &G, values: &[usize]) -> Result<Self> {
        graph.check_edge_values(values)?;
        Ok(EdgeScalarField { values: values.iter().map(|&v| v as f64).collect() })
    }

    /// The scalar value of edge `e`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> f64 {
        self.values[e.index()]
    }

    /// All values, indexed by edge id.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum and maximum value, or `None` for an empty field.
    pub fn range(&self) -> Option<(f64, f64)> {
        range_of(&self.values)
    }

    /// Linearly rescaled copy in `[0, 1]`.
    pub fn normalized(&self) -> Self {
        EdgeScalarField { values: normalize(&self.values) }
    }

    /// Copy snapped to `levels` evenly spaced values (see
    /// [`VertexScalarField::discretized`]).
    pub fn discretized(&self, levels: usize) -> Self {
        EdgeScalarField { values: discretize(&self.values, levels) }
    }
}

fn range_of(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    Some((min, max))
}

fn normalize(values: &[f64]) -> Vec<f64> {
    match range_of(values) {
        None => Vec::new(),
        Some((min, max)) if max > min => values.iter().map(|&v| (v - min) / (max - min)).collect(),
        Some(_) => vec![0.0; values.len()],
    }
}

fn discretize(values: &[f64], levels: usize) -> Vec<f64> {
    assert!(levels >= 1, "need at least one level");
    match range_of(values) {
        None => Vec::new(),
        Some((min, max)) if max > min => {
            let span = max - min;
            values
                .iter()
                .map(|&v| {
                    let t = (v - min) / span;
                    let bucket = (t * (levels - 1) as f64).round();
                    min + span * bucket / (levels - 1).max(1) as f64
                })
                .collect()
        }
        Some(_) => values.to_vec(),
    }
}

/// Validate that a scalar field is finite everywhere (no NaN / infinities).
pub fn check_finite(values: &[f64], what: &'static str) -> Result<()> {
    if values.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(GraphError::Parse { line: 0, message: format!("{what} contains non-finite values") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::CsrGraph;
    use ugraph::GraphBuilder;

    fn path3() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn vertex_field_construction_and_access() {
        let g = path3();
        let f = VertexScalarField::new(&g, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(f.get(VertexId(1)), 2.0);
        assert_eq!(f.len(), 3);
        assert_eq!(f.range(), Some((1.0, 3.0)));
        assert!(VertexScalarField::new(&g, vec![1.0]).is_err());
    }

    #[test]
    fn edge_field_construction_and_access() {
        let g = path3();
        let f = EdgeScalarField::new(&g, vec![0.5, 1.5]).unwrap();
        assert_eq!(f.get(EdgeId(0)), 0.5);
        assert!(EdgeScalarField::new(&g, vec![0.5]).is_err());
        let from_fn = EdgeScalarField::from_fn(&g, |e| e.index() as f64);
        assert_eq!(from_fn.values(), &[0.0, 1.0]);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let g = path3();
        let f = VertexScalarField::new(&g, vec![10.0, 20.0, 30.0]).unwrap();
        let n = f.normalized();
        assert_eq!(n.values(), &[0.0, 0.5, 1.0]);
        // Constant field normalizes to zero.
        let c = VertexScalarField::new(&g, vec![5.0, 5.0, 5.0]).unwrap();
        assert_eq!(c.normalized().values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn discretization_snaps_to_levels() {
        let g = path3();
        let f = VertexScalarField::new(&g, vec![0.0, 0.49, 1.0]).unwrap();
        let d = f.discretized(2);
        assert_eq!(d.values(), &[0.0, 0.0, 1.0]);
        let d3 = f.discretized(3);
        assert_eq!(d3.values(), &[0.0, 0.5, 1.0]);
        // Discretization never leaves the original range.
        let (min, max) = f.range().unwrap();
        for &v in d3.values() {
            assert!(v >= min && v <= max);
        }
    }

    #[test]
    fn from_usize_and_finiteness_check() {
        let g = path3();
        let f = VertexScalarField::from_usize(&g, &[3, 2, 1]).unwrap();
        assert_eq!(f.values(), &[3.0, 2.0, 1.0]);
        assert!(check_finite(f.values(), "field").is_ok());
        assert!(check_finite(&[1.0, f64::NAN], "field").is_err());
    }

    #[test]
    fn from_fn_evaluates_every_vertex() {
        let g = path3();
        let f = VertexScalarField::from_fn(&g, |v| g.degree(v) as f64);
        assert_eq!(f.values(), &[1.0, 2.0, 1.0]);
    }
}
