//! K-Core decomposition (Batagelj–Zaveršnik bucket algorithm, `O(|E|)`).
//!
//! Definition 4 of the paper: a K-Core is a subgraph in which every vertex has
//! at least `K` neighbors inside the subgraph; `KC(v)` is the largest `K` such
//! that `v` belongs to a K-Core. When `KC(v)` is used as the vertex scalar,
//! Proposition 4 shows that every maximal α-connected component is a K-Core
//! with `K = α` — this is the scalar field behind Figures 1(a), 6(c,d),
//! 7(a,c) and the user-study Tasks 1 and 2.

use ugraph::{GraphStorage, VertexId};

/// Result of a K-Core decomposition.
#[derive(Clone, Debug)]
pub struct KCoreDecomposition {
    /// `core[v]` is `KC(v)`, the core number of vertex `v`.
    pub core: Vec<usize>,
    /// The largest core number present (the graph's degeneracy).
    pub degeneracy: usize,
}

impl KCoreDecomposition {
    /// Vertices of the maximal K-Core for `k = self.degeneracy`.
    pub fn densest_core_vertices(&self) -> Vec<VertexId> {
        self.vertices_with_core_at_least(self.degeneracy)
    }

    /// Vertices whose core number is at least `k`.
    pub fn vertices_with_core_at_least(&self, k: usize) -> Vec<VertexId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| VertexId::from_index(v))
            .collect()
    }
}

/// Compute core numbers with the Batagelj–Zaveršnik bucket algorithm.
///
/// Runs in `O(|V| + |E|)`: vertices are kept in an array bucketed by their
/// current effective degree and repeatedly the lowest-degree vertex is peeled,
/// decrementing its still-present neighbors.
pub fn core_numbers<G: GraphStorage + ?Sized>(graph: &G) -> KCoreDecomposition {
    let n = graph.vertex_count();
    if n == 0 {
        return KCoreDecomposition { core: Vec::new(), degeneracy: 0 };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(VertexId::from_index(v))).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // pos[v]: index of v in vert; vert: vertices sorted by current degree.
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            pos[v] = next[degree[v]];
            vert[pos[v]] = v;
            next[degree[v]] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v] = degree[v];
        for u in graph.neighbor_vertices(VertexId::from_index(v)) {
            let u = u.index();
            if degree[u] > degree[v] {
                // Move u one bucket down: swap it with the first vertex of its
                // current bucket, then shift the bucket boundary.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    pos[u] = pw;
                    pos[w] = pu;
                    vert[pu] = w;
                    vert[pw] = u;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    let degeneracy = core.iter().copied().max().unwrap_or(0);
    KCoreDecomposition { core, degeneracy }
}

/// Brute-force core numbers by repeated peeling; `O(|V|·|E|)`.
///
/// Exposed for tests and property checks only.
pub fn core_numbers_bruteforce<G: GraphStorage + ?Sized>(graph: &G) -> Vec<usize> {
    let n = graph.vertex_count();
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(VertexId::from_index(v))).collect();
    // Peel the minimum-degree vertex repeatedly; the core number of a vertex
    // is the largest minimum degree seen up to (and including) its removal.
    let mut running_k = 0usize;
    for _ in 0..n {
        let v =
            (0..n).filter(|&v| !removed[v]).min_by_key(|&v| degree[v]).expect("a vertex remains");
        running_k = running_k.max(degree[v]);
        core[v] = running_k;
        removed[v] = true;
        for u in graph.neighbor_vertices(VertexId::from_index(v)) {
            if !removed[u.index()] && degree[u.index()] > 0 {
                degree[u.index()] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::{barabasi_albert, erdos_renyi};
    use ugraph::CsrGraph;
    use ugraph::GraphBuilder;

    fn clique(k: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..k as u32 {
            for v in (u + 1)..k as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn clique_core_numbers() {
        let g = clique(5);
        let d = core_numbers(&g);
        assert_eq!(d.core, vec![4; 5]);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.densest_core_vertices().len(), 5);
    }

    #[test]
    fn clique_with_tail() {
        // K4 on {0,1,2,3} plus a path 3-4-5.
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build();
        let d = core_numbers(&g);
        assert_eq!(d.core[0..4], [3, 3, 3, 3]);
        assert_eq!(d.core[4], 1);
        assert_eq!(d.core[5], 1);
        assert_eq!(d.degeneracy, 3);
        assert_eq!(d.vertices_with_core_at_least(3).len(), 4);
    }

    #[test]
    fn two_cliques_joined_by_bridge() {
        // Two K5s joined by a single edge: both cliques are 4-cores, the
        // bridge does not raise anyone's core number.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v);
                b.add_edge(u + 5, v + 5);
            }
        }
        b.add_edge(4, 5);
        let g = b.build();
        let d = core_numbers(&g);
        assert!(d.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(3);
        let g = b.build();
        let d = core_numbers(&g);
        assert_eq!(d.core, vec![1, 1, 0, 0]);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        for seed in 0..5u64 {
            let g = erdos_renyi(60, 0.08, seed);
            let fast = core_numbers(&g).core;
            let slow = core_numbers_bruteforce(&g);
            assert_eq!(fast, slow, "seed {seed}");
        }
        let g = barabasi_albert(80, 3, 1);
        assert_eq!(core_numbers(&g).core, core_numbers_bruteforce(&g));
    }

    #[test]
    fn kcore_invariant_every_vertex_has_enough_neighbors_in_its_core() {
        let g = barabasi_albert(200, 4, 5);
        let d = core_numbers(&g);
        // For each vertex v, the subgraph induced by {u : core(u) >= core(v)}
        // must give v at least core(v) neighbors.
        for v in g.vertices() {
            let k = d.core[v.index()];
            let count = g.neighbor_vertices(v).filter(|u| d.core[u.index()] >= k).count();
            assert!(count >= k, "vertex {v:?} has only {count} neighbors in its {k}-core");
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let d = core_numbers(&g);
        assert!(d.core.is_empty());
        assert_eq!(d.degeneracy, 0);
    }
}
