//! Structural role assignment: hub / dense-community / periphery / whisker.
//!
//! Figure 9 of the paper colors a community terrain by each vertex's dominant
//! role, produced there by a simultaneous community/role detection algorithm
//! [Ruan & Parthasarathy, COSN'14]. As documented in DESIGN.md §4 we
//! substitute a structural classifier with the same four roles the paper (and
//! RolX \[32\]) use:
//!
//! * **Whisker** — degree-1 vertices hanging off the structure;
//! * **Hub** — vertices whose degree is far above their neighborhood's
//!   average (local star centers);
//! * **DenseCommunity** — vertices embedded in triangle-rich neighborhoods
//!   (high clustering and core number);
//! * **Periphery** — everything else (loosely attached members).

use crate::kcore::core_numbers;
use crate::triangles::clustering_coefficients;
use ugraph::{GraphStorage, VertexId};

/// The four structural roles used in Figure 9.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Local star center: degree much larger than its neighbors'.
    Hub,
    /// Member of a dense, triangle-rich group.
    DenseCommunity,
    /// Loosely attached vertex.
    Periphery,
    /// Degree-one appendage.
    Whisker,
}

impl Role {
    /// Stable integer code (useful as a nominal scalar for coloring).
    pub fn code(self) -> usize {
        match self {
            Role::Hub => 0,
            Role::DenseCommunity => 1,
            Role::Periphery => 2,
            Role::Whisker => 3,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Hub => "hub",
            Role::DenseCommunity => "dense-community",
            Role::Periphery => "periphery",
            Role::Whisker => "whisker",
        }
    }
}

/// Result of role assignment.
#[derive(Clone, Debug)]
pub struct RoleAssignment {
    /// Dominant role per vertex.
    pub roles: Vec<Role>,
    /// Soft affinity per vertex and role, rows summing to 1 (ordered by
    /// [`Role::code`]). The paper's algorithm outputs such a vector; we derive
    /// it from the structural scores so downstream code can exercise both the
    /// hard and the soft interface.
    pub affinity: Vec<[f64; 4]>,
}

/// Classify every vertex into one of the four roles.
pub fn assign_roles<G: GraphStorage + ?Sized>(graph: &G) -> RoleAssignment {
    let n = graph.vertex_count();
    let cores = core_numbers(graph);
    let clustering = clustering_coefficients(graph);
    let max_core = cores.degeneracy.max(1) as f64;

    let mut roles = Vec::with_capacity(n);
    let mut affinity = Vec::with_capacity(n);

    for v in graph.vertices() {
        let d = graph.degree(v);
        let (role, aff) = classify(graph, v, d, &cores.core, &clustering, max_core);
        roles.push(role);
        affinity.push(aff);
    }
    RoleAssignment { roles, affinity }
}

fn classify<G: GraphStorage + ?Sized>(
    graph: &G,
    v: VertexId,
    degree: usize,
    core: &[usize],
    clustering: &[f64],
    max_core: f64,
) -> (Role, [f64; 4]) {
    if degree == 0 {
        return (Role::Whisker, [0.0, 0.0, 0.0, 1.0]);
    }
    if degree == 1 {
        return (Role::Whisker, [0.0, 0.0, 0.1, 0.9]);
    }

    // Average neighbor degree, for hub detection.
    let neighbor_avg_degree =
        graph.neighbor_vertices(v).map(|u| graph.degree(u) as f64).sum::<f64>() / degree as f64;
    let hub_score = ((degree as f64 / neighbor_avg_degree.max(1.0)) / 3.0).min(1.0);
    let dense_score =
        (0.6 * clustering[v.index()] + 0.4 * core[v.index()] as f64 / max_core).min(1.0);
    let periphery_score = (1.0 - dense_score).max(0.0) * (1.0 - hub_score).max(0.0);
    let whisker_score: f64 = if degree <= 2 { 0.2 } else { 0.0 };

    let mut aff = [hub_score, dense_score, periphery_score, whisker_score];
    let sum: f64 = aff.iter().sum();
    if sum > 0.0 {
        for a in &mut aff {
            *a /= sum;
        }
    }

    // Hard role: hubs need to clearly dominate their neighborhood, dense
    // members need meaningful clustering or coreness; otherwise periphery.
    let role = if degree as f64 >= 1.8 * neighbor_avg_degree && degree >= 4 {
        Role::Hub
    } else if dense_score >= 0.45 {
        Role::DenseCommunity
    } else {
        Role::Periphery
    };
    (role, aff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::hub_periphery_community;
    use ugraph::GraphBuilder;

    #[test]
    fn star_center_is_hub_and_leaves_are_whiskers() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=8u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let r = assign_roles(&g);
        assert_eq!(r.roles[0], Role::Hub);
        for leaf in 1..=8usize {
            assert_eq!(r.roles[leaf], Role::Whisker);
        }
    }

    #[test]
    fn clique_members_are_dense_community() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let r = assign_roles(&g);
        assert!(r.roles.iter().all(|&x| x == Role::DenseCommunity));
    }

    #[test]
    fn affinities_are_distributions() {
        let g = ugraph::generators::erdos_renyi(100, 0.05, 3);
        let r = assign_roles(&g);
        for aff in &r.affinity {
            let sum: f64 = aff.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
            assert!(aff.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn planted_roles_are_broadly_recovered() {
        let planted = hub_periphery_community(30, 40, 20, 5);
        let r = assign_roles(&planted.graph);
        // All planted whiskers are degree-1, so they must be recovered exactly.
        let whisker_hits = planted
            .roles
            .iter()
            .zip(&r.roles)
            .filter(|(truth, _)| **truth == ugraph::generators::PlantedRole::Whisker)
            .filter(|(_, got)| **got == Role::Whisker)
            .count();
        assert_eq!(whisker_hits, 20);
        // Most planted dense members should be classified dense.
        let (dense_total, dense_hits) = planted
            .roles
            .iter()
            .zip(&r.roles)
            .filter(|(truth, _)| **truth == ugraph::generators::PlantedRole::DenseCommunity)
            .fold((0usize, 0usize), |(t, h), (_, got)| {
                (t + 1, h + usize::from(*got == Role::DenseCommunity))
            });
        assert!(
            dense_hits as f64 > 0.6 * dense_total as f64,
            "dense recovery {dense_hits}/{dense_total}"
        );
    }

    #[test]
    fn role_codes_and_names_are_stable() {
        assert_eq!(Role::Hub.code(), 0);
        assert_eq!(Role::Whisker.code(), 3);
        assert_eq!(Role::DenseCommunity.name(), "dense-community");
    }
}
