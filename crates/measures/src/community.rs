//! Community structure: hard partitions and overlapping affiliation scores.
//!
//! The paper's Figures 1(b) and 8 visualize an overlapping ("soft") community
//! detection result [Yang & Leskovec, WSDM'13]: each vertex carries a score
//! vector `(c0, …, c_{m-1})`, and the terrain for community `i` is drawn from
//! the scalar field `c_i`. We substitute BigCLAM with a deterministic,
//! dependency-free construction (documented in DESIGN.md §4):
//!
//! 1. a **label-propagation** pass produces a hard partition whose largest
//!    blocks become the seed communities;
//! 2. each community's score field is a **degree-weighted decay** from the
//!    community's dense core outwards: members get a score proportional to the
//!    fraction of their neighbors inside the community (their embeddedness),
//!    and non-members within a couple of hops get small positive scores.
//!
//! The resulting fields have the same shape the paper relies on — high at the
//! community core, decaying towards the periphery, slightly overlapping at
//! community boundaries — which is what the terrain visualization exercises.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{GraphStorage, VertexId};

/// Result of overlapping community scoring.
#[derive(Clone, Debug)]
pub struct CommunityScores {
    /// `scores[c][v]` is the affiliation of vertex `v` with community `c`.
    pub scores: Vec<Vec<f64>>,
    /// The hard community assignment used to seed the scores
    /// (`usize::MAX` for vertices left unassigned / in tiny communities).
    pub seed_assignment: Vec<usize>,
}

/// Asynchronous label propagation, returning a community label per vertex.
///
/// Labels are compacted to `0..community_count`. Deterministic for a fixed
/// seed: vertex visiting order is shuffled with a seeded PRNG and ties are
/// broken towards the smallest label.
pub fn label_propagation<G: GraphStorage + ?Sized>(
    graph: &G,
    max_rounds: usize,
    seed: u64,
) -> Vec<usize> {
    let n = graph.vertex_count();
    let mut label: Vec<usize> = (0..n).collect();
    if n == 0 {
        return label;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();

    for _ in 0..max_rounds {
        order.shuffle(&mut rng);
        let mut changed = 0usize;
        for &v in &order {
            let vid = VertexId::from_index(v);
            if graph.degree(vid) == 0 {
                continue;
            }
            counts.clear();
            for u in graph.neighbor_vertices(vid) {
                *counts.entry(label[u.index()]).or_insert(0) += 1;
            }
            // Most frequent neighbor label, ties to the smallest label.
            let best = counts
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .unwrap();
            if best != label[v] {
                label[v] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }

    // Compact labels to 0..k in order of first appearance.
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for l in &mut label {
        let next = remap.len();
        *l = *remap.entry(*l).or_insert(next);
    }
    label
}

/// Compute overlapping community affiliation scores for the `communities`
/// largest label-propagation communities.
///
/// See the module documentation for the construction. Every score is in
/// `[0, 1]`; members of a community get scores weighted by embeddedness, and
/// 1-hop neighbors of members get a small spill-over score, producing the
/// soft overlaps of Figure 8.
pub fn overlapping_community_scores<G: GraphStorage + ?Sized>(
    graph: &G,
    communities: usize,
    seed: u64,
) -> CommunityScores {
    let n = graph.vertex_count();
    let assignment = label_propagation(graph, 20, seed);
    // Rank labels by size.
    let label_count = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; label_count];
    for &l in &assignment {
        sizes[l] += 1;
    }
    let mut by_size: Vec<usize> = (0..label_count).collect();
    by_size.sort_by_key(|&l| std::cmp::Reverse(sizes[l]));
    by_size.truncate(communities);

    let mut scores = vec![vec![0.0f64; n]; by_size.len()];
    let mut seed_assignment = vec![usize::MAX; n];

    for (c, &label) in by_size.iter().enumerate() {
        // Embeddedness of members.
        for v in graph.vertices() {
            if assignment[v.index()] != label {
                continue;
            }
            seed_assignment[v.index()] = c;
            let d = graph.degree(v);
            if d == 0 {
                scores[c][v.index()] = 0.5;
                continue;
            }
            let inside =
                graph.neighbor_vertices(v).filter(|u| assignment[u.index()] == label).count();
            // 0.3 floor for members, up to 1.0 for fully embedded vertices.
            scores[c][v.index()] = 0.3 + 0.7 * inside as f64 / d as f64;
        }
        // Spill-over to 1-hop non-member neighbors.
        for v in graph.vertices() {
            if assignment[v.index()] == label {
                continue;
            }
            let d = graph.degree(v);
            if d == 0 {
                continue;
            }
            let inside =
                graph.neighbor_vertices(v).filter(|u| assignment[u.index()] == label).count();
            if inside > 0 {
                scores[c][v.index()] = 0.25 * inside as f64 / d as f64;
            }
        }
    }

    CommunityScores { scores, seed_assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::planted_partition;

    #[test]
    fn label_propagation_recovers_planted_blocks() {
        let planted = planted_partition(&[50, 50, 50], 0.3, 0.005, 7);
        let labels = label_propagation(&planted.graph, 30, 1);
        // Compute purity: for each planted block, the fraction assigned to its
        // majority detected label.
        let mut correct = 0usize;
        for block in 0..3usize {
            let members: Vec<usize> = (0..150).filter(|&v| planted.community[v] == block).collect();
            let mut counts = std::collections::HashMap::new();
            for &v in &members {
                *counts.entry(labels[v]).or_insert(0usize) += 1;
            }
            correct += counts.values().copied().max().unwrap_or(0);
        }
        let purity = correct as f64 / 150.0;
        assert!(purity > 0.8, "label propagation purity {purity}");
    }

    #[test]
    fn labels_are_compacted() {
        let planted = planted_partition(&[30, 30], 0.4, 0.01, 3);
        let labels = label_propagation(&planted.graph, 30, 2);
        let max = labels.iter().copied().max().unwrap();
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), max + 1, "labels must be 0..k with no gaps");
    }

    #[test]
    fn overlapping_scores_are_high_inside_low_outside() {
        let planted = planted_partition(&[60, 60], 0.3, 0.01, 11);
        let result = overlapping_community_scores(&planted.graph, 2, 5);
        assert_eq!(result.scores.len(), 2);
        // For each detected community, member scores should dominate
        // non-member scores on average.
        for c in 0..2 {
            let (mut member_sum, mut member_count) = (0.0, 0usize);
            let (mut other_sum, mut other_count) = (0.0, 0usize);
            for v in 0..120 {
                if result.seed_assignment[v] == c {
                    member_sum += result.scores[c][v];
                    member_count += 1;
                } else {
                    other_sum += result.scores[c][v];
                    other_count += 1;
                }
            }
            let member_avg = member_sum / member_count.max(1) as f64;
            let other_avg = other_sum / other_count.max(1) as f64;
            assert!(
                member_avg > 2.0 * other_avg,
                "community {c}: member avg {member_avg} vs other {other_avg}"
            );
        }
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let planted = planted_partition(&[40, 40, 40], 0.25, 0.02, 13);
        let result = overlapping_community_scores(&planted.graph, 3, 9);
        for field in &result.scores {
            assert!(field.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let planted = planted_partition(&[40, 40], 0.3, 0.01, 17);
        let a = label_propagation(&planted.graph, 20, 4);
        let b = label_propagation(&planted.graph, 20, 4);
        assert_eq!(a, b);
    }
}
