//! Triangle counting and clustering coefficients.
//!
//! Per-edge triangle counts ("triangle density" in the paper's introduction)
//! are both a scalar field in their own right and the support computation of
//! the K-Truss decomposition.
//!
//! Every count here is independent per edge or per vertex, so all four
//! functions parallelize through [`ugraph::par`]; being integer-valued they
//! are exactly equal across every [`Parallelism`] setting.

use ugraph::par::{map_collect, Parallelism};
use ugraph::{EdgeId, GraphStorage, VertexId};

/// Number of triangles through each edge, indexed by edge id.
/// Single-threaded; see [`edge_triangle_counts_with`].
///
/// Uses the standard merge-intersection over the sorted adjacency lists of
/// both endpoints, `O(Σ_e (deg(u) + deg(v)))`.
pub fn edge_triangle_counts<G: GraphStorage + ?Sized>(graph: &G) -> Vec<usize> {
    edge_triangle_counts_with(graph, Parallelism::Serial)
}

/// [`edge_triangle_counts`] parallelized over edges.
pub fn edge_triangle_counts_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> Vec<usize> {
    map_collect(parallelism, graph.edge_count(), |e| {
        let (u, v) = graph.endpoints(EdgeId::from_index(e));
        sorted_intersection_size(graph.neighbor_slice(u), graph.neighbor_slice(v))
    })
}

/// Number of triangles through each vertex, indexed by vertex id.
/// Single-threaded; see [`vertex_triangle_counts_with`].
pub fn vertex_triangle_counts<G: GraphStorage + ?Sized>(graph: &G) -> Vec<usize> {
    vertex_triangle_counts_with(graph, Parallelism::Serial)
}

/// [`vertex_triangle_counts`] parallelized over edges (support pass) and
/// vertices (gather pass).
pub fn vertex_triangle_counts_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> Vec<usize> {
    let edge_counts = edge_triangle_counts_with(graph, parallelism);
    map_collect(parallelism, graph.vertex_count(), |v| {
        // Each triangle through v uses exactly two of v's incident edges, so
        // the sum over incident-edge supports double-counts.
        let sum: usize = graph
            .incident_edge_slice(VertexId::from_index(v))
            .iter()
            .map(|e| edge_counts[e.index()])
            .sum();
        sum / 2
    })
}

/// Local clustering coefficient of every vertex: the fraction of neighbor
/// pairs that are themselves connected. Vertices of degree < 2 get 0.
/// Single-threaded; see [`clustering_coefficients_with`].
pub fn clustering_coefficients<G: GraphStorage + ?Sized>(graph: &G) -> Vec<f64> {
    clustering_coefficients_with(graph, Parallelism::Serial)
}

/// [`clustering_coefficients`] parallelized over vertices.
pub fn clustering_coefficients_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> Vec<f64> {
    let triangles = vertex_triangle_counts_with(graph, parallelism);
    map_collect(parallelism, graph.vertex_count(), |v| {
        let d = graph.degree(VertexId::from_index(v));
        if d < 2 {
            0.0
        } else {
            2.0 * triangles[v] as f64 / (d * (d - 1)) as f64
        }
    })
}

/// Total number of triangles in the graph. Single-threaded; see
/// [`total_triangles_with`].
pub fn total_triangles<G: GraphStorage + ?Sized>(graph: &G) -> usize {
    total_triangles_with(graph, Parallelism::Serial)
}

/// [`total_triangles`] parallelized over edges.
pub fn total_triangles_with<G: GraphStorage + ?Sized>(
    graph: &G,
    parallelism: Parallelism,
) -> usize {
    // Each triangle is counted once per edge (3 times total). The counting
    // pass parallelizes; the final integer sum is far cheaper than a thread
    // region, so it stays on the calling thread.
    edge_triangle_counts_with(graph, parallelism).iter().sum::<usize>() / 3
}

fn sorted_intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::CsrGraph;
    use ugraph::GraphBuilder;

    fn clique(k: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..k as u32 {
            for v in (u + 1)..k as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn triangle_graph() {
        let g = clique(3);
        assert_eq!(edge_triangle_counts(&g), vec![1, 1, 1]);
        assert_eq!(vertex_triangle_counts(&g), vec![1, 1, 1]);
        assert_eq!(total_triangles(&g), 1);
        assert_eq!(clustering_coefficients(&g), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn clique_counts() {
        let k = 6;
        let g = clique(k);
        // Every edge of K6 is in k-2 = 4 triangles; every vertex in C(5,2) = 10.
        assert!(edge_triangle_counts(&g).iter().all(|&c| c == k - 2));
        assert!(vertex_triangle_counts(&g).iter().all(|&c| c == (k - 1) * (k - 2) / 2));
        assert_eq!(total_triangles(&g), k * (k - 1) * (k - 2) / 6);
    }

    #[test]
    fn path_has_no_triangles() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(total_triangles(&g), 0);
        assert!(clustering_coefficients(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn parallel_triangle_counts_equal_serial() {
        let g = ugraph::generators::erdos_renyi(100, 0.08, 2);
        for threads in 1..=4 {
            let p = Parallelism::Threads(threads);
            assert_eq!(edge_triangle_counts_with(&g, p), edge_triangle_counts(&g));
            assert_eq!(vertex_triangle_counts_with(&g, p), vertex_triangle_counts(&g));
            assert_eq!(clustering_coefficients_with(&g, p), clustering_coefficients(&g));
            assert_eq!(total_triangles_with(&g, p), total_triangles(&g));
        }
    }

    #[test]
    fn square_with_diagonal() {
        // Square 0-1-2-3-0 plus diagonal 0-2: two triangles sharing edge 0-2.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(total_triangles(&g), 2);
        let e02 = g.find_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(edge_triangle_counts(&g)[e02.index()], 2);
        let cc = clustering_coefficients(&g);
        // Vertices 1 and 3 have degree 2 and one closed pair each.
        assert!((cc[1] - 1.0).abs() < 1e-12);
        assert!((cc[3] - 1.0).abs() < 1e-12);
        // Vertices 0 and 2 have degree 3 (3 pairs) and 2 closed pairs.
        assert!((cc[0] - 2.0 / 3.0).abs() < 1e-12);
    }
}
