//! # measures — scalar fields over graphs
//!
//! The paper visualizes *scalar graphs*: graphs whose vertices or edges carry
//! a numerical measure. This crate computes every measure used in the paper's
//! evaluation:
//!
//! * **degree** and degree centrality (Figures 1(a), 10, 13),
//! * **K-Core numbers** via the Batagelj–Zaveršnik bucket algorithm
//!   (Figures 1(a), 6, 7, 12 and Proposition 4),
//! * **triangle counts** and the **K-Truss decomposition**
//!   (Figures 6(e), 7(b,d) and Proposition 5),
//! * **PageRank**, **closeness** and **harmonic** centrality (mentioned as
//!   candidate measures in the introduction),
//! * **betweenness centrality** via Brandes' algorithm, exact and sampled
//!   (Figure 10, Task 3 of the user study),
//! * **overlapping community scores** and a hard **label-propagation**
//!   partition (Figures 1(b), 8),
//! * **structural roles** — hub / dense-community / periphery / whisker
//!   (Figure 9),
//! * local clustering coefficients.
//!
//! All functions return plain `Vec<f64>` (or `Vec<usize>` for integral
//! measures) indexed by vertex or edge id, ready to be wrapped into the
//! scalar-field types of the `scalarfield` crate.
//!
//! ## Parallel execution
//!
//! The hot measures — betweenness (exact and sampled), closeness, PageRank,
//! triangle counting, and the K-Truss support initialization — have
//! `*_with(parallelism)` variants driven by the deterministic chunked engine
//! in [`ugraph::par`]. The [`Parallelism`] knob (re-exported here) is pure
//! wall-clock: chunking is a function of the input length, per-chunk
//! accumulators merge in fixed order, and the property tests in
//! `tests/properties.rs` assert exact `==` between serial and
//! `Threads(1..=4)` outputs for all of them. The plain functions are thin
//! wrappers equivalent to `*_with(Parallelism::Serial)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod betweenness;
pub mod closeness;
pub mod community;
pub mod degree;
pub mod incremental;
pub mod kcore;
pub mod ktruss;
pub mod pagerank;
pub mod roles;
pub mod scalar;
pub mod triangles;

pub use betweenness::{
    betweenness_centrality, betweenness_centrality_sampled, betweenness_centrality_sampled_with,
    betweenness_centrality_with,
};
pub use closeness::{closeness_centrality, closeness_centrality_with, harmonic_centrality};
pub use community::{label_propagation, overlapping_community_scores, CommunityScores};
pub use degree::{degree_centrality, degrees};
pub use incremental::{
    incremental_core_numbers, incremental_degrees, incremental_edge_triangle_counts,
    incremental_truss_numbers, vertex_triangle_counts_from_edges, DeltaCost,
};
pub use kcore::{core_numbers, KCoreDecomposition};
pub use ktruss::{truss_numbers, truss_numbers_with, KTrussDecomposition};
pub use pagerank::{pagerank, pagerank_with, PageRankConfig};
pub use roles::{assign_roles, Role, RoleAssignment};
pub use scalar::{EdgeScalarField, VertexScalarField};
pub use triangles::{
    clustering_coefficients, clustering_coefficients_with, edge_triangle_counts,
    edge_triangle_counts_with, total_triangles, total_triangles_with, vertex_triangle_counts,
    vertex_triangle_counts_with,
};
pub use ugraph::par::{Parallelism, ParseParallelismError, ParseParallelismErrorKind};
