//! Property-based tests for the measure substrates: decompositions checked
//! against brute force, structural invariants of the centrality and
//! community measures on arbitrary random graphs, and exact serial/parallel
//! agreement for every measure ported onto `ugraph::par`.

use measures::kcore::{core_numbers, core_numbers_bruteforce};
use measures::ktruss::{truss_numbers, truss_numbers_bruteforce, truss_numbers_with};
use measures::{
    betweenness_centrality, betweenness_centrality_sampled, betweenness_centrality_sampled_with,
    betweenness_centrality_with, closeness_centrality, closeness_centrality_with,
    clustering_coefficients, clustering_coefficients_with, degree_centrality, degrees,
    edge_triangle_counts, edge_triangle_counts_with, harmonic_centrality, label_propagation,
    pagerank, pagerank_with, vertex_triangle_counts, vertex_triangle_counts_with, PageRankConfig,
    Parallelism,
};
use proptest::prelude::*;
use ugraph::{CsrGraph, GraphBuilder, VertexId};

/// Strategy: an arbitrary simple graph with up to `max_n` vertices.
fn arbitrary_graph(max_n: usize, edge_factor: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n)
        .prop_flat_map(move |n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(edge_factor * n));
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bucket K-Core decomposition agrees with the O(V·E) peeling oracle.
    #[test]
    fn core_numbers_match_bruteforce(graph in arbitrary_graph(40, 3)) {
        prop_assert_eq!(core_numbers(&graph).core, core_numbers_bruteforce(&graph));
    }

    /// Core numbers are bounded by degree, and the degeneracy is attained.
    #[test]
    fn core_numbers_are_degree_bounded(graph in arbitrary_graph(60, 4)) {
        let d = core_numbers(&graph);
        for v in graph.vertices() {
            prop_assert!(d.core[v.index()] <= graph.degree(v));
        }
        if graph.vertex_count() > 0 {
            prop_assert_eq!(d.degeneracy, d.core.iter().copied().max().unwrap_or(0));
        }
    }

    /// The truss peeling agrees with the fixed-point oracle.
    #[test]
    fn truss_numbers_match_bruteforce(graph in arbitrary_graph(22, 3)) {
        prop_assert_eq!(truss_numbers(&graph).truss, truss_numbers_bruteforce(&graph));
    }

    /// Truss numbers are bounded by the edge's raw triangle support, and every
    /// edge of a triangle has truss at least 1.
    #[test]
    fn truss_numbers_are_support_bounded(graph in arbitrary_graph(40, 3)) {
        let support = measures::edge_triangle_counts(&graph);
        let truss = truss_numbers(&graph).truss;
        for e in 0..graph.edge_count() {
            prop_assert!(truss[e] <= support[e]);
            if support[e] > 0 {
                prop_assert!(truss[e] >= 1);
            } else {
                prop_assert_eq!(truss[e], 0);
            }
        }
    }

    /// PageRank is a probability distribution and respects degree dominance in
    /// expectation: the maximum-rank vertex is never a zero-degree vertex when
    /// edges exist.
    #[test]
    fn pagerank_is_a_distribution(graph in arbitrary_graph(50, 3)) {
        let pr = pagerank(&graph, &PageRankConfig::default());
        if graph.vertex_count() == 0 {
            prop_assert!(pr.is_empty());
        } else {
            let sum: f64 = pr.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(pr.iter().all(|&r| r >= 0.0));
            if graph.edge_count() > 0 {
                let top = pr
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                prop_assert!(graph.degree(VertexId::from_index(top)) > 0);
            }
        }
    }

    /// Centralities stay within their normalization bounds.
    #[test]
    fn centralities_are_bounded(graph in arbitrary_graph(40, 3)) {
        for &c in &degree_centrality(&graph) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
        for &c in &harmonic_centrality(&graph) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
        for &c in &clustering_coefficients(&graph) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
        for &c in &betweenness_centrality(&graph) {
            prop_assert!(c >= -1e-9);
        }
    }

    /// Triangle counts per vertex are consistent with degrees:
    /// a vertex of degree d participates in at most C(d, 2) triangles.
    #[test]
    fn triangle_counts_are_bounded_by_degree_pairs(graph in arbitrary_graph(40, 4)) {
        let triangles = vertex_triangle_counts(&graph);
        let degs = degrees(&graph);
        for v in 0..graph.vertex_count() {
            prop_assert!(triangles[v] <= degs[v] * degs[v].saturating_sub(1) / 2);
        }
    }

    /// Parallel execution is a pure wall-clock knob: for every measure ported
    /// onto `ugraph::par`, `Threads(1..=4)` output is **exactly** equal
    /// (`==`, not approximately) to the serial output on arbitrary graphs.
    #[test]
    fn parallel_measures_are_bit_identical_to_serial(graph in arbitrary_graph(40, 3)) {
        let bc = betweenness_centrality(&graph);
        let bcs = betweenness_centrality_sampled(&graph, 7, 3);
        let cc = closeness_centrality(&graph);
        let pr = pagerank(&graph, &PageRankConfig::default());
        let et = edge_triangle_counts(&graph);
        let vt = vertex_triangle_counts(&graph);
        let cf = clustering_coefficients(&graph);
        let tr = truss_numbers(&graph);
        for threads in 1..=4usize {
            let p = Parallelism::Threads(threads);
            prop_assert_eq!(&betweenness_centrality_with(&graph, p), &bc, "threads {}", threads);
            prop_assert_eq!(
                &betweenness_centrality_sampled_with(&graph, 7, 3, p),
                &bcs,
                "threads {}",
                threads
            );
            prop_assert_eq!(&closeness_centrality_with(&graph, p), &cc, "threads {}", threads);
            prop_assert_eq!(
                &pagerank_with(&graph, &PageRankConfig::default(), p),
                &pr,
                "threads {}",
                threads
            );
            prop_assert_eq!(&edge_triangle_counts_with(&graph, p), &et, "threads {}", threads);
            prop_assert_eq!(&vertex_triangle_counts_with(&graph, p), &vt, "threads {}", threads);
            prop_assert_eq!(&clustering_coefficients_with(&graph, p), &cf, "threads {}", threads);
            prop_assert_eq!(&truss_numbers_with(&graph, p).truss, &tr.truss, "threads {}", threads);
        }
    }

    /// The chunk-cap lift keeps the determinism contract at explicit widths
    /// beyond the old ≤32 cap: for any fixed decomposition width, every
    /// measure is **exactly** equal across thread counts. (Different widths
    /// may legitimately differ in the last f64 bit — the contract is
    /// bit-identity across *threads*, never across *widths*.)
    #[test]
    fn wide_parallel_measures_are_bit_identical_across_threads(
        graph in arbitrary_graph(40, 3),
        width_choice in 0usize..4,
    ) {
        let width = [33usize, 64, 128, 257][width_choice];
        let reference = Parallelism::Serial.with_width(width);
        let bc = betweenness_centrality_with(&graph, reference);
        let cc = closeness_centrality_with(&graph, reference);
        let pr = pagerank_with(&graph, &PageRankConfig::default(), reference);
        let et = edge_triangle_counts_with(&graph, reference);
        let cf = clustering_coefficients_with(&graph, reference);
        for threads in 2..=4usize {
            let p = Parallelism::Threads(threads).with_width(width);
            prop_assert_eq!(p.width(), width);
            prop_assert_eq!(
                &betweenness_centrality_with(&graph, p), &bc,
                "threads {} width {}", threads, width
            );
            prop_assert_eq!(
                &closeness_centrality_with(&graph, p), &cc,
                "threads {} width {}", threads, width
            );
            prop_assert_eq!(
                &pagerank_with(&graph, &PageRankConfig::default(), p), &pr,
                "threads {} width {}", threads, width
            );
            prop_assert_eq!(
                &edge_triangle_counts_with(&graph, p), &et,
                "threads {} width {}", threads, width
            );
            prop_assert_eq!(
                &clustering_coefficients_with(&graph, p), &cf,
                "threads {} width {}", threads, width
            );
        }
    }

    /// `samples >= n` falls back to the exact Brandes path: for any seed the
    /// sampled function returns exactly the exact centrality.
    #[test]
    fn oversampled_betweenness_equals_exact(graph in arbitrary_graph(30, 3), seed in 0u64..1000) {
        let n = graph.vertex_count();
        let exact = betweenness_centrality(&graph);
        prop_assert_eq!(&betweenness_centrality_sampled(&graph, n, seed), &exact);
        prop_assert_eq!(&betweenness_centrality_sampled(&graph, n + 5, seed), &exact);
    }

    /// Label propagation assigns every vertex a compact label and keeps
    /// connected components intact: vertices in different components never
    /// share a label with a vertex of another component... unless both labels
    /// are singleton leftovers. We check the weaker, always-true property:
    /// labels are in 0..k and every label is used.
    #[test]
    fn label_propagation_labels_are_compact(graph in arbitrary_graph(40, 3)) {
        let labels = label_propagation(&graph, 15, 3);
        prop_assert_eq!(labels.len(), graph.vertex_count());
        if let Some(&max) = labels.iter().max() {
            let used: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
            prop_assert_eq!(used.len(), max + 1);
        }
    }
}

/// The serial/parallel agreement must also hold on the degenerate graphs the
/// random strategy never generates: empty (0 vertices) and a single vertex.
#[test]
fn parallel_measures_handle_empty_and_single_vertex_graphs() {
    let empty = GraphBuilder::new().build();
    let mut b = GraphBuilder::new();
    b.ensure_vertex(0);
    let single = b.build();

    for graph in [&empty, &single] {
        let n = graph.vertex_count();
        for threads in 1..=4usize {
            let p = Parallelism::Threads(threads);
            assert_eq!(betweenness_centrality_with(graph, p), betweenness_centrality(graph));
            assert_eq!(
                betweenness_centrality_sampled_with(graph, 3, 0, p),
                betweenness_centrality_sampled(graph, 3, 0)
            );
            assert_eq!(closeness_centrality_with(graph, p), closeness_centrality(graph));
            let config = PageRankConfig::default();
            assert_eq!(pagerank_with(graph, &config, p), pagerank(graph, &config));
            assert_eq!(edge_triangle_counts_with(graph, p), edge_triangle_counts(graph));
            assert_eq!(vertex_triangle_counts_with(graph, p), vertex_triangle_counts(graph));
            assert_eq!(clustering_coefficients_with(graph, p), clustering_coefficients(graph));
            assert_eq!(truss_numbers_with(graph, p).truss, truss_numbers(graph).truss);
            assert_eq!(betweenness_centrality(graph).len(), n);
        }
    }
}
