//! Edge scalar trees: the optimized Algorithm 3 and the naive dual-graph
//! method it replaces (Section II-C).
//!
//! Both methods produce a [`ScalarTree`] whose nodes are the *edges* of the
//! input graph. The naive method converts the edge scalar graph into its dual
//! (line) graph and runs Algorithm 1, which costs
//! `O(Σ_v deg(v)² · log|E| + |E| log |E|)` because the dual can be enormous.
//! Algorithm 3 avoids materializing the dual: thanks to Proposition 3, when
//! processing edge `e_i` it suffices to look at the *minimum-index incident
//! edge* of each of `e_i`'s two endpoints, giving `O(|E| log |E|)` overall.
//! Table II's `tc` vs `te` columns quantify exactly this gap.

use crate::scalar_graph::{EdgeScalarGraph, VertexScalarGraph};
use crate::vertex_tree::{vertex_scalar_tree, ScalarTree};
use ugraph::{line_graph, GraphStorage, UnionFind};

/// Algorithm 3: build the edge scalar tree of an edge scalar graph in
/// `O(|E| log |E|)` without materializing the dual graph.
pub fn edge_scalar_tree<G: GraphStorage + ?Sized>(sg: &EdgeScalarGraph<'_, G>) -> ScalarTree {
    let graph = sg.graph();
    let m = graph.edge_count();
    let n = graph.vertex_count();
    let mut parent: Vec<Option<u32>> = vec![None; m];
    if m == 0 {
        return ScalarTree::from_parents(parent, Vec::new());
    }

    // Line 1: sort edges in decreasing order of scalar value.
    let order = sg.edges_by_decreasing_scalar();
    // rank[e] = processing index of edge e ("index" in the paper).
    let mut rank = vec![0usize; m];
    for (i, &e) in order.iter().enumerate() {
        rank[e.index()] = i;
    }

    // Lines 2-3: for each vertex, the incident edge with the minimum index
    // (i.e. processed earliest / highest scalar).
    let mut min_id_edge: Vec<Option<u32>> = vec![None; n];
    for v in graph.vertices() {
        let best = graph.incident_edge_slice(v).iter().min_by_key(|e| rank[e.index()]).copied();
        min_id_edge[v.index()] = best.map(|e| e.0);
    }

    // Union–find over edges; each set's payload is the current subtree root.
    let mut uf = UnionFind::new(m);

    // Lines 5-9.
    for (i, &ei) in order.iter().enumerate() {
        let (v1, v2) = graph.endpoints(ei);
        for v in [v1, v2] {
            let em = match min_id_edge[v.index()] {
                Some(e) => e as usize,
                None => continue,
            };
            // "m < i": the min-id edge was processed earlier than e_i.
            if rank[em] >= i {
                continue;
            }
            if uf.same_set(ei.index(), em) {
                continue;
            }
            // Connect n(e_i) to root(n(e_m)); n(e_i) becomes the new root.
            let root_m = uf.payload(em) as u32;
            parent[root_m as usize] = Some(ei.0);
            uf.union(ei.index(), em);
            uf.set_payload(ei.index(), ei.index());
        }
    }

    let scalar: Vec<f64> = sg.scalar().to_vec();
    let tree = ScalarTree::from_parents(parent, scalar);
    debug_assert!(tree.check_monotone().is_none(), "edge scalar tree violates monotonicity");
    tree
}

/// The naive edge-scalar-tree construction: build the dual (line) graph and
/// run Algorithm 1 on it.
///
/// Node `i` of the returned tree is the edge with id `i` of the original
/// graph, exactly as in [`edge_scalar_tree`], so the two results are directly
/// comparable. Kept as the baseline measured by the `te` column of Table II
/// and as a correctness oracle in tests.
pub fn edge_scalar_tree_naive<G: GraphStorage + ?Sized>(sg: &EdgeScalarGraph<'_, G>) -> ScalarTree {
    let dual = line_graph(sg.graph());
    // Dual vertex i corresponds to original edge i, so the scalar vector can
    // be reused as-is.
    let vsg = VertexScalarGraph::new(&dual.graph, sg.scalar())
        .expect("line graph has one vertex per original edge");
    vertex_scalar_tree(&vsg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{distinct_levels, maximal_alpha_edge_components};
    use crate::scalar_graph::EdgeScalarGraph;
    use crate::super_tree::build_super_tree;
    use std::collections::BTreeSet;
    use ugraph::{CsrGraph, EdgeId, GraphBuilder};

    /// Partition the edges with scalar >= alpha into groups connected in the
    /// given tree (the component partition the tree encodes at level alpha).
    fn tree_cut_partition(tree: &ScalarTree, alpha: f64) -> BTreeSet<BTreeSet<u32>> {
        let mut uf = UnionFind::new(tree.len());
        for node in 0..tree.len() as u32 {
            if tree.scalar(node) < alpha {
                continue;
            }
            if let Some(p) = tree.parent(node) {
                if tree.scalar(p) >= alpha {
                    uf.union(node as usize, p as usize);
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, BTreeSet<u32>> = Default::default();
        for node in 0..tree.len() as u32 {
            if tree.scalar(node) >= alpha {
                groups.entry(uf.find(node as usize)).or_default().insert(node);
            }
        }
        groups.into_values().collect()
    }

    fn direct_partition(sg: &EdgeScalarGraph<'_>, alpha: f64) -> BTreeSet<BTreeSet<u32>> {
        maximal_alpha_edge_components(sg, alpha)
            .into_iter()
            .map(|c| c.edges.into_iter().map(|e| e.0).collect())
            .collect()
    }

    fn check_all_levels(graph: &CsrGraph, scalar: &[f64]) {
        let sg = EdgeScalarGraph::new(graph, scalar).unwrap();
        let fast = edge_scalar_tree(&sg);
        let naive = edge_scalar_tree_naive(&sg);
        assert!(fast.check_monotone().is_none());
        assert!(naive.check_monotone().is_none());
        for &alpha in &distinct_levels(scalar) {
            let expected = direct_partition(&sg, alpha);
            assert_eq!(tree_cut_partition(&fast, alpha), expected, "Algorithm 3 at alpha {alpha}");
            assert_eq!(
                tree_cut_partition(&naive, alpha),
                expected,
                "naive method at alpha {alpha}"
            );
        }
    }

    #[test]
    fn triangle_with_distinct_edge_scalars() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (0, 2)]);
        let g = b.build();
        check_all_levels(&g, &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn path_with_valley() {
        // Edge scalars 5, 1, 5 on a path: two separate peaks joined by a
        // low-scalar edge — the canonical two-peak terrain.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        check_all_levels(&g, &[5.0, 1.0, 5.0]);
    }

    #[test]
    fn star_with_duplicate_scalars() {
        let mut b = GraphBuilder::new();
        for leaf in 1..=5u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        check_all_levels(&g, &[2.0, 2.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn two_triangles_joined_by_a_bridge() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (0, 2)]); // triangle A: edges 0..3
        b.extend_edges([(3u32, 4u32), (4, 5), (3, 5)]); // triangle B
        b.add_edge(2, 3); // bridge
        let g = b.build();
        // Triangle A edges high, triangle B edges medium, bridge low.
        let mut scalar = vec![0.0; g.edge_count()];
        for e in g.edges() {
            let (u, v) = (e.u.0, e.v.0);
            scalar[e.id.index()] = if u <= 2 && v <= 2 {
                9.0
            } else if u >= 3 && v >= 3 {
                5.0
            } else {
                1.0
            };
        }
        check_all_levels(&g, &scalar);
    }

    #[test]
    fn disconnected_edge_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 5);
        let g = b.build();
        let scalar = vec![3.0, 2.0, 2.0];
        let sg = EdgeScalarGraph::new(&g, &scalar).unwrap();
        let tree = edge_scalar_tree(&sg);
        assert_eq!(tree.roots().len(), 3, "three edge components give three roots");
        check_all_levels(&g, &scalar);
    }

    #[test]
    fn random_graphs_match_naive_and_direct() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for seed in 0..6u64 {
            let g = ugraph::generators::erdos_renyi(24, 0.18, seed);
            if g.edge_count() == 0 {
                continue;
            }
            // Scalars from a small integer set to force plenty of duplicates.
            let scalar: Vec<f64> =
                (0..g.edge_count()).map(|_| rng.gen_range(0..5) as f64).collect();
            check_all_levels(&g, &scalar);
        }
    }

    #[test]
    fn super_tree_counts_match_between_methods() {
        // Even though the raw trees may differ in shape, the super trees must
        // describe the same component hierarchy; in particular they must have
        // the same number of super nodes and the same multiset of member sets.
        let g = ugraph::generators::erdos_renyi(30, 0.15, 3);
        let scalar: Vec<f64> = (0..g.edge_count()).map(|e| (e % 4) as f64).collect();
        let sg = EdgeScalarGraph::new(&g, &scalar).unwrap();
        let fast = build_super_tree(&edge_scalar_tree(&sg));
        let naive = build_super_tree(&edge_scalar_tree_naive(&sg));
        assert_eq!(fast.node_count(), naive.node_count());
        let sets = |t: &crate::super_tree::SuperScalarTree| -> BTreeSet<Vec<u32>> {
            (0..t.node_count() as u32).map(|n| t.members(n).to_vec()).collect()
        };
        assert_eq!(sets(&fast), sets(&naive));
    }

    #[test]
    fn empty_graph_gives_empty_tree() {
        let g = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = EdgeScalarGraph::new(&g, &scalar).unwrap();
        assert!(edge_scalar_tree(&sg).is_empty());
        assert!(edge_scalar_tree_naive(&sg).is_empty());
    }

    #[test]
    fn proposition3_min_id_edge_suffices() {
        // Directly exercise the claim of Proposition 3 on a wheel graph: the
        // partition produced by Algorithm 3 (which only inspects min-id
        // incident edges) matches the direct component extraction at every
        // level even though vertices have many incident edges.
        let mut b = GraphBuilder::new();
        let hub = 0u32;
        for i in 1..=8u32 {
            b.add_edge(hub, i);
            b.add_edge(i, if i == 8 { 1 } else { i + 1 });
        }
        let g = b.build();
        let scalar: Vec<f64> =
            (0..g.edge_count()).map(|e| if e % 3 == 0 { 4.0 } else { (e % 3) as f64 }).collect();
        check_all_levels(&g, &scalar);
        // Sanity: the hub has high degree, so the naive dual here is much
        // denser than the original graph.
        let (_, e) = (g.vertex_count(), g.edge_count());
        assert!(ugraph::dual::estimated_dual_edges(&g) > e);
        let _ = EdgeId(0);
    }
}
