//! Scalar graphs: a graph together with a scalar value per vertex or per edge.
//!
//! These are thin, borrow-based views — the paper's "vertex-based scalar
//! graph" `G(V, E)` with `v.scalar` and "edge-based scalar graph" with
//! `e.scalar` (Section II). Construction validates that the scalar vector has
//! exactly one entry per vertex (edge) and contains only finite values (no
//! NaN, no ±∞), so every downstream algorithm can rely on total ordering and
//! meaningful arithmetic (level spacing, color normalization, mesh heights)
//! over the scalar values.

use ugraph::{CsrGraph, EdgeId, GraphError, GraphStorage, GraphStorageExt, Result, VertexId};

/// A vertex-based scalar graph: every vertex carries one scalar value.
///
/// Generic over the storage backend: `G` defaults to the owned [`CsrGraph`]
/// but can be any [`GraphStorage`] implementation (including a
/// memory-mapped snapshot or a `dyn GraphStorage` trait object).
pub struct VertexScalarGraph<'a, G: GraphStorage + ?Sized = CsrGraph> {
    graph: &'a G,
    scalar: &'a [f64],
}

/// An edge-based scalar graph: every edge carries one scalar value.
///
/// Generic over the storage backend exactly like [`VertexScalarGraph`].
pub struct EdgeScalarGraph<'a, G: GraphStorage + ?Sized = CsrGraph> {
    graph: &'a G,
    scalar: &'a [f64],
}

// Manual `Copy`/`Clone`/`Debug`: derives would demand `G: Copy`/`G: Debug`
// even though only the *reference* is copied, which would rule out
// `dyn GraphStorage` backends.
impl<G: GraphStorage + ?Sized> Copy for VertexScalarGraph<'_, G> {}
impl<G: GraphStorage + ?Sized> Clone for VertexScalarGraph<'_, G> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<G: GraphStorage + ?Sized> std::fmt::Debug for VertexScalarGraph<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VertexScalarGraph")
            .field("vertices", &self.graph.vertex_count())
            .field("edges", &self.graph.edge_count())
            .finish()
    }
}
impl<G: GraphStorage + ?Sized> Copy for EdgeScalarGraph<'_, G> {}
impl<G: GraphStorage + ?Sized> Clone for EdgeScalarGraph<'_, G> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<G: GraphStorage + ?Sized> std::fmt::Debug for EdgeScalarGraph<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeScalarGraph")
            .field("vertices", &self.graph.vertex_count())
            .field("edges", &self.graph.edge_count())
            .finish()
    }
}

impl<'a, G: GraphStorage + ?Sized> VertexScalarGraph<'a, G> {
    /// Create a vertex scalar graph, validating the scalar vector: one entry
    /// per vertex, every entry finite
    /// ([`GraphError::NonFiniteScalar`] otherwise).
    pub fn new(graph: &'a G, scalar: &'a [f64]) -> Result<Self> {
        graph.check_vertex_values(scalar)?;
        check_finite(scalar, "vertex scalar field")?;
        Ok(VertexScalarGraph { graph, scalar })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'a G {
        self.graph
    }

    /// The scalar values, indexed by vertex id.
    #[inline]
    pub fn scalar(&self) -> &'a [f64] {
        self.scalar
    }

    /// The scalar value of vertex `v` (the paper's `v.scalar`).
    #[inline]
    pub fn value(&self, v: VertexId) -> f64 {
        self.scalar[v.index()]
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Vertices sorted by decreasing scalar value, ties broken by increasing
    /// vertex id — the processing order of Algorithm 1.
    pub fn vertices_by_decreasing_scalar(&self) -> Vec<VertexId> {
        let mut order: Vec<VertexId> = self.graph.vertices().collect();
        order.sort_by(|&a, &b| self.value(b).total_cmp(&self.value(a)).then(a.cmp(&b)));
        order
    }
}

impl<'a, G: GraphStorage + ?Sized> EdgeScalarGraph<'a, G> {
    /// Create an edge scalar graph, validating the scalar vector: one entry
    /// per edge, every entry finite
    /// ([`GraphError::NonFiniteScalar`] otherwise).
    pub fn new(graph: &'a G, scalar: &'a [f64]) -> Result<Self> {
        graph.check_edge_values(scalar)?;
        check_finite(scalar, "edge scalar field")?;
        Ok(EdgeScalarGraph { graph, scalar })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'a G {
        self.graph
    }

    /// The scalar values, indexed by edge id.
    #[inline]
    pub fn scalar(&self) -> &'a [f64] {
        self.scalar
    }

    /// The scalar value of edge `e` (the paper's `e.scalar`).
    #[inline]
    pub fn value(&self, e: EdgeId) -> f64 {
        self.scalar[e.index()]
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Edges sorted by decreasing scalar value, ties broken by increasing edge
    /// id — the processing order of Algorithm 3.
    pub fn edges_by_decreasing_scalar(&self) -> Vec<EdgeId> {
        let mut order: Vec<EdgeId> = (0..self.edge_count()).map(EdgeId::from_index).collect();
        order.sort_by(|&a, &b| self.value(b).total_cmp(&self.value(a)).then(a.cmp(&b)));
        order
    }
}

fn check_finite(values: &[f64], what: &'static str) -> Result<()> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(GraphError::NonFiniteScalar { what, index, value: values[index] }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn path4() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        b.build()
    }

    #[test]
    fn vertex_scalar_graph_validates_input() {
        let g = path4();
        let good = vec![1.0, 2.0, 3.0, 4.0];
        let sg = VertexScalarGraph::new(&g, &good).unwrap();
        assert_eq!(sg.value(VertexId(2)), 3.0);
        assert_eq!(sg.vertex_count(), 4);

        let short = vec![1.0, 2.0];
        assert!(VertexScalarGraph::new(&g, &short).is_err());
        let nan = vec![1.0, f64::NAN, 3.0, 4.0];
        assert!(VertexScalarGraph::new(&g, &nan).is_err());
    }

    #[test]
    fn non_finite_scalars_are_rejected_with_position() {
        let g = path4();
        // NaN and both infinities must be refused up front — the seed code let
        // infinities through and NaN panicked deep inside peak ranking.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let scalar = vec![1.0, 2.0, bad, 4.0];
            let err = VertexScalarGraph::new(&g, &scalar).unwrap_err();
            match err {
                ugraph::GraphError::NonFiniteScalar { what, index, .. } => {
                    assert_eq!(what, "vertex scalar field");
                    assert_eq!(index, 2);
                }
                other => panic!("expected NonFiniteScalar, got {other:?}"),
            }
            let escalar = vec![1.0, bad, 3.0];
            let err = EdgeScalarGraph::new(&g, &escalar).unwrap_err();
            match err {
                ugraph::GraphError::NonFiniteScalar { what, index, .. } => {
                    assert_eq!(what, "edge scalar field");
                    assert_eq!(index, 1);
                }
                other => panic!("expected NonFiniteScalar, got {other:?}"),
            }
        }
    }

    #[test]
    fn edge_scalar_graph_validates_input() {
        let g = path4();
        let good = vec![1.0, 2.0, 3.0];
        let sg = EdgeScalarGraph::new(&g, &good).unwrap();
        assert_eq!(sg.value(EdgeId(1)), 2.0);
        assert_eq!(sg.edge_count(), 3);
        assert!(EdgeScalarGraph::new(&g, &[1.0]).is_err());
    }

    #[test]
    fn decreasing_order_breaks_ties_by_id() {
        let g = path4();
        let scalar = vec![2.0, 5.0, 2.0, 7.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let order = sg.vertices_by_decreasing_scalar();
        assert_eq!(order, vec![VertexId(3), VertexId(1), VertexId(0), VertexId(2)]);

        let escalar = vec![1.0, 1.0, 9.0];
        let esg = EdgeScalarGraph::new(&g, &escalar).unwrap();
        assert_eq!(esg.edges_by_decreasing_scalar(), vec![EdgeId(2), EdgeId(0), EdgeId(1)]);
    }
}
