//! # scalarfield — scalar graphs, scalar trees and terrain-ready hierarchies
//!
//! This crate is the reproduction of the primary contribution of
//! *Analyzing and Visualizing Scalar Fields on Graphs* (Zhang, Wang,
//! Parthasarathy, ICDE 2017):
//!
//! * [`scalar_graph`] — vertex-based and edge-based **scalar graphs**
//!   (Section II, Notation);
//! * [`component`] — **maximal α-connected components** and their edge-based
//!   analogue (Definitions 1–3), extracted directly; used both as a public API
//!   and as the correctness oracle for the tree algorithms;
//! * [`vertex_tree`] — the **vertex scalar tree** of Algorithm 1
//!   (union–find sweep in decreasing scalar order);
//! * [`super_tree`] — the **super scalar tree** of Algorithm 2 (merging
//!   equal-scalar ancestor/descendant chains so Property 2 holds when scalar
//!   values repeat);
//! * [`edge_tree`] — the **edge scalar tree**: the optimized Algorithm 3 and
//!   the naive dual-graph method it replaces;
//! * [`mcc`] — `MCC(v)` / `MCC(e)` queries and α cross-sections on super trees
//!   (Theorems 1–3, Propositions 1–2);
//! * [`simplify`] — scalar discretization simplification (Section II-E,
//!   "Simplification");
//! * [`correlation`] — the **Local/Global Correlation Index** and outlier
//!   score for pairs of scalar fields (Section II-F, Figure 10).
//!
//! ## Flat-arena tree representation
//!
//! Both tree types are stored as flat arenas rather than pointer-chasing
//! node structs, because every downstream stage (terrain layout, peaks,
//! treemap, MCC queries) hammers the same handful of tree queries:
//!
//! * [`ScalarTree`] keeps node ids equal to element ids (Property 1) and
//!   precomputes children as a single shared CSR vector with per-node
//!   `(offset, len)` ranges — mirroring `ugraph::CsrGraph` — plus depths and
//!   a BFS topological order, so `children`/`depths`/
//!   `nodes_by_decreasing_depth` are allocation-free slice/iterator accessors.
//! * [`SuperScalarTree`] renumbers super nodes into **DFS pre-order** at
//!   construction: every parent id is smaller than its children's, the
//!   subtree rooted at `i` is the contiguous id range `i..subtree_end(i)`,
//!   and the member arena is grouped accordingly — so
//!   `subtree_member_count` is O(1) offset arithmetic and `subtree_members`
//!   is a single allocation, instead of the old
//!   sort-every-node-by-depth-per-query traversal.
//!
//! ## Quick example: K-Core terrain input in a few lines
//!
//! ```
//! use ugraph::GraphBuilder;
//! use measures::core_numbers;
//! use scalarfield::{VertexScalarGraph, vertex_scalar_tree, build_super_tree};
//!
//! // A small graph: a triangle with a pendant path.
//! let mut b = GraphBuilder::new();
//! b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let graph = b.build();
//!
//! // Use the K-Core number of each vertex as its scalar value.
//! let cores = core_numbers(&graph);
//! let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
//! let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
//!
//! // Algorithm 1 + Algorithm 2 give the super scalar tree (terrain input).
//! let tree = vertex_scalar_tree(&sg);
//! let super_tree = build_super_tree(&tree);
//! assert_eq!(super_tree.total_members(), graph.vertex_count());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod component;
pub mod correlation;
pub mod edge_tree;
pub mod mcc;
pub mod scalar_graph;
pub mod simplify;
pub mod super_tree;
pub mod vertex_tree;

pub use component::{
    maximal_alpha_components, maximal_alpha_edge_components, AlphaComponent, AlphaEdgeComponent,
};
pub use correlation::{global_correlation_index, local_correlation_index, outlier_scores};
pub use edge_tree::{edge_scalar_tree, edge_scalar_tree_naive};
pub use mcc::{
    component_members_at_alpha, components_at_alpha, mcc_members, mcc_of_element, AlphaCut,
};
pub use scalar_graph::{EdgeScalarGraph, VertexScalarGraph};
pub use simplify::{simplify_super_tree, try_simplify_super_tree};
pub use super_tree::{build_super_tree, SuperScalarTree};
pub use vertex_tree::{vertex_scalar_tree, ScalarTree};
