//! Direct extraction of maximal α-connected components (Definitions 1–3).
//!
//! These routines compute the components by a straightforward filtered BFS,
//! without going through the scalar tree. They serve two purposes:
//!
//! 1. a simple public API when only one α value is needed, and
//! 2. the *correctness oracle* that the scalar-tree algorithms (Algorithms
//!    1–3) are validated against in unit and property tests: for every α the
//!    subtrees above the cut must induce exactly these components.

use crate::scalar_graph::{EdgeScalarGraph, VertexScalarGraph};
use std::collections::VecDeque;
use ugraph::{EdgeId, GraphStorage, VertexId};

/// One maximal α-connected component (Definition 1).
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaComponent {
    /// The threshold α this component is maximal for.
    pub alpha: f64,
    /// Vertices of the component, sorted by id.
    pub vertices: Vec<VertexId>,
    /// Edges of the component (both endpoints inside), sorted by id.
    pub edges: Vec<EdgeId>,
    /// The smallest scalar value among member vertices (by Theorem 1, the
    /// component equals `MCC(v)` of any vertex attaining this minimum).
    pub min_scalar: f64,
}

/// One maximal α-edge-connected component (Definition 3).
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaEdgeComponent {
    /// The threshold α this component is maximal for.
    pub alpha: f64,
    /// Edges of the component, sorted by id.
    pub edges: Vec<EdgeId>,
    /// Vertices spanned by those edges, sorted by id.
    pub vertices: Vec<VertexId>,
    /// The smallest scalar value among member edges.
    pub min_scalar: f64,
}

/// Extract all maximal α-connected components of a vertex scalar graph for a
/// given `alpha` (Definition 1).
///
/// A component is a maximal connected set of vertices whose scalar is `>= α`,
/// together with every edge joining two member vertices. Components are
/// returned sorted by their smallest vertex id, so the output is canonical.
pub fn maximal_alpha_components<G: GraphStorage + ?Sized>(
    sg: &VertexScalarGraph<'_, G>,
    alpha: f64,
) -> Vec<AlphaComponent> {
    let graph = sg.graph();
    let n = graph.vertex_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut queue = VecDeque::new();

    for start in graph.vertices() {
        if visited[start.index()] || sg.value(start) < alpha {
            continue;
        }
        // BFS restricted to vertices with scalar >= alpha.
        let mut vertices = Vec::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            vertices.push(v);
            for u in graph.neighbor_vertices(v) {
                if !visited[u.index()] && sg.value(u) >= alpha {
                    visited[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        vertices.sort_unstable();
        // Condition (3): include every edge with both endpoints inside.
        let member = {
            let mut member = vec![false; n];
            for &v in &vertices {
                member[v.index()] = true;
            }
            member
        };
        let mut edges = Vec::new();
        for &v in &vertices {
            for (u, e) in graph.neighbors(v) {
                if u > v && member[u.index()] {
                    edges.push(e);
                }
            }
        }
        edges.sort_unstable();
        let min_scalar = vertices.iter().map(|&v| sg.value(v)).fold(f64::INFINITY, f64::min);
        components.push(AlphaComponent { alpha, vertices, edges, min_scalar });
    }
    components
}

/// Extract all maximal α-edge-connected components of an edge scalar graph for
/// a given `alpha` (Definition 3).
///
/// Two qualifying edges (scalar `>= α`) belong to the same component when they
/// are connected through a chain of qualifying edges sharing endpoints.
pub fn maximal_alpha_edge_components<G: GraphStorage + ?Sized>(
    sg: &EdgeScalarGraph<'_, G>,
    alpha: f64,
) -> Vec<AlphaEdgeComponent> {
    let graph = sg.graph();
    let m = graph.edge_count();
    let mut visited = vec![false; m];
    let mut components = Vec::new();
    let mut queue: VecDeque<EdgeId> = VecDeque::new();

    for start_idx in 0..m {
        let start = EdgeId::from_index(start_idx);
        if visited[start_idx] || sg.value(start) < alpha {
            continue;
        }
        let mut edges = Vec::new();
        visited[start_idx] = true;
        queue.push_back(start);
        while let Some(e) = queue.pop_front() {
            edges.push(e);
            let (u, v) = graph.endpoints(e);
            for endpoint in [u, v] {
                for &incident in graph.incident_edge_slice(endpoint) {
                    if !visited[incident.index()] && sg.value(incident) >= alpha {
                        visited[incident.index()] = true;
                        queue.push_back(incident);
                    }
                }
            }
        }
        edges.sort_unstable();
        let mut vertices: Vec<VertexId> = edges
            .iter()
            .flat_map(|&e| {
                let (u, v) = graph.endpoints(e);
                [u, v]
            })
            .collect();
        vertices.sort_unstable();
        vertices.dedup();
        let min_scalar = edges.iter().map(|&e| sg.value(e)).fold(f64::INFINITY, f64::min);
        components.push(AlphaEdgeComponent { alpha, edges, vertices, min_scalar });
    }
    components
}

/// All distinct scalar values of a slice, sorted increasing — the candidate α
/// levels at which the component structure can change.
pub fn distinct_levels(scalar: &[f64]) -> Vec<f64> {
    let mut levels: Vec<f64> = scalar.to_vec();
    levels.sort_by(f64::total_cmp);
    levels.dedup();
    levels
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ugraph::{CsrGraph, GraphBuilder};

    /// The example scalar graph of the paper's Figure 2(a): vertices v1..v9
    /// (here 0-indexed as 0..8) with scalar values 3, 3, 4, 3, 5, 4, 2, 1.5, 1
    /// and edges forming two dense regions joined through low-scalar vertices.
    ///
    /// Edges are chosen to match the figure's structure: {v1,v2,v3,v5} is a
    /// maximal 2.5-connected component, {v4,v6} another, and both join at
    /// v7 (scalar 2) into a maximal 2-connected component.
    pub(crate) fn paper_figure2_graph() -> (CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::new();
        // Component {v1, v2, v3, v5}: a connected high-scalar region.
        b.extend_edges([(0u32, 1u32), (0, 2), (1, 4), (2, 4)]);
        // Component {v4, v6}.
        b.add_edge(3, 5);
        // v7 joins both regions.
        b.extend_edges([(2u32, 6u32), (5, 6)]);
        // v8 attaches below v7, v9 is the global minimum attached to v8.
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        let graph = b.build();
        let scalar = vec![3.0, 3.0, 4.0, 3.0, 5.0, 4.0, 2.0, 1.5, 1.0];
        (graph, scalar)
    }

    #[test]
    fn figure2_alpha_2_5_components() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let comps = maximal_alpha_components(&sg, 2.5);
        assert_eq!(comps.len(), 2, "Figure 2(c): exactly two maximal 2.5-connected components");
        let sets: Vec<Vec<u32>> =
            comps.iter().map(|c| c.vertices.iter().map(|v| v.0).collect()).collect();
        assert!(sets.contains(&vec![0, 1, 2, 4]), "C1 = {{v1, v2, v3, v5}}");
        assert!(sets.contains(&vec![3, 5]), "C2 = {{v4, v6}}");
    }

    #[test]
    fn figure2_alpha_2_component_contains_both() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let comps = maximal_alpha_components(&sg, 2.0);
        assert_eq!(comps.len(), 1);
        let verts: Vec<u32> = comps[0].vertices.iter().map(|v| v.0).collect();
        assert_eq!(verts, vec![0, 1, 2, 3, 4, 5, 6], "C3 = {{v1..v7}}");
        assert_eq!(comps[0].min_scalar, 2.0);
    }

    #[test]
    fn components_include_internal_edges_only() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let comps = maximal_alpha_components(&sg, 2.5);
        for c in &comps {
            for &e in &c.edges {
                let (u, v) = graph.endpoints(e);
                assert!(c.vertices.contains(&u) && c.vertices.contains(&v));
            }
            // No edge between member and non-member should be missing: count
            // edges with both endpoints in the component directly.
            let expected = graph
                .edges()
                .filter(|er| c.vertices.contains(&er.u) && c.vertices.contains(&er.v))
                .count();
            assert_eq!(c.edges.len(), expected);
        }
    }

    #[test]
    fn alpha_above_max_gives_no_components() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        assert!(maximal_alpha_components(&sg, 100.0).is_empty());
    }

    #[test]
    fn alpha_at_min_gives_connected_components_of_graph() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let comps = maximal_alpha_components(&sg, 1.0);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].vertices.len(), graph.vertex_count());
    }

    #[test]
    fn edge_components_on_a_path() {
        // Path 0-1-2-3 with edge scalars 5, 1, 5: at α=3 the two scalar-5
        // edges are separate components because the middle edge is below α.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let graph = b.build();
        let scalar = vec![5.0, 1.0, 5.0];
        let sg = EdgeScalarGraph::new(&graph, &scalar).unwrap();
        let comps = maximal_alpha_edge_components(&sg, 3.0);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].edges, vec![EdgeId(0)]);
        assert_eq!(comps[1].edges, vec![EdgeId(2)]);
        // At α=1 all three edges form one component.
        let comps = maximal_alpha_edge_components(&sg, 1.0);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].edges.len(), 3);
        assert_eq!(comps[0].vertices.len(), 4);
    }

    #[test]
    fn distinct_levels_are_sorted_and_unique() {
        let levels = distinct_levels(&[3.0, 1.0, 3.0, 2.0, 1.0]);
        assert_eq!(levels, vec![1.0, 2.0, 3.0]);
    }
}
