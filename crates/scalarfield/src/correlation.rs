//! Local and Global Correlation Indexes for pairs of scalar fields
//! (Section II-F) and the outlier score of Section III-C.
//!
//! Given two vertex scalar fields `S_i`, `S_j`, the **Local Correlation
//! Index** `LCI(v)` is the Pearson correlation of the two fields over the
//! k-hop neighborhood `N(v)` of `v` (the paper fixes `k = 1`); the **Global
//! Correlation Index** is the average LCI over all vertices. A vertex whose
//! LCI disagrees with the global trend is an outlier; the paper visualizes
//! `outlier_score(v) = -LCI(v)` as its own scalar field (Figure 10).

use ugraph::{
    traversal::k_hop_neighborhood, GraphError, GraphStorage, GraphStorageExt, Result, VertexId,
};

/// Local Correlation Index of two scalar fields over the `k`-hop neighborhood
/// of every vertex.
///
/// Degenerate neighborhoods (fewer than 2 vertices, or zero variance in either
/// field) get an LCI of 0, which the paper's formula leaves undefined; 0 is
/// the neutral choice (no evidence of correlation either way).
pub fn local_correlation_index<G: GraphStorage + ?Sized>(
    graph: &G,
    field_i: &[f64],
    field_j: &[f64],
    k: usize,
) -> Result<Vec<f64>> {
    graph.check_vertex_values(field_i)?;
    graph.check_vertex_values(field_j)?;
    check_finite(field_i)?;
    check_finite(field_j)?;

    let mut lci = vec![0.0f64; graph.vertex_count()];
    for v in graph.vertices() {
        let neighborhood = k_hop_neighborhood(graph, v, k);
        lci[v.index()] = pearson_over(&neighborhood, field_i, field_j);
    }
    Ok(lci)
}

/// Global Correlation Index: the mean of the Local Correlation Indexes.
pub fn global_correlation_index<G: GraphStorage + ?Sized>(
    graph: &G,
    field_i: &[f64],
    field_j: &[f64],
    k: usize,
) -> Result<f64> {
    let lci = local_correlation_index(graph, field_i, field_j, k)?;
    if lci.is_empty() {
        return Ok(0.0);
    }
    Ok(lci.iter().sum::<f64>() / lci.len() as f64)
}

/// Outlier scores: `-LCI(v)` (Section III-C). Vertices whose local correlation
/// opposes the global trend get high scores.
pub fn outlier_scores<G: GraphStorage + ?Sized>(
    graph: &G,
    field_i: &[f64],
    field_j: &[f64],
    k: usize,
) -> Result<Vec<f64>> {
    Ok(local_correlation_index(graph, field_i, field_j, k)?.into_iter().map(|lci| -lci).collect())
}

/// Pearson correlation of two fields restricted to a vertex set, following the
/// paper's covariance formulas (population covariance over `|N(v)|`).
fn pearson_over(vertices: &[VertexId], field_i: &[f64], field_j: &[f64]) -> f64 {
    let n = vertices.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_i = vertices.iter().map(|v| field_i[v.index()]).sum::<f64>() / nf;
    let mean_j = vertices.iter().map(|v| field_j[v.index()]).sum::<f64>() / nf;
    let mut cov_ij = 0.0;
    let mut cov_ii = 0.0;
    let mut cov_jj = 0.0;
    for v in vertices {
        let di = field_i[v.index()] - mean_i;
        let dj = field_j[v.index()] - mean_j;
        cov_ij += di * dj;
        cov_ii += di * di;
        cov_jj += dj * dj;
    }
    if cov_ii <= 0.0 || cov_jj <= 0.0 {
        return 0.0;
    }
    (cov_ij / nf) / ((cov_ii / nf).sqrt() * (cov_jj / nf).sqrt())
}

fn check_finite(values: &[f64]) -> Result<()> {
    if values.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(GraphError::Parse {
            line: 0,
            message: "scalar field contains non-finite values".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::barabasi_albert;
    use ugraph::CsrGraph;
    use ugraph::GraphBuilder;

    fn path5() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
        b.build()
    }

    #[test]
    fn identical_fields_have_lci_one() {
        let g = path5();
        let field = vec![1.0, 3.0, 2.0, 5.0, 4.0];
        let lci = local_correlation_index(&g, &field, &field, 1).unwrap();
        for &v in &lci {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let gci = global_correlation_index(&g, &field, &field, 1).unwrap();
        assert!((gci - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negated_fields_have_lci_minus_one() {
        let g = path5();
        let field = vec![1.0, 3.0, 2.0, 5.0, 4.0];
        let negated: Vec<f64> = field.iter().map(|v| -v).collect();
        let lci = local_correlation_index(&g, &field, &negated, 1).unwrap();
        for &v in &lci {
            assert!((v + 1.0).abs() < 1e-12);
        }
        let outliers = outlier_scores(&g, &field, &negated, 1).unwrap();
        for &o in &outliers {
            assert!((o - 1.0).abs() < 1e-12, "anti-correlated vertices are outliers");
        }
    }

    #[test]
    fn constant_field_gives_zero_lci() {
        let g = path5();
        let constant = vec![2.0; 5];
        let varying = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let lci = local_correlation_index(&g, &constant, &varying, 1).unwrap();
        assert!(lci.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lci_is_always_in_unit_interval() {
        let g = barabasi_albert(200, 3, 5);
        let degrees: Vec<f64> = g.vertices().map(|v| g.degree(v) as f64).collect();
        // A monotone transform of degree: strongly positively correlated with
        // it in every neighborhood where degree varies at all.
        let squared: Vec<f64> = degrees.iter().map(|&d| d * d).collect();
        let lci = local_correlation_index(&g, &degrees, &squared, 1).unwrap();
        for &v in &lci {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
        let gci = global_correlation_index(&g, &degrees, &squared, 1).unwrap();
        assert!((-1.0..=1.0).contains(&gci));
        assert!(gci > 0.3, "gci = {gci}");
    }

    #[test]
    fn mixed_correlation_detects_local_outliers() {
        // Star center with increasing leaf values in field i; field j agrees
        // on one star and disagrees on another.
        let mut b = GraphBuilder::new();
        // Star A: center 0, leaves 1-3. Star B: center 4, leaves 5-7.
        for leaf in 1..=3u32 {
            b.add_edge(0u32, leaf);
        }
        for leaf in 5..=7u32 {
            b.add_edge(4u32, leaf);
        }
        let g = b.build();
        let field_i = vec![0.0, 1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0];
        let field_j = vec![0.0, 1.0, 2.0, 3.0, 0.0, -1.0, -2.0, -3.0];
        let lci = local_correlation_index(&g, &field_i, &field_j, 1).unwrap();
        assert!(lci[0] > 0.99, "star A neighborhood agrees");
        assert!(lci[4] < -0.99, "star B neighborhood disagrees");
        let outliers = outlier_scores(&g, &field_i, &field_j, 1).unwrap();
        let max_score = outliers.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (outliers[4] - max_score).abs() < 1e-12,
            "the disagreeing star center is among the top outliers"
        );
        assert!(outliers[0] < 0.0, "the agreeing star center is not an outlier");
    }

    #[test]
    fn input_validation() {
        let g = path5();
        let short = vec![1.0, 2.0];
        let ok = vec![1.0; 5];
        assert!(local_correlation_index(&g, &short, &ok, 1).is_err());
        let nan = vec![1.0, 2.0, f64::NAN, 4.0, 5.0];
        assert!(local_correlation_index(&g, &nan, &ok, 1).is_err());
    }

    #[test]
    fn empty_graph_gci_is_zero() {
        let g = GraphBuilder::new().build();
        assert_eq!(global_correlation_index(&g, &[], &[], 1).unwrap(), 0.0);
    }
}
