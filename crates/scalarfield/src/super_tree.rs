//! Algorithm 2: postprocessing a scalar tree into a super scalar tree.
//!
//! When several elements share the same scalar value, the raw Algorithm-1 tree
//! can contain subtrees that are *not* maximal α-connected components
//! (the paper's Figure 3 example). Algorithm 2 fixes this by merging every
//! ancestor with all of its equal-scalar descendants into a single **super
//! node**; each subtree of the resulting super tree corresponds to a maximal
//! α-connected component again (Proposition 2), at the price of Property 1
//! (a super node may hold several original elements).
//!
//! The super tree is also the direct input of the terrain visualization: the
//! 2D layout nests one boundary per super node, and the boundary's area is
//! proportional to its subtree's total member count.

use crate::vertex_tree::ScalarTree;
use std::collections::VecDeque;

/// One node of a [`SuperScalarTree`]: a maximal set of equal-scalar elements
/// merged by Algorithm 2.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperNode {
    /// The common scalar value of all members.
    pub scalar: f64,
    /// Original element ids (vertex ids or edge ids) merged into this node,
    /// sorted increasing.
    pub members: Vec<u32>,
    /// Parent super node, or `None` for roots.
    pub parent: Option<u32>,
    /// Child super nodes, sorted by id.
    pub children: Vec<u32>,
}

/// The super scalar tree produced by Algorithm 2 (a forest for disconnected
/// inputs).
#[derive(Clone, Debug, PartialEq)]
pub struct SuperScalarTree {
    /// All super nodes; ids are indices into this vector.
    pub nodes: Vec<SuperNode>,
    /// Root super nodes, sorted by id.
    pub roots: Vec<u32>,
    /// `node_of[element]` is the super node containing that original element.
    pub node_of: Vec<u32>,
}

impl SuperScalarTree {
    /// Number of super nodes (the `Nt` column of the paper's Table II).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of original elements across all super nodes.
    pub fn total_members(&self) -> usize {
        self.nodes.iter().map(|n| n.members.len()).sum()
    }

    /// Scalar value of super node `node`.
    pub fn scalar(&self, node: u32) -> f64 {
        self.nodes[node as usize].scalar
    }

    /// Number of members in the subtree rooted at each super node
    /// (the quantity the terrain layout maps to boundary area).
    pub fn subtree_member_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.nodes.iter().map(|n| n.members.len()).collect();
        // Accumulate bottom-up: process nodes in decreasing depth.
        let order = self.nodes_by_decreasing_depth();
        for node in order {
            if let Some(p) = self.nodes[node as usize].parent {
                counts[p as usize] += counts[node as usize];
            }
        }
        counts
    }

    /// All original elements contained in the subtree rooted at `node`,
    /// sorted increasing.
    pub fn subtree_members(&self, node: u32) -> Vec<u32> {
        let mut members = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            members.extend_from_slice(&self.nodes[x as usize].members);
            stack.extend_from_slice(&self.nodes[x as usize].children);
        }
        members.sort_unstable();
        members
    }

    /// Depth of every super node (roots at depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut stack: Vec<u32> = self.roots.clone();
        while let Some(node) = stack.pop() {
            for &c in &self.nodes[node as usize].children {
                depth[c as usize] = depth[node as usize] + 1;
                stack.push(c);
            }
        }
        depth
    }

    /// Node ids ordered by decreasing depth (children before parents).
    pub fn nodes_by_decreasing_depth(&self) -> Vec<u32> {
        let depths = self.depths();
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        order.sort_by_key(|&n| std::cmp::Reverse(depths[n as usize]));
        order
    }

    /// Verify structural invariants (used by tests and debug assertions):
    /// parent/child consistency, members sorted, scalar monotone along edges
    /// (child scalar strictly greater than parent scalar), and `node_of`
    /// consistency. Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            if node.members.is_empty() {
                return Err(format!("super node {id} has no members"));
            }
            if node.members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("super node {id} members not sorted/unique"));
            }
            for &m in &node.members {
                if self.node_of.get(m as usize).copied() != Some(id as u32) {
                    return Err(format!("node_of[{m}] does not point to super node {id}"));
                }
            }
            for &c in &node.children {
                let child = &self.nodes[c as usize];
                if child.parent != Some(id as u32) {
                    return Err(format!("child {c} of {id} has wrong parent"));
                }
                if child.scalar <= node.scalar {
                    return Err(format!(
                        "child {c} scalar {} not strictly greater than parent {id} scalar {}",
                        child.scalar, node.scalar
                    ));
                }
            }
            if let Some(p) = node.parent {
                if !self.nodes[p as usize].children.contains(&(id as u32)) {
                    return Err(format!("parent {p} does not list child {id}"));
                }
            } else if !self.roots.contains(&(id as u32)) {
                return Err(format!("orphan super node {id} not listed as root"));
            }
        }
        Ok(())
    }
}

/// Algorithm 2: merge every ancestor with its equal-scalar descendants into
/// super nodes and return the super scalar tree.
pub fn build_super_tree(tree: &ScalarTree) -> SuperScalarTree {
    let n = tree.len();
    let children = tree.children();
    let mut node_of = vec![u32::MAX; n];
    let mut nodes: Vec<SuperNode> = Vec::new();
    let mut roots = Vec::new();

    // `ancestors` is the work list of the paper's Algorithm 2: tree nodes that
    // start a new super node, paired with the super node of their parent.
    let mut ancestors: VecDeque<(u32, Option<u32>)> =
        tree.roots.iter().map(|&r| (r, None)).collect();

    while let Some((anchor, parent_super)) = ancestors.pop_front() {
        let super_id = nodes.len() as u32;
        let mut members = Vec::new();
        // BFS over the equal-scalar region rooted at `anchor` (lines 6-13).
        let mut queue = VecDeque::new();
        queue.push_back(anchor);
        while let Some(nq) = queue.pop_front() {
            members.push(nq);
            node_of[nq as usize] = super_id;
            for &nc in &children[nq as usize] {
                if tree.scalar[nc as usize] == tree.scalar[anchor as usize] {
                    queue.push_back(nc);
                } else {
                    // Lines 14-18: the child starts its own super node.
                    ancestors.push_back((nc, Some(super_id)));
                }
            }
        }
        members.sort_unstable();
        nodes.push(SuperNode {
            scalar: tree.scalar[anchor as usize],
            members,
            parent: parent_super,
            children: Vec::new(),
        });
        match parent_super {
            Some(p) => nodes[p as usize].children.push(super_id),
            None => roots.push(super_id),
        }
    }

    let result = SuperScalarTree { nodes, roots, node_of };
    debug_assert_eq!(result.check_invariants(), Ok(()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_graph::VertexScalarGraph;
    use crate::vertex_tree::vertex_scalar_tree;
    use ugraph::GraphBuilder;

    /// The paper's Figure 3 example: duplicate scalar values force Algorithm 1
    /// to produce a subtree that is not a maximal α-connected component, which
    /// Algorithm 2 must repair by merging n3, n4, n5 into one super node.
    ///
    /// We reproduce the structure: vertices v1(3), v2(3), v3(2), v4(2), v5(2)
    /// where v3, v4, v5 are mutually connected (same scalar 2) and v1 hangs
    /// off v3 while v2 hangs off v5.
    fn figure3_graph() -> (ugraph::CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(2u32, 3u32), (3, 4), (2, 4)]); // v3-v4-v5 triangle
        b.add_edge(0, 2); // v1 - v3
        b.add_edge(1, 4); // v2 - v5
        (b.build(), vec![3.0, 3.0, 2.0, 2.0, 2.0])
    }

    #[test]
    fn figure3_merges_equal_scalar_chain() {
        let (graph, scalar) = figure3_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        let st = build_super_tree(&tree);
        st.check_invariants().unwrap();
        // One super node must contain exactly {v3, v4, v5} (ids 2, 3, 4).
        let merged = st
            .nodes
            .iter()
            .find(|n| n.members == vec![2, 3, 4])
            .expect("v3, v4, v5 merged into one super node");
        assert_eq!(merged.scalar, 2.0);
        // v1 and v2 stay in their own super nodes, children of the merged one.
        assert_eq!(st.node_count(), 3);
        assert_eq!(st.total_members(), 5);
        let root = st.roots[0];
        assert_eq!(st.nodes[root as usize].members, vec![2, 3, 4]);
        assert_eq!(st.nodes[root as usize].children.len(), 2);
    }

    #[test]
    fn distinct_scalars_keep_one_member_per_node() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let graph = b.build();
        let scalar = vec![4.0, 3.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 4);
        assert!(st.nodes.iter().all(|n| n.members.len() == 1));
        assert_eq!(st.roots.len(), 1);
    }

    #[test]
    fn subtree_member_counts_accumulate() {
        let (graph, scalar) = figure3_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let counts = st.subtree_member_counts();
        let root = st.roots[0] as usize;
        assert_eq!(counts[root], 5, "root subtree holds every vertex");
        // Leaf super nodes hold exactly their own members.
        for (id, node) in st.nodes.iter().enumerate() {
            if node.children.is_empty() {
                assert_eq!(counts[id], node.members.len());
            }
        }
        // subtree_members agrees with the counts.
        assert_eq!(st.subtree_members(st.roots[0]).len(), 5);
    }

    #[test]
    fn constant_field_collapses_each_component_to_one_node() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (3, 4)]);
        let graph = b.build();
        let scalar = vec![1.0; 5];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 2, "one super node per connected component");
        assert_eq!(st.roots.len(), 2);
        assert_eq!(st.total_members(), 5);
    }

    #[test]
    fn empty_tree() {
        let graph = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 0);
        assert_eq!(st.total_members(), 0);
        assert!(st.check_invariants().is_ok());
    }
}
