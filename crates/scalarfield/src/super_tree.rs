//! Algorithm 2: postprocessing a scalar tree into a super scalar tree.
//!
//! When several elements share the same scalar value, the raw Algorithm-1 tree
//! can contain subtrees that are *not* maximal α-connected components
//! (the paper's Figure 3 example). Algorithm 2 fixes this by merging every
//! ancestor with all of its equal-scalar descendants into a single **super
//! node**; each subtree of the resulting super tree corresponds to a maximal
//! α-connected component again (Proposition 2), at the price of Property 1
//! (a super node may hold several original elements).
//!
//! The super tree is also the direct input of the terrain visualization: the
//! 2D layout nests one boundary per super node, and the boundary's area is
//! proportional to its subtree's total member count.
//!
//! # Arena layout
//!
//! [`SuperScalarTree`] is a flat arena, not a vector of per-node structs.
//! Super nodes are renumbered into **DFS pre-order** at construction, so
//!
//! * `parent(i) < i` for every non-root — one forward pass computes depths,
//!   one reverse pass accumulates subtree aggregates, no per-query sorting;
//! * the subtree rooted at `i` is the contiguous id range
//!   `i..subtree_end(i)`, and its members are one contiguous slice of the
//!   shared member arena — so [`SuperScalarTree::subtree_member_count`] is
//!   `O(1)` arithmetic on the member offsets and
//!   [`SuperScalarTree::subtree_member_slice`] is allocation-free;
//! * children and members are CSR-style `(offset, len)` ranges into two shared
//!   `Vec<u32>`s, mirroring `ugraph::CsrGraph`.

use crate::vertex_tree::ScalarTree;
use std::collections::VecDeque;

/// The super scalar tree produced by Algorithm 2 (a forest for disconnected
/// inputs), stored as a flat DFS-pre-order arena.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperScalarTree {
    /// The common scalar value of each super node's members.
    scalar: Vec<f64>,
    /// Parent super node of each node, or `None` for roots. Always `<` the
    /// node's own id (DFS pre-order invariant).
    parent: Vec<Option<u32>>,
    /// One past the last id of each node's subtree: the subtree rooted at `i`
    /// is exactly the id range `i..subtree_end[i]`.
    subtree_end: Vec<u32>,
    /// Depth of each super node (roots at 0).
    depth: Vec<u32>,
    /// CSR child arena: children of node `i` are
    /// `child_ids[child_offsets[i] .. child_offsets[i + 1]]`, in increasing
    /// id order.
    child_offsets: Vec<u32>,
    child_ids: Vec<u32>,
    /// CSR member arena: the original element ids merged into node `i` are
    /// `member_ids[member_offsets[i] .. member_offsets[i + 1]]`, sorted
    /// increasing within each node. Because ids are DFS pre-ordered, the
    /// members of a whole subtree are also one contiguous slice.
    member_offsets: Vec<u32>,
    member_ids: Vec<u32>,
    /// Node ids sorted by increasing depth (ties by increasing id): a level
    /// order, reversed by [`SuperScalarTree::nodes_by_decreasing_depth`].
    depth_order: Vec<u32>,
    /// Root super nodes, sorted by id.
    roots: Vec<u32>,
    /// `node_of[element]` is the super node containing that original element.
    node_of: Vec<u32>,
}

impl SuperScalarTree {
    /// Assemble the arena from per-node scalars, parent pointers and flat
    /// member lists (`members_flat` grouped by node via `member_offsets`, both
    /// indexed by the caller's provisional node ids).
    ///
    /// Nodes are renumbered into DFS pre-order (children visited in increasing
    /// provisional id), member lists are sorted, and every derived array
    /// (depths, child CSR, subtree ranges, `node_of`) is computed in `O(n + m)`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are structurally inconsistent: mismatched lengths,
    /// out-of-bounds parents or members, parent cycles, or an element that
    /// belongs to zero or several super nodes.
    pub fn from_parts(
        scalar: Vec<f64>,
        parent: Vec<Option<u32>>,
        member_offsets: Vec<u32>,
        member_ids: Vec<u32>,
        element_count: usize,
    ) -> SuperScalarTree {
        let n = scalar.len();
        assert_eq!(parent.len(), n, "one parent entry per super node");
        assert_eq!(member_offsets.len(), n + 1, "member offsets bracket every node");
        assert_eq!(member_offsets[n] as usize, member_ids.len(), "member offsets cover the arena");
        assert_eq!(member_ids.len(), element_count, "every element in exactly one super node");

        // Children lists in the provisional numbering (counting-sort CSR).
        let mut old_child_offsets = vec![0u32; n + 1];
        for p in parent.iter().flatten() {
            let p = *p as usize;
            assert!(p < n, "parent id {p} out of bounds for {n} super nodes");
            old_child_offsets[p + 1] += 1;
        }
        for i in 0..n {
            old_child_offsets[i + 1] += old_child_offsets[i];
        }
        let mut cursor = old_child_offsets.clone();
        let mut old_child_ids = vec![0u32; old_child_offsets[n] as usize];
        for (node, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                old_child_ids[cursor[*p as usize] as usize] = node as u32;
                cursor[*p as usize] += 1;
            }
        }

        // DFS pre-order renumbering. Children are pushed in reverse so the
        // smallest provisional id is visited (and renumbered) first.
        let mut order = Vec::with_capacity(n); // order[new] = old
        let mut stack: Vec<u32> = Vec::new();
        for (node, p) in parent.iter().enumerate().rev() {
            if p.is_none() {
                stack.push(node as u32);
            }
        }
        while let Some(old) = stack.pop() {
            order.push(old);
            let (start, end) = (
                old_child_offsets[old as usize] as usize,
                old_child_offsets[old as usize + 1] as usize,
            );
            for &c in old_child_ids[start..end].iter().rev() {
                stack.push(c);
            }
        }
        assert_eq!(order.len(), n, "parent pointers contain a cycle");
        let mut new_of_old = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }

        // Rebuild every array in the new numbering.
        let mut new_scalar = vec![0.0f64; n];
        let mut new_parent = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut roots = Vec::new();
        for (new, &old) in order.iter().enumerate() {
            new_scalar[new] = scalar[old as usize];
            match parent[old as usize] {
                Some(p) => {
                    let p = new_of_old[p as usize];
                    assert!(p < new as u32, "DFS pre-order must place parents first");
                    new_parent[new] = Some(p);
                    depth[new] = depth[p as usize] + 1;
                }
                None => roots.push(new as u32),
            }
        }

        // Level order by counting sort on depth (increasing id within a
        // level), so depth-ordered iteration never sorts at query time.
        let max_depth = depth.iter().max().copied().unwrap_or(0) as usize;
        let mut level_offsets = vec![0u32; max_depth + 2];
        for &d in &depth {
            level_offsets[d as usize + 1] += 1;
        }
        for i in 0..=max_depth {
            level_offsets[i + 1] += level_offsets[i];
        }
        let mut level_cursor = level_offsets;
        let mut depth_order = vec![0u32; n];
        for (node, &d) in depth.iter().enumerate() {
            depth_order[level_cursor[d as usize] as usize] = node as u32;
            level_cursor[d as usize] += 1;
        }

        // Subtree ranges by one reverse pass: size[i] = 1 + Σ children sizes.
        let mut size = vec![1u32; n];
        for i in (0..n).rev() {
            if let Some(p) = new_parent[i] {
                size[p as usize] += size[i];
            }
        }
        let subtree_end: Vec<u32> = (0..n).map(|i| i as u32 + size[i]).collect();

        // Child CSR in the new numbering: a node's children are consecutive
        // subtree heads inside its own range, in increasing id order.
        let mut child_offsets = vec![0u32; n + 1];
        for p in new_parent.iter().flatten() {
            child_offsets[*p as usize + 1] += 1;
        }
        for i in 0..n {
            child_offsets[i + 1] += child_offsets[i];
        }
        let mut cursor = child_offsets.clone();
        let mut child_ids = vec![0u32; child_offsets[n] as usize];
        for (node, p) in new_parent.iter().enumerate() {
            if let Some(p) = p {
                child_ids[cursor[*p as usize] as usize] = node as u32;
                cursor[*p as usize] += 1;
            }
        }

        // Member CSR in the new numbering, each node's slice sorted.
        let mut new_member_offsets = vec![0u32; n + 1];
        for (new, &old) in order.iter().enumerate() {
            new_member_offsets[new + 1] =
                member_offsets[old as usize + 1] - member_offsets[old as usize];
        }
        for i in 0..n {
            new_member_offsets[i + 1] += new_member_offsets[i];
        }
        let mut new_member_ids = vec![0u32; member_ids.len()];
        let mut node_of = vec![u32::MAX; element_count];
        for (new, &old) in order.iter().enumerate() {
            let src = &member_ids
                [member_offsets[old as usize] as usize..member_offsets[old as usize + 1] as usize];
            let dst_start = new_member_offsets[new] as usize;
            let dst = &mut new_member_ids[dst_start..dst_start + src.len()];
            dst.copy_from_slice(src);
            dst.sort_unstable();
            for &m in dst.iter() {
                assert!((m as usize) < element_count, "member id {m} out of bounds");
                assert_eq!(node_of[m as usize], u32::MAX, "element {m} in two super nodes");
                node_of[m as usize] = new as u32;
            }
        }

        SuperScalarTree {
            scalar: new_scalar,
            parent: new_parent,
            subtree_end,
            depth,
            child_offsets,
            child_ids,
            member_offsets: new_member_offsets,
            member_ids: new_member_ids,
            depth_order,
            roots,
            node_of,
        }
    }

    /// Number of super nodes (the `Nt` column of the paper's Table II).
    pub fn node_count(&self) -> usize {
        self.scalar.len()
    }

    /// Total number of original elements across all super nodes.
    pub fn total_members(&self) -> usize {
        self.member_ids.len()
    }

    /// Number of original elements the tree was built over (the domain of
    /// [`SuperScalarTree::node_of`]).
    pub fn element_count(&self) -> usize {
        self.node_of.len()
    }

    /// Scalar value of super node `node`.
    #[inline]
    pub fn scalar(&self, node: u32) -> f64 {
        self.scalar[node as usize]
    }

    /// Scalar values of all super nodes, indexed by node id.
    #[inline]
    pub fn scalars(&self) -> &[f64] {
        &self.scalar
    }

    /// Parent of super node `node`, or `None` for roots.
    #[inline]
    pub fn parent(&self, node: u32) -> Option<u32> {
        self.parent[node as usize]
    }

    /// Parent pointers of all super nodes, indexed by node id.
    #[inline]
    pub fn parents(&self) -> &[Option<u32>] {
        &self.parent
    }

    /// Children of `node`, in increasing id order — an allocation-free slice
    /// into the shared child arena.
    #[inline]
    pub fn children(&self, node: u32) -> &[u32] {
        let (start, end) =
            (self.child_offsets[node as usize], self.child_offsets[node as usize + 1]);
        &self.child_ids[start as usize..end as usize]
    }

    /// The original element ids merged into `node`, sorted increasing — an
    /// allocation-free slice into the shared member arena.
    #[inline]
    pub fn members(&self, node: u32) -> &[u32] {
        let (start, end) =
            (self.member_offsets[node as usize], self.member_offsets[node as usize + 1]);
        &self.member_ids[start as usize..end as usize]
    }

    /// Root super nodes, sorted by id.
    #[inline]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The super node containing original element `element`.
    #[inline]
    pub fn node_of(&self, element: u32) -> u32 {
        self.node_of[element as usize]
    }

    /// Depth of super node `node` (roots at 0).
    #[inline]
    pub fn depth(&self, node: u32) -> u32 {
        self.depth[node as usize]
    }

    /// Depth of every super node (roots at depth 0), indexed by node id.
    #[inline]
    pub fn depths(&self) -> &[u32] {
        &self.depth
    }

    /// The contiguous id range of the subtree rooted at `node` (DFS pre-order
    /// invariant): `node` itself, then every descendant.
    #[inline]
    pub fn subtree_nodes(&self, node: u32) -> std::ops::Range<u32> {
        node..self.subtree_end[node as usize]
    }

    /// Number of members in the subtree rooted at `node` — `O(1)` arithmetic
    /// on the member offsets, no traversal.
    #[inline]
    pub fn subtree_member_count(&self, node: u32) -> usize {
        let end = self.subtree_end[node as usize] as usize;
        (self.member_offsets[end] - self.member_offsets[node as usize]) as usize
    }

    /// Number of members in the subtree rooted at each super node
    /// (the quantity the terrain layout maps to boundary area).
    ///
    /// A single output allocation; each entry is `O(1)` offset arithmetic
    /// (the old representation re-sorted every node by depth per call).
    pub fn subtree_member_counts(&self) -> Vec<usize> {
        (0..self.node_count() as u32).map(|n| self.subtree_member_count(n)).collect()
    }

    /// All original elements in the subtree rooted at `node`, as one
    /// allocation-free slice of the member arena. Grouped by super node in DFS
    /// pre-order (sorted within each node), *not* globally sorted; use
    /// [`SuperScalarTree::subtree_members`] when a sorted vector is needed.
    #[inline]
    pub fn subtree_member_slice(&self, node: u32) -> &[u32] {
        let end = self.subtree_end[node as usize] as usize;
        &self.member_ids
            [self.member_offsets[node as usize] as usize..self.member_offsets[end] as usize]
    }

    /// All original elements contained in the subtree rooted at `node`,
    /// sorted increasing (a single allocation over
    /// [`SuperScalarTree::subtree_member_slice`]).
    pub fn subtree_members(&self, node: u32) -> Vec<u32> {
        let mut members = self.subtree_member_slice(node).to_vec();
        members.sort_unstable();
        members
    }

    /// Node ids ordered by strictly non-increasing depth (ties by decreasing
    /// id), so children always come before parents — the reversed precomputed
    /// level order, no sorting per call.
    #[inline]
    pub fn nodes_by_decreasing_depth(&self) -> impl Iterator<Item = u32> + '_ {
        self.depth_order.iter().rev().copied()
    }

    /// Verify structural invariants (used by tests and debug assertions):
    /// parent/child consistency, the DFS pre-order id invariants (parents
    /// before children, contiguous subtree ranges), members sorted, scalar
    /// monotone along edges (child scalar strictly greater than parent
    /// scalar), and full `node_of` consistency — every entry must be a valid
    /// node id whose member slice contains the element, and every element must
    /// belong to exactly one super node. Returns a description of the first
    /// violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.node_count();
        for id in 0..n as u32 {
            let members = self.members(id);
            if members.is_empty() {
                return Err(format!("super node {id} has no members"));
            }
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("super node {id} members not sorted/unique"));
            }
            let end = self.subtree_end[id as usize];
            if end <= id || end as usize > n {
                return Err(format!("super node {id} has invalid subtree range end {end}"));
            }
            for c in self.children(id) {
                let c = *c;
                if self.parent(c) != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent"));
                }
                if c <= id {
                    return Err(format!("child {c} not after parent {id} in pre-order"));
                }
                if self.subtree_end[c as usize] > end {
                    return Err(format!("child {c} subtree escapes parent {id} range"));
                }
                if self.scalar(c) <= self.scalar(id) {
                    return Err(format!(
                        "child {c} scalar {} not strictly greater than parent {id} scalar {}",
                        self.scalar(c),
                        self.scalar(id)
                    ));
                }
                if self.depth(c) != self.depth(id) + 1 {
                    return Err(format!("child {c} depth inconsistent with parent {id}"));
                }
            }
            match self.parent(id) {
                Some(p) => {
                    if p >= id {
                        return Err(format!("parent {p} of {id} not before it in pre-order"));
                    }
                    if !self.children(p).contains(&id) {
                        return Err(format!("parent {p} does not list child {id}"));
                    }
                }
                None => {
                    if !self.roots.contains(&id) {
                        return Err(format!("orphan super node {id} not listed as root"));
                    }
                    if self.depth(id) != 0 {
                        return Err(format!("root {id} has non-zero depth"));
                    }
                }
            }
        }
        // node_of must be a total, consistent assignment: every entry a valid
        // node id (a stale `u32::MAX` must not survive), the element present
        // in that node's member slice, and the counts must balance so no
        // element is double-assigned.
        for (element, &node) in self.node_of.iter().enumerate() {
            if node as usize >= n {
                return Err(format!("node_of[{element}] = {node} is not a valid super node id"));
            }
            // Member slices are sorted (checked above), so binary search keeps
            // this full-coverage check O(m log m) even for huge super nodes.
            if self.members(node).binary_search(&(element as u32)).is_err() {
                return Err(format!("node_of[{element}] points to node {node} missing it"));
            }
        }
        if self.total_members() != self.element_count() {
            return Err(format!(
                "member arena holds {} ids but the tree covers {} elements",
                self.total_members(),
                self.element_count()
            ));
        }
        Ok(())
    }
}

/// Algorithm 2: merge every ancestor with its equal-scalar descendants into
/// super nodes and return the super scalar tree.
pub fn build_super_tree(tree: &ScalarTree) -> SuperScalarTree {
    let n = tree.len();
    let mut scalar = Vec::new();
    let mut parent: Vec<Option<u32>> = Vec::new();
    let mut member_offsets: Vec<u32> = vec![0];
    let mut member_ids: Vec<u32> = Vec::with_capacity(n);

    // `ancestors` is the work list of the paper's Algorithm 2: tree nodes that
    // start a new super node, paired with the super node of their parent.
    let mut ancestors: VecDeque<(u32, Option<u32>)> =
        tree.roots().iter().map(|&r| (r, None)).collect();

    while let Some((anchor, parent_super)) = ancestors.pop_front() {
        let super_id = scalar.len() as u32;
        // BFS over the equal-scalar region rooted at `anchor` (lines 6-13);
        // members land directly in the flat arena slice of this super node.
        let mut queue = VecDeque::new();
        queue.push_back(anchor);
        while let Some(nq) = queue.pop_front() {
            member_ids.push(nq);
            for &nc in tree.children(nq) {
                if tree.scalar(nc) == tree.scalar(anchor) {
                    queue.push_back(nc);
                } else {
                    // Lines 14-18: the child starts its own super node.
                    ancestors.push_back((nc, Some(super_id)));
                }
            }
        }
        scalar.push(tree.scalar(anchor));
        parent.push(parent_super);
        member_offsets.push(member_ids.len() as u32);
    }

    let result = SuperScalarTree::from_parts(scalar, parent, member_offsets, member_ids, n);
    debug_assert_eq!(result.check_invariants(), Ok(()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_graph::VertexScalarGraph;
    use crate::vertex_tree::vertex_scalar_tree;
    use ugraph::GraphBuilder;

    /// The paper's Figure 3 example: duplicate scalar values force Algorithm 1
    /// to produce a subtree that is not a maximal α-connected component, which
    /// Algorithm 2 must repair by merging n3, n4, n5 into one super node.
    ///
    /// We reproduce the structure: vertices v1(3), v2(3), v3(2), v4(2), v5(2)
    /// where v3, v4, v5 are mutually connected (same scalar 2) and v1 hangs
    /// off v3 while v2 hangs off v5.
    fn figure3_graph() -> (ugraph::CsrGraph, Vec<f64>) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(2u32, 3u32), (3, 4), (2, 4)]); // v3-v4-v5 triangle
        b.add_edge(0, 2); // v1 - v3
        b.add_edge(1, 4); // v2 - v5
        (b.build(), vec![3.0, 3.0, 2.0, 2.0, 2.0])
    }

    #[test]
    fn figure3_merges_equal_scalar_chain() {
        let (graph, scalar) = figure3_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        let st = build_super_tree(&tree);
        st.check_invariants().unwrap();
        // One super node must contain exactly {v3, v4, v5} (ids 2, 3, 4).
        let merged = (0..st.node_count() as u32)
            .find(|&n| st.members(n) == [2, 3, 4])
            .expect("v3, v4, v5 merged into one super node");
        assert_eq!(st.scalar(merged), 2.0);
        // v1 and v2 stay in their own super nodes, children of the merged one.
        assert_eq!(st.node_count(), 3);
        assert_eq!(st.total_members(), 5);
        let root = st.roots()[0];
        assert_eq!(st.members(root), &[2, 3, 4]);
        assert_eq!(st.children(root).len(), 2);
    }

    #[test]
    fn distinct_scalars_keep_one_member_per_node() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let graph = b.build();
        let scalar = vec![4.0, 3.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 4);
        assert!((0..4u32).all(|n| st.members(n).len() == 1));
        assert_eq!(st.roots().len(), 1);
    }

    #[test]
    fn subtree_member_counts_accumulate() {
        let (graph, scalar) = figure3_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let counts = st.subtree_member_counts();
        let root = st.roots()[0];
        assert_eq!(counts[root as usize], 5, "root subtree holds every vertex");
        // Leaf super nodes hold exactly their own members.
        for id in 0..st.node_count() as u32 {
            if st.children(id).is_empty() {
                assert_eq!(counts[id as usize], st.members(id).len());
            }
            assert_eq!(counts[id as usize], st.subtree_member_count(id));
        }
        // subtree_members agrees with the counts.
        assert_eq!(st.subtree_members(st.roots()[0]).len(), 5);
    }

    #[test]
    fn decreasing_depth_order_is_monotone_in_depth() {
        // A shape where reversed pre-order would interleave depths: root with
        // two children, the first of which has its own child.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (1, 3)]);
        let graph = b.build();
        // 1 is the valley; 0 and 3 are peaks; 2 sits on the 0-branch.
        let scalar = vec![4.0, 1.0, 3.0, 2.0];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let order: Vec<u32> = st.nodes_by_decreasing_depth().collect();
        assert_eq!(order.len(), st.node_count());
        for w in order.windows(2) {
            assert!(st.depth(w[0]) >= st.depth(w[1]), "depth order violated: {order:?}");
        }
    }

    #[test]
    fn arena_ids_are_dfs_preorder() {
        let (graph, scalar) = figure3_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for id in 0..st.node_count() as u32 {
            if let Some(p) = st.parent(id) {
                assert!(p < id, "parents precede children in the arena");
            }
            let range = st.subtree_nodes(id);
            assert_eq!(range.start, id);
            // Every node in the range descends from `id`.
            for node in range {
                let mut cur = node;
                while cur != id {
                    cur = st.parent(cur).expect("range member must descend from the range root");
                }
            }
            // The contiguous member slice is a permutation of the sorted list.
            let mut from_slice = st.subtree_member_slice(id).to_vec();
            from_slice.sort_unstable();
            assert_eq!(from_slice, st.subtree_members(id));
        }
    }

    #[test]
    fn constant_field_collapses_each_component_to_one_node() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (3, 4)]);
        let graph = b.build();
        let scalar = vec![1.0; 5];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 2, "one super node per connected component");
        assert_eq!(st.roots().len(), 2);
        assert_eq!(st.total_members(), 5);
    }

    #[test]
    fn empty_tree() {
        let graph = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(st.node_count(), 0);
        assert_eq!(st.total_members(), 0);
        assert!(st.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "element 0 in two super nodes")]
    fn from_parts_rejects_double_assigned_elements() {
        // Two super nodes both claiming element 0 must be caught at
        // construction, not silently accepted.
        SuperScalarTree::from_parts(
            vec![1.0, 2.0],
            vec![None, Some(0)],
            vec![0, 1, 2],
            vec![0, 0],
            2,
        );
    }
}
