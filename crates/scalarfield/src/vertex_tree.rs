//! Algorithm 1: constructing the vertex scalar tree.
//!
//! The scalar tree has one node per vertex (Property 1); after the sweep every
//! node's scalar is ≥ its parent's scalar, and — when scalar values are
//! distinct — the subtree rooted at `n(v)` is exactly `MCC(v)`
//! (Proposition 1). When values repeat, Algorithm 2 ([`crate::super_tree`])
//! merges equal-value chains to restore Property 2.
//!
//! The sweep processes vertices in decreasing scalar order and maintains a
//! union–find over the already-processed vertices; each set's payload tracks
//! the current root of the corresponding subtree. Cost:
//! `O(|E|·α(n) + |V| log |V|)`, matching the paper's analysis.

use crate::scalar_graph::VertexScalarGraph;
use ugraph::{GraphStorage, UnionFind, VertexId};

/// A rooted forest over elements `0..len`, each carrying a scalar value,
/// stored as a flat arena.
///
/// Produced by Algorithm 1 (over vertices) and Algorithm 3 (over edges). For a
/// connected input there is a single root; disconnected inputs yield one root
/// per connected component, which downstream code (super tree, terrain) treats
/// uniformly as a forest.
///
/// Node `i` *is* element `i` (vertex id or edge id) of the underlying scalar
/// graph, so the arena keeps node ids stable and instead precomputes, once at
/// construction, everything the old pointer-chasing representation recomputed
/// per query: children as one shared CSR vector with per-node ranges, depths,
/// and a BFS topological order (parents before children, non-decreasing
/// depth). All accessors are allocation-free slices or iterators.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarTree {
    /// `parent[i]` is the parent node of node `i`, or `None` for roots.
    parent: Vec<Option<u32>>,
    /// Scalar value of each node (equal to the element's scalar value).
    scalar: Vec<f64>,
    /// Roots of the forest (nodes with no parent), sorted by node id.
    roots: Vec<u32>,
    /// CSR child arena: children of node `i` are
    /// `child_ids[child_offsets[i] .. child_offsets[i + 1]]`, sorted by id.
    child_offsets: Vec<u32>,
    child_ids: Vec<u32>,
    /// Depth of each node (roots at 0).
    depth: Vec<u32>,
    /// BFS order over the forest: parents before children, non-decreasing
    /// depth. Reversed, it yields children before parents.
    topo: Vec<u32>,
}

impl ScalarTree {
    /// Build the arena from parent pointers and scalar values.
    ///
    /// This is the single constructor used by Algorithms 1 and 3; it computes
    /// roots, the CSR child ranges, depths and the topological order in `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree in length or the parent pointers
    /// contain a cycle or an out-of-bounds node id.
    pub fn from_parents(parent: Vec<Option<u32>>, scalar: Vec<f64>) -> ScalarTree {
        let n = parent.len();
        assert_eq!(n, scalar.len(), "one scalar per tree node");

        let mut child_offsets = vec![0u32; n + 1];
        for p in parent.iter().flatten() {
            let p = *p as usize;
            assert!(p < n, "parent id {p} out of bounds for {n} nodes");
            child_offsets[p + 1] += 1;
        }
        for i in 0..n {
            child_offsets[i + 1] += child_offsets[i];
        }
        let mut cursor = child_offsets.clone();
        let mut child_ids = vec![0u32; child_offsets[n] as usize];
        // Iterating nodes in increasing id keeps every child list sorted.
        for (node, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                child_ids[cursor[*p as usize] as usize] = node as u32;
                cursor[*p as usize] += 1;
            }
        }

        let roots: Vec<u32> =
            parent.iter().enumerate().filter(|(_, p)| p.is_none()).map(|(v, _)| v as u32).collect();

        // BFS from the roots: `topo` is parents-first and sorted by depth.
        let mut depth = vec![0u32; n];
        let mut topo = Vec::with_capacity(n);
        topo.extend_from_slice(&roots);
        let mut head = 0;
        while head < topo.len() {
            let node = topo[head] as usize;
            head += 1;
            let (start, end) = (child_offsets[node] as usize, child_offsets[node + 1] as usize);
            for &c in &child_ids[start..end] {
                depth[c as usize] = depth[node] + 1;
                topo.push(c);
            }
        }
        assert_eq!(topo.len(), n, "parent pointers contain a cycle");

        ScalarTree { parent, scalar, roots, child_offsets, child_ids, depth, topo }
    }

    /// Number of nodes (= number of elements of the underlying scalar graph).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `node`, or `None` for roots.
    #[inline]
    pub fn parent(&self, node: u32) -> Option<u32> {
        self.parent[node as usize]
    }

    /// Parent pointers of all nodes, indexed by node id.
    #[inline]
    pub fn parents(&self) -> &[Option<u32>] {
        &self.parent
    }

    /// Scalar value of `node`.
    #[inline]
    pub fn scalar(&self, node: u32) -> f64 {
        self.scalar[node as usize]
    }

    /// Scalar values of all nodes, indexed by node id.
    #[inline]
    pub fn scalars(&self) -> &[f64] {
        &self.scalar
    }

    /// Roots of the forest, sorted by node id.
    #[inline]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Children of `node`, sorted by id — an allocation-free slice into the
    /// shared child arena.
    #[inline]
    pub fn children(&self, node: u32) -> &[u32] {
        let (start, end) =
            (self.child_offsets[node as usize], self.child_offsets[node as usize + 1]);
        &self.child_ids[start as usize..end as usize]
    }

    /// Depth of `node` (roots have depth 0).
    #[inline]
    pub fn depth(&self, node: u32) -> u32 {
        self.depth[node as usize]
    }

    /// Depth of each node, indexed by node id.
    #[inline]
    pub fn depths(&self) -> &[u32] {
        &self.depth
    }

    /// Node ids in an order where every node appears before its children
    /// (BFS over the forest, non-decreasing depth).
    #[inline]
    pub fn topological_order(&self) -> &[u32] {
        &self.topo
    }

    /// Node ids ordered by decreasing depth (children before parents) — the
    /// reversed precomputed BFS order, so no sorting happens per call.
    #[inline]
    pub fn nodes_by_decreasing_depth(&self) -> impl Iterator<Item = u32> + '_ {
        self.topo.iter().rev().copied()
    }

    /// Verify the defining order invariant: every node's scalar is greater
    /// than or equal to its parent's scalar. Returns the first violating node
    /// if any (used by tests and debug assertions).
    pub fn check_monotone(&self) -> Option<u32> {
        for (node, parent) in self.parent.iter().enumerate() {
            if let Some(p) = parent {
                if self.scalar[node] < self.scalar[*p as usize] {
                    return Some(node as u32);
                }
            }
        }
        None
    }
}

/// Algorithm 1: build the vertex scalar tree of a vertex scalar graph.
pub fn vertex_scalar_tree<G: GraphStorage + ?Sized>(sg: &VertexScalarGraph<'_, G>) -> ScalarTree {
    let graph = sg.graph();
    let n = graph.vertex_count();
    let mut parent: Vec<Option<u32>> = vec![None; n];
    if n == 0 {
        return ScalarTree::from_parents(parent, Vec::new());
    }

    // Line 1: sort vertices in decreasing order of scalar value.
    let order = sg.vertices_by_decreasing_scalar();
    // rank[v] = position of v in the processing order ("index" in the paper:
    // lower rank means processed earlier, i.e. higher scalar).
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }

    // Union–find over vertices; the payload of each set is the node id of the
    // current root of that subtree.
    let mut uf = UnionFind::new(n);

    // Lines 3-6.
    for (i, &vi) in order.iter().enumerate() {
        for vj in graph.neighbor_vertices(vi) {
            // "j < i": the neighbor was processed earlier.
            if rank[vj.index()] >= i {
                continue;
            }
            // "currently n(vi) and n(vj) are not in the same subtree"
            if uf.same_set(vi.index(), vj.index()) {
                continue;
            }
            // Connect n(vi) to root(n(vj)); n(vi) becomes the new root.
            let root_j = uf.payload(vj.index()) as u32;
            parent[root_j as usize] = Some(vi.0);
            uf.union(vi.index(), vj.index());
            uf.set_payload(vi.index(), vi.index());
        }
    }

    let scalar: Vec<f64> = (0..n).map(|v| sg.value(VertexId::from_index(v))).collect();
    let tree = ScalarTree::from_parents(parent, scalar);
    debug_assert!(tree.check_monotone().is_none(), "scalar tree violates monotonicity");
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::tests::paper_figure2_graph;
    use crate::component::{distinct_levels, maximal_alpha_components};
    use crate::scalar_graph::VertexScalarGraph;
    use std::collections::BTreeSet;
    use ugraph::GraphBuilder;

    /// Collect, for each node, the set of vertices in the subtree rooted there.
    fn subtree_sets(tree: &ScalarTree) -> Vec<BTreeSet<u32>> {
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); tree.len()];
        // Children come before parents in decreasing-depth order.
        for v in tree.nodes_by_decreasing_depth() {
            let mut set: BTreeSet<u32> = BTreeSet::new();
            set.insert(v);
            for &c in tree.children(v) {
                let child_set = sets[c as usize].clone();
                set.extend(child_set);
            }
            sets[v as usize] = set;
        }
        sets
    }

    #[test]
    fn single_vertex_and_empty_graph() {
        let g = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        assert!(tree.is_empty());

        let mut b = GraphBuilder::new();
        b.ensure_vertex(0);
        let g = b.build();
        let scalar = vec![7.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.roots(), &[0]);
    }

    #[test]
    fn path_with_decreasing_scalars_is_a_chain() {
        // Path 0-1-2-3 with scalars 4,3,2,1: the tree must be the chain
        // 0 -> 1 -> 2 -> 3 with 3 as root (every node's parent has lower scalar).
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let scalar = vec![4.0, 3.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        assert_eq!(tree.parent(0), Some(1));
        assert_eq!(tree.parent(1), Some(2));
        assert_eq!(tree.parent(2), Some(3));
        assert_eq!(tree.parent(3), None);
        assert_eq!(tree.roots(), &[3]);
        assert_eq!(tree.depths(), &[3, 2, 1, 0]);
        assert!(tree.check_monotone().is_none());
    }

    #[test]
    fn merge_point_gets_two_children() {
        // Two peaks joined at a valley: 0(5) - 2(1) - 1(4).
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 2u32), (1, 2)]);
        let g = b.build();
        let scalar = vec![5.0, 4.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        assert_eq!(tree.parent(0), Some(2));
        assert_eq!(tree.parent(1), Some(2));
        assert_eq!(tree.parent(2), None);
        assert_eq!(tree.children(2), &[0, 1]);
    }

    #[test]
    fn arena_accessors_agree_with_parent_pointers() {
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        // children() inverts parent().
        for node in 0..tree.len() as u32 {
            for &c in tree.children(node) {
                assert_eq!(tree.parent(c), Some(node));
            }
            if let Some(p) = tree.parent(node) {
                assert!(tree.children(p).contains(&node));
                assert_eq!(tree.depth(node), tree.depth(p) + 1);
            } else {
                assert_eq!(tree.depth(node), 0);
                assert!(tree.roots().contains(&node));
            }
        }
        // The topological order visits parents before children and the
        // decreasing-depth iterator is its exact reverse.
        let topo = tree.topological_order();
        assert_eq!(topo.len(), tree.len());
        let mut seen = vec![false; tree.len()];
        for &node in topo {
            if let Some(p) = tree.parent(node) {
                assert!(seen[p as usize], "parent of {node} not yet visited");
            }
            seen[node as usize] = true;
        }
        let rev: Vec<u32> = tree.nodes_by_decreasing_depth().collect();
        let mut expected: Vec<u32> = topo.to_vec();
        expected.reverse();
        assert_eq!(rev, expected);
        for w in rev.windows(2) {
            assert!(tree.depth(w[0]) >= tree.depth(w[1]));
        }
    }

    #[test]
    fn proposition1_subtrees_are_mccs_for_distinct_scalars() {
        // Figure 2 graph has distinct-ish scalars except v1=v2=v4=3; perturb
        // them slightly so all scalars are distinct, then every subtree rooted
        // at n(v) must equal MCC(v).
        let (graph, mut scalar) = paper_figure2_graph();
        scalar[0] = 3.01;
        scalar[1] = 3.02;
        scalar[3] = 3.03;
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        let sets = subtree_sets(&tree);
        for v in graph.vertices() {
            let alpha = sg.value(v);
            let comps = maximal_alpha_components(&sg, alpha);
            let mcc = comps.iter().find(|c| c.vertices.contains(&v)).expect("MCC(v) exists");
            let expected: BTreeSet<u32> = mcc.vertices.iter().map(|x| x.0).collect();
            assert_eq!(
                sets[v.index()],
                expected,
                "subtree rooted at n({v:?}) must equal MCC({v:?})"
            );
        }
    }

    #[test]
    fn forest_handles_disconnected_graphs() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let scalar = vec![2.0, 1.0, 4.0, 3.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        assert_eq!(tree.roots().len(), 2);
        assert!(tree.check_monotone().is_none());
    }

    #[test]
    fn cut_at_every_level_matches_direct_components_on_figure2() {
        // Even with duplicate scalar values, cutting the raw Algorithm-1 tree
        // at a level α and grouping connected tree nodes above the cut must
        // reproduce the *vertex sets* of the maximal α-connected components.
        // (The subtree/rooting structure needs Algorithm 2; the partition into
        // components does not.)
        let (graph, scalar) = paper_figure2_graph();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = vertex_scalar_tree(&sg);
        for &alpha in &distinct_levels(&scalar) {
            // Partition nodes with scalar >= alpha by tree connectivity.
            let mut uf = ugraph::UnionFind::new(tree.len());
            for node in 0..tree.len() as u32 {
                if tree.scalar(node) < alpha {
                    continue;
                }
                if let Some(p) = tree.parent(node) {
                    if tree.scalar(p) >= alpha {
                        uf.union(node as usize, p as usize);
                    }
                }
            }
            let mut groups: std::collections::BTreeMap<usize, BTreeSet<u32>> = Default::default();
            for node in 0..tree.len() as u32 {
                if tree.scalar(node) >= alpha {
                    groups.entry(uf.find(node as usize)).or_default().insert(node);
                }
            }
            let from_tree: BTreeSet<BTreeSet<u32>> = groups.into_values().collect();
            let from_direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_components(&sg, alpha)
                .into_iter()
                .map(|c| c.vertices.into_iter().map(|v| v.0).collect())
                .collect();
            assert_eq!(from_tree, from_direct, "alpha = {alpha}");
        }
    }
}
