//! `MCC` queries and α cross-sections over super scalar trees.
//!
//! * `MCC(v)` (Definition 2) — the maximal `v.scalar`-connected component
//!   containing `v` — is, by Proposition 2, the subtree of the super tree
//!   rooted at the super node that contains `v`.
//! * "Draw a line at height α across the tree" (Section II-B) — every subtree
//!   hanging above the line is one maximal α-connected component; this is the
//!   [`components_at_alpha`] cross-section, and it is also exactly the peak
//!   decomposition the terrain shows at height α.

use crate::super_tree::SuperScalarTree;

/// The result of cutting a super scalar tree at a height α.
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaCut {
    /// The cut height.
    pub alpha: f64,
    /// For each maximal α-connected component: the super node that roots its
    /// subtree.
    pub component_roots: Vec<u32>,
}

impl AlphaCut {
    /// Number of maximal α-connected components at this level.
    pub fn component_count(&self) -> usize {
        self.component_roots.len()
    }
}

/// The super-tree subtree root corresponding to `MCC(element)`.
///
/// `element` is a vertex id for vertex scalar trees or an edge id for edge
/// scalar trees. By Proposition 2 the subtree rooted at the returned super
/// node spans exactly the maximal `scalar(element)`-connected component
/// containing the element.
pub fn mcc_of_element(tree: &SuperScalarTree, element: u32) -> u32 {
    tree.node_of(element)
}

/// All members (vertex or edge ids) of `MCC(element)`.
pub fn mcc_members(tree: &SuperScalarTree, element: u32) -> Vec<u32> {
    tree.subtree_members(mcc_of_element(tree, element))
}

/// Cut the super tree at height `alpha`: return one subtree root per maximal
/// α-connected component (Section II-B / Definition 6's `peakα`s).
///
/// A super node roots a component when its scalar is `>= alpha` but its
/// parent's scalar (if any) is `< alpha`.
pub fn components_at_alpha(tree: &SuperScalarTree, alpha: f64) -> AlphaCut {
    let mut component_roots = Vec::new();
    for id in 0..tree.node_count() as u32 {
        if tree.scalar(id) < alpha {
            continue;
        }
        let parent_below = match tree.parent(id) {
            None => true,
            Some(p) => tree.scalar(p) < alpha,
        };
        if parent_below {
            component_roots.push(id);
        }
    }
    AlphaCut { alpha, component_roots }
}

/// Convenience: the members of every maximal α-connected component at `alpha`,
/// sorted by component root id.
pub fn component_members_at_alpha(tree: &SuperScalarTree, alpha: f64) -> Vec<Vec<u32>> {
    components_at_alpha(tree, alpha)
        .component_roots
        .iter()
        .map(|&root| tree.subtree_members(root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{distinct_levels, maximal_alpha_components};
    use crate::scalar_graph::VertexScalarGraph;
    use crate::super_tree::build_super_tree;
    use crate::vertex_tree::vertex_scalar_tree;
    use std::collections::BTreeSet;
    use ugraph::GraphBuilder;

    fn figure2() -> (ugraph::CsrGraph, Vec<f64>) {
        // Same structure as component::tests::paper_figure2_graph (kept local
        // because that helper is private to its module's test build).
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (0, 2), (1, 4), (2, 4)]);
        b.add_edge(3, 5);
        b.extend_edges([(2u32, 6u32), (5, 6)]);
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        (b.build(), vec![3.0, 3.0, 4.0, 3.0, 5.0, 4.0, 2.0, 1.5, 1.0])
    }

    #[test]
    fn cut_components_match_direct_extraction_at_every_level() {
        let (graph, scalar) = figure2();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for &alpha in &distinct_levels(&scalar) {
            let from_tree: BTreeSet<BTreeSet<u32>> = component_members_at_alpha(&st, alpha)
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect();
            let direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_components(&sg, alpha)
                .into_iter()
                .map(|c| c.vertices.into_iter().map(|v| v.0).collect())
                .collect();
            assert_eq!(from_tree, direct, "alpha {alpha}");
        }
    }

    #[test]
    fn figure2_alpha_cut_counts() {
        let (graph, scalar) = figure2();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_eq!(components_at_alpha(&st, 2.5).component_count(), 2);
        assert_eq!(components_at_alpha(&st, 2.0).component_count(), 1);
        assert_eq!(components_at_alpha(&st, 5.0).component_count(), 1);
        assert_eq!(components_at_alpha(&st, 5.5).component_count(), 0);
        assert_eq!(components_at_alpha(&st, 1.0).component_count(), 1);
    }

    #[test]
    fn theorem1_mcc_of_minimum_vertex_spans_component() {
        // For every maximal α-connected component (at every level), MCC of its
        // minimum-scalar vertex is the component itself (Theorem 1).
        let (graph, scalar) = figure2();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for &alpha in &distinct_levels(&scalar) {
            for comp in maximal_alpha_components(&sg, alpha) {
                let min_vertex = *comp
                    .vertices
                    .iter()
                    .min_by(|a, b| sg.value(**a).total_cmp(&sg.value(**b)))
                    .unwrap();
                let mcc: BTreeSet<u32> = mcc_members(&st, min_vertex.0).into_iter().collect();
                let expected: BTreeSet<u32> = comp.vertices.iter().map(|v| v.0).collect();
                assert_eq!(mcc, expected, "alpha {alpha}, min vertex {min_vertex:?}");
            }
        }
    }

    #[test]
    fn theorem2_equal_scalar_vertices_share_mcc() {
        let (graph, scalar) = figure2();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for u in graph.vertices() {
            for v in graph.vertices() {
                if u == v || sg.value(u) != sg.value(v) {
                    continue;
                }
                let mcc_u = mcc_members(&st, u.0);
                if mcc_u.contains(&v.0) {
                    assert_eq!(mcc_u, mcc_members(&st, v.0), "{u:?} vs {v:?}");
                }
            }
        }
    }

    #[test]
    fn theorem3_touching_components_nest() {
        // Any two component subtrees from different levels either nest or are
        // disjoint (Theorem 3: connected implies containment).
        let (graph, scalar) = figure2();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let levels = distinct_levels(&scalar);
        let mut all: Vec<BTreeSet<u32>> = Vec::new();
        for &alpha in &levels {
            for members in component_members_at_alpha(&st, alpha) {
                all.push(members.into_iter().collect());
            }
        }
        for a in &all {
            for b in &all {
                let intersects = a.intersection(b).next().is_some();
                if intersects {
                    assert!(
                        a.is_subset(b) || b.is_subset(a),
                        "components intersect without nesting: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
