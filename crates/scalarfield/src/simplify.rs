//! Scalar-tree simplification by scalar discretization (Section II-E,
//! "Simplification").
//!
//! Large graphs produce super trees with too many nodes to render and interact
//! with smoothly. The paper's remedy is to discretize the scalar values so
//! that similar values become equal, then re-run the Algorithm-2 merge: the
//! result is an *approximate* super tree with far fewer nodes. This module
//! implements that operation directly on a [`SuperScalarTree`], so it can be
//! applied after construction without touching the original scalar field.

use crate::super_tree::SuperScalarTree;
use ugraph::{GraphError, Result};

/// Fallible variant of [`simplify_super_tree`]: returns
/// [`GraphError::InvalidConfig`] when `levels` is zero instead of panicking.
/// This is the stage entry used by `graph-terrain`'s `TerrainPipeline`.
pub fn try_simplify_super_tree(tree: &SuperScalarTree, levels: usize) -> Result<SuperScalarTree> {
    if levels == 0 {
        return Err(GraphError::InvalidConfig {
            what: "simplification levels",
            message: "need at least one discretization level".into(),
        });
    }
    Ok(simplify_super_tree(tree, levels))
}

/// Simplify a super tree by snapping super-node scalars to `levels` evenly
/// spaced values between the tree's minimum and maximum scalar and re-merging
/// parent/child chains whose snapped values coincide.
///
/// `levels` must be at least 1 (panics otherwise; see
/// [`try_simplify_super_tree`] for the non-panicking variant). Using more
/// levels than there are distinct scalar values leaves the tree unchanged.
/// The members of merged nodes are concatenated, so
/// [`SuperScalarTree::total_members`] is preserved.
pub fn simplify_super_tree(tree: &SuperScalarTree, levels: usize) -> SuperScalarTree {
    assert!(levels >= 1, "need at least one discretization level");
    if tree.node_count() == 0 {
        return tree.clone();
    }
    let min = tree.scalars().iter().copied().fold(f64::INFINITY, f64::min);
    let max = tree.scalars().iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let snap = |value: f64| -> f64 {
        if max > min && levels > 1 {
            let t = (value - min) / (max - min);
            let bucket = (t * (levels - 1) as f64).round();
            min + (max - min) * bucket / (levels - 1) as f64
        } else {
            min
        }
    };

    // Phase 1: assign every old node to a new (merged) group. Walk each root's
    // subtree; a child whose snapped scalar equals its parent's group scalar
    // joins the parent's group, otherwise it starts a new group. Groups are
    // created parents-first, which `from_parts` renumbers into DFS pre-order.
    let old_count = tree.node_count();
    let mut group_of = vec![u32::MAX; old_count];
    // (snapped scalar, parent group) in creation order.
    let mut groups: Vec<(f64, Option<u32>)> = Vec::new();
    let mut stack: Vec<(u32, Option<u32>)> = Vec::new(); // (old node, parent group)
    for &root in tree.roots() {
        stack.push((root, None));
    }
    while let Some((old, parent_group)) = stack.pop() {
        let snapped = snap(tree.scalar(old));
        let group = match parent_group {
            Some(pg) if groups[pg as usize].0 == snapped => pg,
            _ => {
                groups.push((snapped, parent_group));
                (groups.len() - 1) as u32
            }
        };
        group_of[old as usize] = group;
        for &child in tree.children(old) {
            stack.push((child, Some(group)));
        }
    }

    // Phase 2: scatter the members into one flat arena grouped by new group
    // (counting sort keyed on group id; `from_parts` sorts within each group).
    let group_count = groups.len();
    let mut member_offsets = vec![0u32; group_count + 1];
    for (old, &group) in group_of.iter().enumerate() {
        member_offsets[group as usize + 1] += tree.members(old as u32).len() as u32;
    }
    for g in 0..group_count {
        member_offsets[g + 1] += member_offsets[g];
    }
    let mut cursor: Vec<u32> = member_offsets[..group_count].to_vec();
    let mut member_ids = vec![0u32; member_offsets[group_count] as usize];
    for (old, &group) in group_of.iter().enumerate() {
        for &m in tree.members(old as u32) {
            member_ids[cursor[group as usize] as usize] = m;
            cursor[group as usize] += 1;
        }
    }

    let (scalar, parent): (Vec<f64>, Vec<Option<u32>>) = groups.into_iter().unzip();
    let result = SuperScalarTree::from_parts(
        scalar,
        parent,
        member_offsets,
        member_ids,
        tree.element_count(),
    );
    debug_assert_eq!(result.check_invariants(), Ok(()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_graph::VertexScalarGraph;
    use crate::super_tree::build_super_tree;
    use crate::vertex_tree::vertex_scalar_tree;
    use ugraph::generators::barabasi_albert;
    use ugraph::GraphBuilder;

    fn chain_tree() -> SuperScalarTree {
        // Path 0-1-2-3-4 with scalars 5,4,3,2,1 -> a chain of 5 super nodes.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
        let g = b.build();
        let scalar = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    #[test]
    fn two_levels_collapse_chain_to_two_nodes() {
        let st = chain_tree();
        assert_eq!(st.node_count(), 5);
        let simplified = simplify_super_tree(&st, 2);
        assert_eq!(simplified.node_count(), 2);
        assert_eq!(simplified.total_members(), 5);
        simplified.check_invariants().unwrap();
    }

    #[test]
    fn one_level_collapses_everything() {
        let st = chain_tree();
        let simplified = simplify_super_tree(&st, 1);
        assert_eq!(simplified.node_count(), 1);
        assert_eq!(simplified.total_members(), 5);
    }

    #[test]
    fn many_levels_preserve_tree() {
        let st = chain_tree();
        let simplified = simplify_super_tree(&st, 50);
        assert_eq!(simplified.node_count(), st.node_count());
        assert_eq!(simplified.total_members(), st.total_members());
    }

    #[test]
    fn member_count_is_always_preserved_and_nodes_shrink() {
        let g = barabasi_albert(300, 3, 7);
        let cores = measures::core_numbers(&g);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for levels in [64usize, 16, 4, 2, 1] {
            let s = simplify_super_tree(&st, levels);
            s.check_invariants().unwrap();
            assert_eq!(s.total_members(), g.vertex_count());
            assert!(s.node_count() <= st.node_count(), "simplification never grows the tree");
        }
        // The coarsest simplification collapses each root's subtree entirely.
        let coarsest = simplify_super_tree(&st, 1);
        assert_eq!(coarsest.node_count(), st.roots().len());
    }

    #[test]
    fn zero_levels_error_instead_of_panicking() {
        let st = chain_tree();
        let err = try_simplify_super_tree(&st, 0).unwrap_err();
        assert!(matches!(err, ugraph::GraphError::InvalidConfig { .. }), "{err:?}");
        // And the fallible path agrees with the panicking one on valid input.
        let a = try_simplify_super_tree(&st, 2).unwrap();
        let b = simplify_super_tree(&st, 2);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.scalars(), b.scalars());
    }

    #[test]
    fn empty_tree_is_unchanged() {
        let g = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let s = simplify_super_tree(&st, 4);
        assert_eq!(s.node_count(), 0);
    }
}
