//! Property-based tests for the scalar-tree pipeline.
//!
//! These exercise the paper's theorems on randomly generated scalar graphs:
//! for arbitrary graphs and scalar fields (with plenty of duplicate values),
//! the super scalar tree built by Algorithms 1–3 must describe exactly the
//! maximal α-(edge-)connected components the direct extraction finds, at every
//! distinct scalar level.

use proptest::prelude::*;
use scalarfield::{
    build_super_tree, component_members_at_alpha, components_at_alpha, edge_scalar_tree,
    edge_scalar_tree_naive, maximal_alpha_components, maximal_alpha_edge_components,
    mcc_of_element, simplify_super_tree, vertex_scalar_tree, EdgeScalarGraph, SuperScalarTree,
    VertexScalarGraph,
};
use std::collections::BTreeSet;
use ugraph::{CsrGraph, GraphBuilder};

/// Naive recursive oracle for the arena accessors: collect the members of the
/// subtree rooted at `node` by walking children lists, no arena tricks.
fn oracle_subtree_members(tree: &SuperScalarTree, node: u32, out: &mut Vec<u32>) {
    out.extend_from_slice(tree.members(node));
    for &c in tree.children(node) {
        oracle_subtree_members(tree, c, out);
    }
}

/// Oracle depth: count parent hops to the root.
fn oracle_depth(tree: &SuperScalarTree, node: u32) -> u32 {
    let mut depth = 0;
    let mut cur = node;
    while let Some(p) = tree.parent(cur) {
        depth += 1;
        cur = p;
    }
    depth
}

/// The arena accessors must agree with the naive recursive oracle on every
/// node: `subtree_members` / `subtree_member_count(s)` / `depths`.
fn assert_arena_roundtrip(tree: &SuperScalarTree) {
    tree.check_invariants().unwrap();
    let by_depth: Vec<u32> = tree.nodes_by_decreasing_depth().collect();
    assert_eq!(by_depth.len(), tree.node_count());
    for w in by_depth.windows(2) {
        assert!(tree.depth(w[0]) >= tree.depth(w[1]), "decreasing-depth order violated");
    }
    let counts = tree.subtree_member_counts();
    for node in 0..tree.node_count() as u32 {
        let mut expected = Vec::new();
        oracle_subtree_members(tree, node, &mut expected);
        expected.sort_unstable();
        assert_eq!(tree.subtree_members(node), expected, "subtree_members({node})");
        assert_eq!(tree.subtree_member_count(node), expected.len());
        assert_eq!(counts[node as usize], expected.len());
        let mut slice = tree.subtree_member_slice(node).to_vec();
        slice.sort_unstable();
        assert_eq!(slice, expected, "subtree_member_slice({node})");
        assert_eq!(tree.depths()[node as usize], oracle_depth(tree, node));
    }
}

/// Strategy: a random simple graph with up to `max_n` vertices plus a scalar
/// value per vertex drawn from a small integer set (to force duplicates).
fn graph_and_vertex_scalars(max_n: usize) -> impl Strategy<Value = (CsrGraph, Vec<f64>)> {
    (2usize..max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
            let scalars = proptest::collection::vec(0u8..6, n);
            (Just(n), edges, scalars)
        })
        .prop_map(|(n, edges, scalars)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            (b.build(), scalars.into_iter().map(|s| s as f64).collect())
        })
}

/// Strategy: a random graph plus a scalar per edge.
fn graph_and_edge_scalars(max_n: usize) -> impl Strategy<Value = (CsrGraph, Vec<f64>)> {
    (2usize..max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..(3 * n));
            (Just(n), edges, proptest::collection::vec(0u8..5, 3 * n))
        })
        .prop_map(|(n, edges, raw_scalars)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            let g = b.build();
            let scalars = raw_scalars
                .into_iter()
                .take(g.edge_count())
                .chain(std::iter::repeat(0))
                .take(g.edge_count())
                .map(|s| s as f64)
                .collect();
            (g, scalars)
        })
}

fn distinct_levels(values: &[f64]) -> Vec<f64> {
    let mut levels = values.to_vec();
    levels.sort_by(f64::total_cmp);
    levels.dedup();
    levels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 2 of the scalar tree: at every level α, the subtrees above the
    /// cut are exactly the maximal α-connected components.
    #[test]
    fn vertex_super_tree_matches_direct_components((graph, scalar) in graph_and_vertex_scalars(24)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        st.check_invariants().unwrap();
        prop_assert_eq!(st.total_members(), graph.vertex_count());
        for alpha in distinct_levels(&scalar) {
            let from_tree: BTreeSet<BTreeSet<u32>> = component_members_at_alpha(&st, alpha)
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect();
            let direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_components(&sg, alpha)
                .into_iter()
                .map(|c| c.vertices.into_iter().map(|v| v.0).collect())
                .collect();
            prop_assert_eq!(from_tree, direct, "alpha {}", alpha);
        }
    }

    /// Theorem 1 + Proposition 2: MCC(v) read from the super tree equals the
    /// directly extracted maximal v.scalar-connected component containing v.
    #[test]
    fn mcc_queries_match_direct_extraction((graph, scalar) in graph_and_vertex_scalars(20)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for v in graph.vertices() {
            let node = mcc_of_element(&st, v.0);
            let from_tree: BTreeSet<u32> = st.subtree_members(node).into_iter().collect();
            let comps = maximal_alpha_components(&sg, scalar[v.index()]);
            let direct: BTreeSet<u32> = comps
                .iter()
                .find(|c| c.vertices.contains(&v))
                .unwrap()
                .vertices
                .iter()
                .map(|x| x.0)
                .collect();
            prop_assert_eq!(from_tree, direct);
        }
    }

    /// Theorem 3 via the tree: components from any two levels either nest or
    /// are disjoint.
    #[test]
    fn components_nest_across_levels((graph, scalar) in graph_and_vertex_scalars(18)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        let mut all: Vec<BTreeSet<u32>> = Vec::new();
        for alpha in distinct_levels(&scalar) {
            for members in component_members_at_alpha(&st, alpha) {
                all.push(members.into_iter().collect());
            }
        }
        for a in &all {
            for b in &all {
                if a.intersection(b).next().is_some() {
                    prop_assert!(a.is_subset(b) || b.is_subset(a));
                }
            }
        }
    }

    /// The flat arena round-trips: for random vertex and edge scalar graphs,
    /// `subtree_member_counts`, `depths` and `subtree_members` read off the
    /// arena agree with a naive recursive oracle walking children lists, and
    /// the (tightened) structural invariants hold.
    #[test]
    fn arena_accessors_match_recursive_oracle((graph, scalar) in graph_and_vertex_scalars(24)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        assert_arena_roundtrip(&st);
        // Simplified trees come from the second arena producer; they must
        // round-trip just as well.
        for levels in [2usize, 5] {
            assert_arena_roundtrip(&simplify_super_tree(&st, levels));
        }
    }

    /// Same round-trip on edge scalar trees (Algorithm 3's output feeds the
    /// identical super-tree arena).
    #[test]
    fn edge_arena_accessors_match_recursive_oracle((graph, scalar) in graph_and_edge_scalars(16)) {
        let sg = EdgeScalarGraph::new(&graph, &scalar).unwrap();
        assert_arena_roundtrip(&build_super_tree(&edge_scalar_tree(&sg)));
    }

    /// Algorithm 3 and the naive dual-graph method describe the same component
    /// hierarchy, and both match the direct edge-component extraction.
    #[test]
    fn edge_tree_fast_and_naive_agree((graph, scalar) in graph_and_edge_scalars(16)) {
        let sg = EdgeScalarGraph::new(&graph, &scalar).unwrap();
        let fast = build_super_tree(&edge_scalar_tree(&sg));
        let naive = build_super_tree(&edge_scalar_tree_naive(&sg));
        fast.check_invariants().unwrap();
        naive.check_invariants().unwrap();
        prop_assert_eq!(fast.node_count(), naive.node_count());
        for alpha in distinct_levels(&scalar) {
            let from_fast: BTreeSet<BTreeSet<u32>> = component_members_at_alpha(&fast, alpha)
                .into_iter().map(|m| m.into_iter().collect()).collect();
            let from_naive: BTreeSet<BTreeSet<u32>> = component_members_at_alpha(&naive, alpha)
                .into_iter().map(|m| m.into_iter().collect()).collect();
            let direct: BTreeSet<BTreeSet<u32>> = maximal_alpha_edge_components(&sg, alpha)
                .into_iter()
                .map(|c| c.edges.into_iter().map(|e| e.0).collect())
                .collect();
            prop_assert_eq!(&from_fast, &direct, "fast vs direct at alpha {}", alpha);
            prop_assert_eq!(&from_naive, &direct, "naive vs direct at alpha {}", alpha);
        }
    }

    /// Simplification preserves membership, never grows the tree, and at its
    /// own (snapped) scalar levels still yields a valid nested hierarchy whose
    /// component count never exceeds the number of elements.
    #[test]
    fn simplification_is_conservative((graph, scalar) in graph_and_vertex_scalars(20)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let st = build_super_tree(&vertex_scalar_tree(&sg));
        for levels in [1usize, 2, 3, 8] {
            let s = simplify_super_tree(&st, levels);
            s.check_invariants().unwrap();
            prop_assert_eq!(s.total_members(), st.total_members());
            prop_assert!(s.node_count() <= st.node_count());
            // Cut the simplified tree at each of its own node scalars: the cut
            // must partition a subset of the elements into disjoint groups.
            let snapped_levels: Vec<f64> = distinct_levels(s.scalars());
            for alpha in snapped_levels {
                let cut = components_at_alpha(&s, alpha);
                prop_assert!(cut.component_count() <= graph.vertex_count());
                let mut seen = std::collections::BTreeSet::new();
                for root in &cut.component_roots {
                    for m in s.subtree_members(*root) {
                        prop_assert!(seen.insert(m), "element {} in two components", m);
                    }
                }
            }
        }
    }

    /// K-Core scalar fields: Proposition 4 — every maximal α-connected
    /// component under the KC(v) field is a K-Core with K = α.
    #[test]
    fn proposition4_alpha_components_are_kcores((graph, _) in graph_and_vertex_scalars(22)) {
        let cores = measures::core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        for alpha in distinct_levels(&scalar) {
            for comp in maximal_alpha_components(&sg, alpha) {
                // Within the component, every vertex must have >= alpha
                // neighbors inside the component.
                let members: BTreeSet<u32> = comp.vertices.iter().map(|v| v.0).collect();
                for &v in &comp.vertices {
                    let inside = graph
                        .neighbor_vertices(v)
                        .filter(|u| members.contains(&u.0))
                        .count();
                    prop_assert!(
                        inside as f64 >= alpha,
                        "vertex {:?} has {} neighbors in its alpha={} component",
                        v, inside, alpha
                    );
                }
            }
        }
    }
}
