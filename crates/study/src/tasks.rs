//! Task and tool definitions of the user study (Section IV-A).

use std::fmt;

/// The three tasks of the user study.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// Task 1: identify the densest K-Core in the graph.
    DensestKCore,
    /// Task 2: identify the densest K-Core that is *not connected* to the
    /// densest one.
    SecondDisconnectedKCore,
    /// Task 3: decide whether betweenness and degree centrality are positively
    /// or negatively correlated.
    CentralityCorrelation,
}

impl Task {
    /// All tasks in paper order.
    pub fn all() -> [Task; 3] {
        [Task::DensestKCore, Task::SecondDisconnectedKCore, Task::CentralityCorrelation]
    }

    /// The paper's task number (1-based).
    pub fn number(&self) -> usize {
        match self {
            Task::DensestKCore => 1,
            Task::SecondDisconnectedKCore => 2,
            Task::CentralityCorrelation => 3,
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Task::DensestKCore => write!(f, "Task 1: densest K-Core"),
            Task::SecondDisconnectedKCore => write!(f, "Task 2: second disconnected K-Core"),
            Task::CentralityCorrelation => write!(f, "Task 3: centrality correlation"),
        }
    }
}

/// The visualization tools compared in the study.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Tool {
    /// The paper's terrain visualization.
    Terrain,
    /// LaNet-vi-style K-Core shell plot.
    LanetVi,
    /// OpenOrd-style multilevel layout.
    OpenOrd,
}

impl Tool {
    /// The tools compared for a given task (Task 3 omits LaNet-vi, exactly as
    /// the paper does, because it cannot display two centralities).
    pub fn for_task(task: Task) -> Vec<Tool> {
        match task {
            Task::CentralityCorrelation => vec![Tool::Terrain, Tool::OpenOrd],
            _ => vec![Tool::Terrain, Tool::LanetVi, Tool::OpenOrd],
        }
    }
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tool::Terrain => write!(f, "Terrain"),
            Tool::LanetVi => write!(f, "LaNet-vi"),
            Tool::OpenOrd => write!(f, "OpenOrd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_numbers_and_display() {
        assert_eq!(Task::DensestKCore.number(), 1);
        assert_eq!(Task::CentralityCorrelation.number(), 3);
        assert_eq!(Task::all().len(), 3);
        assert!(Task::SecondDisconnectedKCore.to_string().contains("Task 2"));
    }

    #[test]
    fn task3_excludes_lanet_vi() {
        assert_eq!(Tool::for_task(Task::DensestKCore).len(), 3);
        let t3 = Tool::for_task(Task::CentralityCorrelation);
        assert_eq!(t3.len(), 2);
        assert!(!t3.contains(&Tool::LanetVi));
    }
}
