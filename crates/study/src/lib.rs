//! # study — simulated user study (Section IV, Tables IV–VI)
//!
//! The paper evaluates the terrain visualization with an IRB-approved human
//! study: ten participants per task identify (1) the densest K-Core, (2) the
//! densest K-Core disconnected from the densest one, and (3) the sign of the
//! correlation between two centralities, using the terrain, LaNet-vi and
//! OpenOrd. We cannot run human subjects, so — per the substitution rule in
//! DESIGN.md §4 — this crate replaces the participants with a simple
//! perceptual model while keeping the *task structure* identical:
//!
//! 1. [`metrics`] reduces each (visualization, task, dataset) combination to a
//!    **saliency score** in `[0, 1]` measuring how visually identifiable the
//!    task's target is in that picture, using only quantities the real
//!    rendering exposes (peak height ratios and footprint areas for the
//!    terrain; shell radius and blob size for LaNet-vi; occlusion and color
//!    resolution for OpenOrd);
//! 2. [`simulated_user`] turns saliency into per-participant accuracy and
//!    completion time with a noisy threshold model;
//! 3. [`report`] runs the full factorial design (tool × dataset × 10
//!    participants) and emits the rows of Tables IV, V and VI.
//!
//! The absolute seconds are calibrated to the ranges the paper reports; the
//! claims that are expected to *reproduce* are ordinal (terrain at least as
//! accurate, terrain faster, Task 2 hardest for the baselines).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod report;
pub mod simulated_user;
pub mod tasks;

pub use metrics::{lanet_saliency, openord_saliency, terrain_saliency, SaliencyInputs};
pub use report::{run_user_study, StudyConfig, StudyResultRow};
pub use simulated_user::{simulate_participants, ParticipantModel, TrialOutcome};
pub use tasks::{Task, Tool};
