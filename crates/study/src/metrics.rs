//! Per-visualization saliency models.
//!
//! Every (tool, task, dataset) combination is reduced to a **saliency score**
//! in `[0, 1]`: how visually identifiable the task's target is in that tool's
//! picture. The inputs are quantities the real renderings expose — peak
//! geometry for the terrain, shell/blob sizes for LaNet-vi, occlusion for the
//! node-link layouts — so the scores respond to the dataset exactly the way
//! the paper's qualitative discussion describes (e.g. "the densest K-Core in
//! these two visualizations are small and not obvious", Section IV-B).

use crate::tasks::Task;
use baselines::{lanet_layout, openord_layout, OpenOrdConfig};
use measures::{betweenness_centrality_sampled_with, core_numbers, degrees};
use scalarfield::{
    build_super_tree, global_correlation_index, vertex_scalar_tree, VertexScalarGraph,
};
use terrain::{highest_peaks, layout_super_tree, LayoutConfig};
use ugraph::par::Parallelism;
use ugraph::CsrGraph;

/// Dataset-level quantities the saliency models consume.
#[derive(Clone, Debug)]
pub struct SaliencyInputs {
    /// Number of vertices.
    pub vertex_count: usize,
    /// Degeneracy (the densest K value).
    pub degeneracy: usize,
    /// Number of vertices in the densest K-Core.
    pub densest_core_size: usize,
    /// K value of the densest K-Core disconnected from the densest one
    /// (0 when no such core exists).
    pub second_core_k: f64,
    /// Size of that disconnected core.
    pub second_core_size: usize,
    /// Footprint area fraction of the tallest terrain peak (0..1 of the
    /// layout domain).
    pub tallest_peak_area_fraction: f64,
    /// Footprint area fraction of the second disconnected peak.
    pub second_peak_area_fraction: f64,
    /// Global correlation index between degree and betweenness centrality.
    pub degree_betweenness_gci: f64,
    /// Node occlusion fraction of the LaNet-vi layout.
    pub lanet_occlusion: f64,
    /// Node occlusion fraction of the OpenOrd layout.
    pub openord_occlusion: f64,
}

impl SaliencyInputs {
    /// Compute the inputs for a dataset. Single-threaded; see
    /// [`SaliencyInputs::compute_with`].
    ///
    /// `betweenness_samples` bounds the cost of the exact Brandes pass on
    /// larger graphs (the study datasets are a few thousand vertices).
    pub fn compute(graph: &CsrGraph, betweenness_samples: usize, seed: u64) -> SaliencyInputs {
        SaliencyInputs::compute_with(graph, betweenness_samples, seed, Parallelism::Serial)
    }

    /// [`SaliencyInputs::compute`] with a thread budget for the betweenness
    /// pass behind the Task-3 correlation input.
    ///
    /// The inputs — and therefore every downstream study row — are identical
    /// for every `parallelism` setting.
    pub fn compute_with(
        graph: &CsrGraph,
        betweenness_samples: usize,
        seed: u64,
        parallelism: Parallelism,
    ) -> SaliencyInputs {
        let n = graph.vertex_count().max(1);
        let cores = core_numbers(graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(graph, &scalar).expect("core field matches graph");
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let domain_area = layout.config.width * layout.config.height;

        // Terrain peaks: the tallest, and the tallest disjoint from it.
        let peaks = highest_peaks(&tree, &layout, 32);
        let (tallest_area, second_k, second_size, second_area) = match peaks.first() {
            None => (0.0, 0.0, 0, 0.0),
            Some(first) => {
                let first_members: std::collections::BTreeSet<u32> =
                    first.members.iter().copied().collect();
                let disjoint = peaks
                    .iter()
                    .skip(1)
                    .find(|p| p.members.iter().all(|m| !first_members.contains(m)));
                match disjoint {
                    Some(p) => (
                        first.base_area() / domain_area,
                        p.summit_height,
                        p.member_count,
                        p.base_area() / domain_area,
                    ),
                    None => (first.base_area() / domain_area, 0.0, 0, 0.0),
                }
            }
        };

        let densest_core_size = cores.densest_core_vertices().len();

        // Degree vs betweenness correlation (Task 3).
        let degree_field: Vec<f64> = degrees(graph).iter().map(|&d| d as f64).collect();
        let betweenness =
            betweenness_centrality_sampled_with(graph, betweenness_samples, seed, parallelism);
        let gci = global_correlation_index(graph, &degree_field, &betweenness, 1).unwrap_or(0.0);

        // Node-link occlusion. The perceptual radius is a couple of pixels on
        // a ~600px canvas, i.e. ~0.004 of the unit layout.
        let lanet = lanet_layout(graph, seed);
        let openord = openord_layout(
            graph,
            &OpenOrdConfig { seed, refine_iterations: 15, ..Default::default() },
        );
        let radius = 0.004;
        SaliencyInputs {
            vertex_count: n,
            degeneracy: cores.degeneracy,
            densest_core_size,
            second_core_k: second_k,
            second_core_size: second_size,
            tallest_peak_area_fraction: tallest_area,
            second_peak_area_fraction: second_area,
            degree_betweenness_gci: gci,
            lanet_occlusion: lanet.layout.occlusion_fraction(radius),
            openord_occlusion: openord.occlusion_fraction(radius),
        }
    }
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// How prominent a structure of `size` vertices is in a picture of `n`
/// vertices: saturates at 1 once the structure covers ~5% of the graph.
fn prominence(size: usize, n: usize) -> f64 {
    clamp01(20.0 * size as f64 / n.max(1) as f64)
}

/// Saliency of the terrain visualization for a task.
///
/// The terrain encodes K with height and disconnection with peak separation,
/// so both K-Core tasks are near-ceiling regardless of how small the core is;
/// correlation is read from the color/height agreement, so Task 3 scales with
/// the magnitude of the true correlation.
pub fn terrain_saliency(task: Task, inputs: &SaliencyInputs) -> f64 {
    match task {
        // The tallest peak is the single most salient object in the picture
        // regardless of how few vertices it contains — height does the work —
        // so Task 1 sits at the ceiling (all ten participants solved it in the
        // paper on every dataset).
        Task::DensestKCore => clamp01(0.96 + 0.04 * inputs.tallest_peak_area_fraction.sqrt()),
        Task::SecondDisconnectedKCore => {
            if inputs.second_core_size == 0 {
                // No disconnected second core exists; identifying "none" is
                // still easy on the terrain (single peak).
                0.94
            } else {
                // Disconnection is directly visible as a separate peak.
                clamp01(0.93 + 0.07 * inputs.second_peak_area_fraction.sqrt())
            }
        }
        Task::CentralityCorrelation => clamp01(0.72 + 0.28 * inputs.degree_betweenness_gci.abs()),
    }
}

/// Saliency of the LaNet-vi shell plot for a task.
///
/// The densest core is a central blob whose visibility scales with its size;
/// judging *connectivity* between two cores requires tracing edges, which gets
/// harder with occlusion (Section IV-B's explanation for the Task 2 errors).
pub fn lanet_saliency(task: Task, inputs: &SaliencyInputs) -> f64 {
    match task {
        Task::DensestKCore => clamp01(
            0.62 + 0.38 * prominence(inputs.densest_core_size, inputs.vertex_count)
                - 0.10 * inputs.lanet_occlusion,
        ),
        Task::SecondDisconnectedKCore => clamp01(
            0.30 + 0.35 * prominence(inputs.second_core_size, inputs.vertex_count)
                - 0.25 * inputs.lanet_occlusion,
        ),
        // The paper does not test LaNet-vi on Task 3 (it cannot show two
        // centralities); return 0 so any accidental use is clearly wrong.
        Task::CentralityCorrelation => 0.0,
    }
}

/// Saliency of the OpenOrd layout for a task.
///
/// K-Core membership is only encoded by node color, so identifying the densest
/// core needs enough un-occluded pixels of the right color; correlation
/// judgments (color vs node size) degrade with occlusion as well.
pub fn openord_saliency(task: Task, inputs: &SaliencyInputs) -> f64 {
    match task {
        Task::DensestKCore => clamp01(
            0.58 + 0.40 * prominence(inputs.densest_core_size, inputs.vertex_count)
                - 0.30 * inputs.openord_occlusion,
        ),
        Task::SecondDisconnectedKCore => clamp01(
            0.42 + 0.38 * prominence(inputs.second_core_size, inputs.vertex_count)
                - 0.30 * inputs.openord_occlusion,
        ),
        Task::CentralityCorrelation => clamp01(
            0.45 + 0.40 * inputs.degree_betweenness_gci.abs() - 0.30 * inputs.openord_occlusion,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;
    use ugraph::generators::{collaboration_graph, CollaborationConfig};

    fn sample_inputs() -> SaliencyInputs {
        let g = collaboration_graph(&CollaborationConfig {
            authors: 400,
            papers: 350,
            groups: 8,
            groups_per_component: 4,
            dense_groups: 2,
            dense_group_extra_papers: 25,
            seed: 5,
            ..Default::default()
        });
        SaliencyInputs::compute(&g, 80, 7)
    }

    #[test]
    fn inputs_are_well_formed() {
        let inputs = sample_inputs();
        assert!(inputs.degeneracy >= 2);
        assert!(inputs.densest_core_size >= 3);
        assert!((0.0..=1.0).contains(&inputs.tallest_peak_area_fraction));
        assert!((0.0..=1.0).contains(&inputs.lanet_occlusion));
        assert!((0.0..=1.0).contains(&inputs.openord_occlusion));
        assert!((-1.0..=1.0).contains(&inputs.degree_betweenness_gci));
    }

    #[test]
    fn terrain_dominates_baselines_on_core_tasks() {
        let inputs = sample_inputs();
        for task in [Task::DensestKCore, Task::SecondDisconnectedKCore] {
            let t = terrain_saliency(task, &inputs);
            assert!(t >= lanet_saliency(task, &inputs), "terrain >= lanet on {task}");
            assert!(t >= openord_saliency(task, &inputs), "terrain >= openord on {task}");
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn task2_is_harder_than_task1_for_baselines() {
        let inputs = sample_inputs();
        assert!(
            lanet_saliency(Task::SecondDisconnectedKCore, &inputs)
                < lanet_saliency(Task::DensestKCore, &inputs)
        );
        assert!(
            openord_saliency(Task::SecondDisconnectedKCore, &inputs)
                < openord_saliency(Task::DensestKCore, &inputs)
        );
    }

    #[test]
    fn lanet_is_not_applicable_to_task3() {
        let inputs = sample_inputs();
        assert_eq!(lanet_saliency(Task::CentralityCorrelation, &inputs), 0.0);
        assert!(terrain_saliency(Task::CentralityCorrelation, &inputs) > 0.5);
    }

    #[test]
    fn all_saliencies_are_probabilities() {
        let inputs = sample_inputs();
        for task in Task::all() {
            for s in [
                terrain_saliency(task, &inputs),
                lanet_saliency(task, &inputs),
                openord_saliency(task, &inputs),
            ] {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}
