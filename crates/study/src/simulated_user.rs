//! Simulated participants: from saliency to accuracy and completion time.
//!
//! Each participant is a noisy threshold decision maker:
//!
//! * they answer correctly with probability
//!   `p = saliency · (1 − lapse) + guess · lapse` — a standard lapse-rate
//!   psychometric form where `lapse` models attention slips and `guess` the
//!   chance of guessing right after a slip;
//! * their completion time is `floor + scale · (1 − saliency)` plus
//!   multiplicative log-normal-ish noise — harder-to-see targets take longer,
//!   which is the relationship Tables IV–VI show between the tools.
//!
//! The time constants are calibrated so the simulated Terrain/LaNet-vi/OpenOrd
//! times land in the ranges the paper reports (roughly 2–5 s, 5–10 s and
//! 8–12 s respectively); the ordinal structure is what the reproduction
//! checks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The participant model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ParticipantModel {
    /// Probability of an attention lapse.
    pub lapse_rate: f64,
    /// Probability of answering correctly during a lapse (chance level).
    pub guess_rate: f64,
    /// Minimum completion time in seconds (motor + reading overhead).
    pub time_floor_s: f64,
    /// Additional seconds per unit of missing saliency.
    pub time_scale_s: f64,
    /// Relative magnitude of the time noise.
    pub time_noise: f64,
}

impl Default for ParticipantModel {
    fn default() -> Self {
        ParticipantModel {
            lapse_rate: 0.03,
            guess_rate: 0.25,
            time_floor_s: 2.2,
            time_scale_s: 16.0,
            time_noise: 0.18,
        }
    }
}

/// Outcome of one simulated trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Whether the participant answered correctly.
    pub correct: bool,
    /// Completion time in seconds.
    pub time_s: f64,
}

/// Simulate `participants` independent trials at the given saliency.
pub fn simulate_participants(
    saliency: f64,
    participants: usize,
    model: &ParticipantModel,
    seed: u64,
) -> Vec<TrialOutcome> {
    let saliency = saliency.clamp(0.0, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let p_correct = saliency * (1.0 - model.lapse_rate) + model.guess_rate * model.lapse_rate;
    (0..participants)
        .map(|_| {
            let correct = rng.gen_bool(p_correct.clamp(0.0, 1.0));
            let base_time = model.time_floor_s + model.time_scale_s * (1.0 - saliency);
            // Multiplicative noise, centered at 1, never negative.
            let noise = 1.0 + model.time_noise * (rng.gen::<f64>() * 2.0 - 1.0);
            // Incorrect answers take a bit longer (the participant searched).
            let slowdown = if correct { 1.0 } else { 1.25 };
            TrialOutcome { correct, time_s: base_time * noise * slowdown }
        })
        .collect()
}

/// Mean accuracy of a set of trials.
pub fn mean_accuracy(trials: &[TrialOutcome]) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().filter(|t| t.correct).count() as f64 / trials.len() as f64
}

/// Mean completion time of a set of trials.
pub fn mean_time(trials: &[TrialOutcome]) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().map(|t| t.time_s).sum::<f64>() / trials.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_saliency_gives_near_perfect_accuracy_and_fast_times() {
        let trials = simulate_participants(1.0, 200, &ParticipantModel::default(), 1);
        let acc = mean_accuracy(&trials);
        let time = mean_time(&trials);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(time < 4.0, "time {time}");
    }

    #[test]
    fn low_saliency_gives_low_accuracy_and_slow_times() {
        let trials = simulate_participants(0.2, 200, &ParticipantModel::default(), 2);
        let acc = mean_accuracy(&trials);
        let time = mean_time(&trials);
        assert!(acc < 0.5, "accuracy {acc}");
        assert!(time > 10.0, "time {time}");
    }

    #[test]
    fn accuracy_and_speed_increase_with_saliency() {
        let model = ParticipantModel::default();
        let low = simulate_participants(0.3, 500, &model, 3);
        let high = simulate_participants(0.9, 500, &model, 4);
        assert!(mean_accuracy(&high) > mean_accuracy(&low));
        assert!(mean_time(&high) < mean_time(&low));
    }

    #[test]
    fn trials_are_deterministic_for_a_seed_and_positive_times() {
        let model = ParticipantModel::default();
        let a = simulate_participants(0.7, 10, &model, 42);
        let b = simulate_participants(0.7, 10, &model, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|t| t.time_s > 0.0));
        assert_eq!(a.len(), 10);
        // Empty trial sets are handled.
        assert_eq!(mean_accuracy(&[]), 0.0);
        assert_eq!(mean_time(&[]), 0.0);
    }
}
