//! Running the full study design and producing the rows of Tables IV–VI.

use crate::metrics::{lanet_saliency, openord_saliency, terrain_saliency, SaliencyInputs};
use crate::simulated_user::{mean_accuracy, mean_time, simulate_participants, ParticipantModel};
use crate::tasks::{Task, Tool};
use ugraph::par::Parallelism;
use ugraph::CsrGraph;

/// Configuration of a study run.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Participants per (task, dataset, tool) cell — the paper uses 10.
    pub participants: usize,
    /// Participant model parameters.
    pub model: ParticipantModel,
    /// Number of betweenness source pivots used when computing Task-3 inputs.
    pub betweenness_samples: usize,
    /// Thread budget for the measure computations behind the saliency
    /// inputs. Results are identical for every setting (see [`ugraph::par`]),
    /// so this never changes a study outcome — only how long it takes.
    pub parallelism: Parallelism,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 10,
            model: ParticipantModel::default(),
            betweenness_samples: 128,
            parallelism: Parallelism::Serial,
            seed: 0x57d1,
        }
    }
}

/// One row of Tables IV–VI: a (task, dataset, tool) cell.
#[derive(Clone, Debug)]
pub struct StudyResultRow {
    /// The task.
    pub task: Task,
    /// Dataset name.
    pub dataset: String,
    /// The visualization tool.
    pub tool: Tool,
    /// The saliency the perceptual model assigned.
    pub saliency: f64,
    /// Mean accuracy over the participants.
    pub accuracy: f64,
    /// Mean completion time in seconds.
    pub mean_time_s: f64,
}

/// Run the study over `task_datasets`: for each task, the list of named
/// datasets it is evaluated on (the paper uses GrQc/PPI/DBLP for Tasks 1–2 and
/// Astro for Task 3).
pub fn run_user_study(
    task_datasets: &[(Task, Vec<(String, CsrGraph)>)],
    config: &StudyConfig,
) -> Vec<StudyResultRow> {
    let mut rows = Vec::new();
    for (task, datasets) in task_datasets {
        for (dataset_index, (name, graph)) in datasets.iter().enumerate() {
            let inputs = SaliencyInputs::compute_with(
                graph,
                config.betweenness_samples,
                config.seed ^ (dataset_index as u64) << 8,
                config.parallelism,
            );
            for (tool_index, tool) in Tool::for_task(*task).into_iter().enumerate() {
                let saliency = match tool {
                    Tool::Terrain => terrain_saliency(*task, &inputs),
                    Tool::LanetVi => lanet_saliency(*task, &inputs),
                    Tool::OpenOrd => openord_saliency(*task, &inputs),
                };
                let trial_seed = config
                    .seed
                    .wrapping_add(task.number() as u64 * 1_000_003)
                    .wrapping_add(dataset_index as u64 * 10_007)
                    .wrapping_add(tool_index as u64 * 101);
                let trials =
                    simulate_participants(saliency, config.participants, &config.model, trial_seed);
                rows.push(StudyResultRow {
                    task: *task,
                    dataset: name.clone(),
                    tool,
                    saliency,
                    accuracy: mean_accuracy(&trials),
                    mean_time_s: mean_time(&trials),
                });
            }
        }
    }
    rows
}

/// Format study rows as an aligned text table, one block per task (the shape
/// of Tables IV–VI).
pub fn format_tables(rows: &[StudyResultRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for task in Task::all() {
        let task_rows: Vec<&StudyResultRow> = rows.iter().filter(|r| r.task == task).collect();
        if task_rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "== {task} ==");
        let _ =
            writeln!(out, "{:<12} {:<10} {:>9} {:>9}", "dataset", "tool", "accuracy", "time(s)");
        for row in task_rows {
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:>9.2} {:>9.1}",
                row.dataset,
                row.tool.to_string(),
                row.accuracy,
                row.mean_time_s
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::{collaboration_graph, watts_strogatz, CollaborationConfig};

    fn small_datasets() -> Vec<(String, CsrGraph)> {
        vec![
            (
                "grqc-like".to_string(),
                collaboration_graph(&CollaborationConfig {
                    authors: 300,
                    papers: 250,
                    groups: 6,
                    groups_per_component: 3,
                    dense_groups: 2,
                    dense_group_extra_papers: 20,
                    seed: 2,
                    ..Default::default()
                }),
            ),
            ("ppi-like".to_string(), watts_strogatz(300, 6, 0.15, 4)),
        ]
    }

    #[test]
    fn study_produces_one_row_per_cell() {
        let datasets = small_datasets();
        let design = vec![
            (Task::DensestKCore, datasets.clone()),
            (Task::SecondDisconnectedKCore, datasets.clone()),
            (Task::CentralityCorrelation, vec![datasets[0].clone()]),
        ];
        let config =
            StudyConfig { participants: 10, betweenness_samples: 40, ..Default::default() };
        let rows = run_user_study(&design, &config);
        // Tasks 1 and 2: 2 datasets x 3 tools; Task 3: 1 dataset x 2 tools.
        assert_eq!(rows.len(), 2 * 3 + 2 * 3 + 2);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.accuracy));
            assert!(row.mean_time_s > 0.0);
        }
    }

    #[test]
    fn terrain_is_at_least_as_accurate_and_faster_on_average() {
        let datasets = small_datasets();
        let design =
            vec![(Task::DensestKCore, datasets.clone()), (Task::SecondDisconnectedKCore, datasets)];
        let config =
            StudyConfig { participants: 30, betweenness_samples: 40, ..Default::default() };
        let rows = run_user_study(&design, &config);
        let avg = |tool: Tool, f: fn(&StudyResultRow) -> f64| -> f64 {
            let filtered: Vec<f64> = rows.iter().filter(|r| r.tool == tool).map(f).collect();
            filtered.iter().sum::<f64>() / filtered.len() as f64
        };
        assert!(avg(Tool::Terrain, |r| r.accuracy) >= avg(Tool::LanetVi, |r| r.accuracy));
        assert!(avg(Tool::Terrain, |r| r.accuracy) >= avg(Tool::OpenOrd, |r| r.accuracy));
        assert!(avg(Tool::Terrain, |r| r.mean_time_s) < avg(Tool::LanetVi, |r| r.mean_time_s));
        assert!(avg(Tool::Terrain, |r| r.mean_time_s) < avg(Tool::OpenOrd, |r| r.mean_time_s));
    }

    #[test]
    fn formatted_tables_contain_every_dataset_and_tool() {
        let datasets = small_datasets();
        let design = vec![(Task::DensestKCore, datasets)];
        let rows = run_user_study(
            &design,
            &StudyConfig { participants: 5, betweenness_samples: 30, ..Default::default() },
        );
        let text = format_tables(&rows);
        assert!(text.contains("Task 1"));
        assert!(text.contains("grqc-like"));
        assert!(text.contains("Terrain"));
        assert!(text.contains("LaNet-vi"));
        assert!(text.contains("OpenOrd"));
    }

    #[test]
    fn study_runs_are_deterministic() {
        let datasets = vec![small_datasets().remove(1)];
        let design = vec![(Task::DensestKCore, datasets)];
        let config = StudyConfig { participants: 8, betweenness_samples: 30, ..Default::default() };
        let a = run_user_study(&design, &config);
        let b = run_user_study(&design, &config);
        let key = |rows: &Vec<StudyResultRow>| -> Vec<(f64, f64)> {
            rows.iter().map(|r| (r.accuracy, r.mean_time_s)).collect()
        };
        assert_eq!(key(&a), key(&b));
    }
}
