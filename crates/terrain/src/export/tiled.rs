//! Scene-based streaming backends: [`TiledSvg`], the top-down
//! level-of-detail view of the retained scene, and [`SceneBin`], the
//! compact binary `GTSC` scene document.
//!
//! Both backends run the [`crate::scene`] LOD layout pass over the scene's
//! tree and render from the retained [`Scene`] instead of the 3D mesh:
//! [`TiledSvg`] paints the visible set at the zoom level matching the
//! requested pixel width (what a pan/zoom client's initial full view
//! shows), [`SceneBin`] streams every retained item resolution-free for
//! client-side renderers. The per-tile variants of the same drawings are
//! served straight from [`Scene::write_tile_svg`] /
//! [`Scene::write_tile_gtsc`] by the HTTP tile routes; these exporters
//! cover the "whole graph, one artifact" render paths (figure binaries,
//! `format=` query parameter, CI determinism gates).

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;
use crate::layout2d::LayoutConfig;
use crate::scene::{LodConfig, Scene};
use std::io;

/// Top-down cushion-shaded SVG of the retained scene's visible set at the
/// zoom level matching the output width.
///
/// Unlike [`super::Svg`] (the oblique 3D projection of the full mesh), the
/// byte size of this artifact is bounded by the LOD pass: a million-node
/// tree still draws only the items visible at the chosen zoom.
#[derive(Copy, Clone, Debug)]
pub struct TiledSvg {
    width_px: u32,
    height_px: u32,
    layout: LayoutConfig,
    lod: LodConfig,
}

impl TiledSvg {
    /// A backend rendering at the given pixel size (fractions are rounded,
    /// sizes clamp to at least one pixel), with default layout and LOD
    /// configurations.
    pub fn new(width_px: f64, height_px: f64) -> Self {
        TiledSvg {
            width_px: (width_px.round().max(1.0)) as u32,
            height_px: (height_px.round().max(1.0)) as u32,
            layout: LayoutConfig::default(),
            lod: LodConfig::default(),
        }
    }

    /// Replace the LOD configuration (validated when the scene is built).
    pub fn with_lod(mut self, lod: LodConfig) -> Self {
        self.lod = lod;
        self
    }
}

impl Default for TiledSvg {
    fn default() -> Self {
        TiledSvg::new(1024.0, 1024.0)
    }
}

impl Exporter for TiledSvg {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn file_extension(&self) -> &'static str {
        "svg"
    }

    fn write_to(&self, scene: &RenderScene<'_>, writer: &mut dyn io::Write) -> TerrainResult<()> {
        let retained = Scene::build(scene.tree, &self.layout, &self.lod)?;
        let zoom = retained.zoom_for_width(f64::from(self.width_px));
        let domain = retained.domain();
        let mut ids = retained.query(&domain);
        ids.retain(|&id| retained.items()[id as usize].min_visible_lod <= zoom);
        retained.write_view_svg(&domain, &ids, self.width_px, self.height_px, writer)
    }
}

/// The whole retained scene as one binary `GTSC` document (see
/// [`crate::scene::decode_gtsc`] for the wire format) — what
/// `GET /graphs/{id}/scene` streams to pan/zoom clients.
#[derive(Copy, Clone, Debug)]
pub struct SceneBin {
    layout: LayoutConfig,
    lod: LodConfig,
}

impl SceneBin {
    /// A backend with default layout and LOD configurations.
    pub fn new() -> Self {
        SceneBin { layout: LayoutConfig::default(), lod: LodConfig::default() }
    }

    /// Replace the LOD configuration (validated when the scene is built).
    pub fn with_lod(mut self, lod: LodConfig) -> Self {
        self.lod = lod;
        self
    }
}

impl Default for SceneBin {
    fn default() -> Self {
        SceneBin::new()
    }
}

impl Exporter for SceneBin {
    fn name(&self) -> &'static str {
        "scene"
    }

    fn file_extension(&self) -> &'static str {
        "gtsc"
    }

    fn write_to(&self, scene: &RenderScene<'_>, writer: &mut dyn io::Write) -> TerrainResult<()> {
        Scene::build(scene.tree, &self.layout, &self.lod)?.write_scene_gtsc(writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::layout_super_tree;
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use crate::scene::decode_gtsc;
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample_scene_parts(
    ) -> (scalarfield::SuperScalarTree, crate::layout2d::TerrainLayout, crate::mesh::TerrainMesh)
    {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let g = b.build();
        let scalar = vec![3.0, 3.0, 2.0, 1.0, 2.0, 2.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        (tree, layout, mesh)
    }

    #[test]
    fn tiled_svg_renders_the_lod_view_at_the_requested_size() {
        let (tree, layout, mesh) = sample_scene_parts();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let svg = TiledSvg::new(320.0, 240.0).export_string(&scene).unwrap();
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("width=\"320\""), "{svg}");
        assert!(svg.contains("height=\"240\""), "{svg}");
        assert_eq!(svg, TiledSvg::new(320.0, 240.0).export_string(&scene).unwrap());
    }

    #[test]
    fn scene_bin_round_trips_through_the_decoder() {
        let (tree, layout, mesh) = sample_scene_parts();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let mut bytes = Vec::new();
        SceneBin::new().write_to(&scene, &mut bytes).unwrap();
        let doc = decode_gtsc(&bytes).unwrap();
        assert!(doc.tile.is_none(), "a whole-scene document carries no tile stamp");
        let direct = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        assert_eq!(doc.items.len(), direct.item_count());
    }

    #[test]
    fn invalid_lod_config_surfaces_as_a_config_error() {
        let (tree, layout, mesh) = sample_scene_parts();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let bad = TiledSvg::default().with_lod(LodConfig { tile_px: 0, ..Default::default() });
        let err = bad.export_string(&scene).unwrap_err();
        assert!(err.to_string().contains("tile_px"), "{err}");
        let bad = SceneBin::new().with_lod(LodConfig { max_children: 1, ..Default::default() });
        assert!(bad.export_string(&scene).is_err());
    }
}
