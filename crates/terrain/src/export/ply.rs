//! ASCII PLY backend: the terrain mesh with per-face colors.
//!
//! PLY (the Stanford polygon format) carries per-face color properties that
//! core Wavefront OBJ cannot, so this is the backend of choice when the
//! colormap must survive into a mesh viewer. The output is the ASCII dialect:
//! a self-describing header, one `x y z` line per vertex, then one
//! `3 a b c r g b` line per triangular face.

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;

/// The ASCII PLY backend: streams the scene's mesh with face colors.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Ply;

impl Exporter for Ply {
    fn name(&self) -> &'static str {
        "ply"
    }

    fn file_extension(&self) -> &'static str {
        "ply"
    }

    fn write_to(&self, scene: &RenderScene<'_>, out: &mut dyn std::io::Write) -> TerrainResult<()> {
        let mesh = scene.mesh;
        out.write_all(b"ply\nformat ascii 1.0\ncomment graph-terrain mesh export\n")?;
        writeln!(out, "element vertex {}", mesh.vertex_count())?;
        out.write_all(b"property float x\nproperty float y\nproperty float z\n")?;
        writeln!(out, "element face {}", mesh.triangle_count())?;
        out.write_all(
            b"property list uchar uint vertex_indices\n\
              property uchar red\nproperty uchar green\nproperty uchar blue\n\
              end_header\n",
        )?;
        for v in &mesh.vertices {
            // PLY viewers treat +z as up, matching the mesh's own convention.
            writeln!(out, "{:.6} {:.6} {:.6}", v.x, v.y, v.z)?;
        }
        for t in &mesh.triangles {
            writeln!(
                out,
                "3 {} {} {} {} {} {}",
                t.indices[0], t.indices[1], t.indices[2], t.color.r, t.color.g, t.color.b
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use crate::mesh::{build_terrain_mesh, MeshConfig, TerrainMesh};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample() -> (scalarfield::SuperScalarTree, crate::TerrainLayout, TerrainMesh) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let scalar = vec![3.0, 2.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        (tree, layout, mesh)
    }

    #[test]
    fn ply_header_counts_match_the_body() {
        let (tree, layout, mesh) = sample();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let ply = Ply.export_string(&scene).unwrap();
        assert!(ply.starts_with("ply\nformat ascii 1.0\n"));
        assert!(ply.contains(&format!("element vertex {}", mesh.vertex_count())));
        assert!(ply.contains(&format!("element face {}", mesh.triangle_count())));
        let body: Vec<&str> = ply.split("end_header\n").nth(1).unwrap().lines().collect();
        assert_eq!(body.len(), mesh.vertex_count() + mesh.triangle_count());
        // Face lines: `3 a b c r g b` with indices in range and u8 colors.
        for line in &body[mesh.vertex_count()..] {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(tokens.len(), 7);
            assert_eq!(tokens[0], "3");
            for idx in &tokens[1..4] {
                let idx: usize = idx.parse().unwrap();
                assert!(idx < mesh.vertex_count());
            }
            for channel in &tokens[4..] {
                channel.parse::<u8>().unwrap();
            }
        }
    }

    #[test]
    fn empty_mesh_is_a_valid_empty_ply() {
        let mesh = TerrainMesh::default();
        let (tree, layout, _) = sample();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let ply = Ply.export_string(&scene).unwrap();
        assert!(ply.contains("element vertex 0"));
        assert!(ply.contains("element face 0"));
        assert!(ply.trim_end().ends_with("end_header"));
    }
}
