//! Wavefront OBJ backend.
//!
//! The OBJ stream contains every mesh vertex and triangle — sufficient for
//! inspection and for importing the geometry into standard viewers, which is
//! all the reproduction needs. Per-face colors are not part of core OBJ; use
//! [`Ply`](super::Ply) when colors must survive the export.

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;
use crate::mesh::TerrainMesh;
use std::io::Write;

/// The Wavefront OBJ backend: streams the scene's mesh as OBJ text.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Obj;

impl Exporter for Obj {
    fn name(&self) -> &'static str {
        "obj"
    }

    fn file_extension(&self) -> &'static str {
        "obj"
    }

    fn write_to(
        &self,
        scene: &RenderScene<'_>,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        write_obj(scene.mesh, writer)
    }
}

fn write_obj(mesh: &TerrainMesh, out: &mut dyn Write) -> TerrainResult<()> {
    out.write_all(b"# graph-terrain mesh export\n")?;
    writeln!(out, "# {} vertices, {} triangles", mesh.vertex_count(), mesh.triangle_count())?;
    for v in &mesh.vertices {
        writeln!(out, "v {:.6} {:.6} {:.6}", v.x, v.z, v.y)?;
    }
    for t in &mesh.triangles {
        // OBJ face indices are 1-based.
        writeln!(out, "f {} {} {}", t.indices[0] + 1, t.indices[1] + 1, t.indices[2] + 1)?;
    }
    Ok(())
}

/// Serialize a terrain mesh to Wavefront OBJ text.
#[deprecated(
    since = "0.3.0",
    note = "use the `Obj` exporter with a `RenderScene` (`Obj.write_to(&scene, &mut writer)`)"
)]
pub fn mesh_to_obj(mesh: &TerrainMesh) -> String {
    let mut out = Vec::with_capacity(mesh.vertex_count() * 32 + mesh.triangle_count() * 16);
    write_obj(mesh, &mut out).expect("writing to a Vec<u8> cannot fail");
    String::from_utf8(out).expect("OBJ output is UTF-8")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample_mesh() -> TerrainMesh {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let scalar = vec![3.0, 2.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        build_terrain_mesh(&tree, &layout, &MeshConfig::default())
    }

    #[test]
    fn obj_has_one_line_per_vertex_and_face() {
        let mesh = sample_mesh();
        let obj = mesh_to_obj(&mesh);
        let v_lines = obj.lines().filter(|l| l.starts_with("v ")).count();
        let f_lines = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(v_lines, mesh.vertex_count());
        assert_eq!(f_lines, mesh.triangle_count());
    }

    #[test]
    fn obj_faces_are_one_based_and_in_range() {
        let mesh = sample_mesh();
        let obj = mesh_to_obj(&mesh);
        for line in obj.lines().filter(|l| l.starts_with("f ")) {
            for token in line.split_whitespace().skip(1) {
                let idx: usize = token.parse().unwrap();
                assert!(idx >= 1 && idx <= mesh.vertex_count());
            }
        }
    }

    #[test]
    fn empty_mesh_exports_header_only() {
        let obj = mesh_to_obj(&TerrainMesh::default());
        assert!(obj.contains("0 vertices, 0 triangles"));
        assert!(!obj.lines().any(|l| l.starts_with("v ")));
    }
}
