//! Wavefront OBJ export of terrain meshes.
//!
//! The OBJ file contains every mesh vertex and triangle; face colors are
//! emitted as grouped materials in a sibling `.mtl` block appended as comments
//! (sufficient for inspection and for importing the geometry into standard
//! viewers, which is all the reproduction needs).

use crate::mesh::TerrainMesh;
use std::fmt::Write as _;

/// Serialize a terrain mesh to Wavefront OBJ text.
pub fn mesh_to_obj(mesh: &TerrainMesh) -> String {
    let mut out = String::with_capacity(mesh.vertex_count() * 32 + mesh.triangle_count() * 16);
    out.push_str("# graph-terrain mesh export\n");
    let _ =
        writeln!(out, "# {} vertices, {} triangles", mesh.vertex_count(), mesh.triangle_count());
    for v in &mesh.vertices {
        let _ = writeln!(out, "v {:.6} {:.6} {:.6}", v.x, v.z, v.y);
    }
    for t in &mesh.triangles {
        // OBJ face indices are 1-based.
        let _ = writeln!(out, "f {} {} {}", t.indices[0] + 1, t.indices[1] + 1, t.indices[2] + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample_mesh() -> TerrainMesh {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let scalar = vec![3.0, 2.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        build_terrain_mesh(&tree, &layout, &MeshConfig::default())
    }

    #[test]
    fn obj_has_one_line_per_vertex_and_face() {
        let mesh = sample_mesh();
        let obj = mesh_to_obj(&mesh);
        let v_lines = obj.lines().filter(|l| l.starts_with("v ")).count();
        let f_lines = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(v_lines, mesh.vertex_count());
        assert_eq!(f_lines, mesh.triangle_count());
    }

    #[test]
    fn obj_faces_are_one_based_and_in_range() {
        let mesh = sample_mesh();
        let obj = mesh_to_obj(&mesh);
        for line in obj.lines().filter(|l| l.starts_with("f ")) {
            for token in line.split_whitespace().skip(1) {
                let idx: usize = token.parse().unwrap();
                assert!(idx >= 1 && idx <= mesh.vertex_count());
            }
        }
    }

    #[test]
    fn empty_mesh_exports_header_only() {
        let obj = mesh_to_obj(&TerrainMesh::default());
        assert!(obj.contains("0 vertices, 0 triangles"));
        assert!(!obj.lines().any(|l| l.starts_with("v ")));
    }
}
