//! JSON scene backend: the whole rendered scene — mesh, layout, tree scalars
//! and stage timings — as one JSON document for web frontends.
//!
//! The document is hand-serialized (no serde dependency) with a fixed field
//! order and shortest-round-trip `f64` formatting, so identical scenes always
//! produce identical bytes and every number survives `JSON.parse` exactly.
//!
//! Layout:
//!
//! ```json
//! {
//!   "meta": {"nodes": 5, "vertices": 40, "triangles": 36},
//!   "tree": {"scalars": [...], "parents": [...], "subtree_members": [...]},
//!   "layout": {"width": 1.0, "height": 1.0, "rects": [[x0,y0,x1,y1], ...]},
//!   "mesh": {"vertices": [[x,y,z], ...],
//!            "triangles": [{"v": [a,b,c], "color": "#rrggbb", "node": 0, "top": true}, ...]},
//!   "timings": [{"stage": "tree", "seconds": 0.25}, ...]
//! }
//! ```

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;

/// The JSON backend: streams mesh + layout + tree + timings for consumption
/// by web frontends (or anything else that speaks JSON).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct JsonScene;

/// JSON-format a float: `f64`'s `Display` is already the shortest decimal
/// that round-trips, and every scene value is finite (enforced upstream), so
/// no special casing is needed beyond making integers explicit floats — which
/// JSON does not require either. `1` parses as the number 1.
fn num(value: f64) -> String {
    value.to_string()
}

impl Exporter for JsonScene {
    fn name(&self) -> &'static str {
        "json"
    }

    fn file_extension(&self) -> &'static str {
        "json"
    }

    fn write_to(&self, scene: &RenderScene<'_>, out: &mut dyn std::io::Write) -> TerrainResult<()> {
        let tree = scene.tree;
        let layout = scene.layout;
        let mesh = scene.mesh;

        writeln!(out, "{{")?;
        writeln!(
            out,
            "  \"meta\": {{\"nodes\": {}, \"vertices\": {}, \"triangles\": {}}},",
            tree.node_count(),
            mesh.vertex_count(),
            mesh.triangle_count()
        )?;

        // Tree: scalars, parents (null for roots), subtree member counts.
        write!(out, "  \"tree\": {{\"scalars\": [")?;
        for (i, s) in tree.scalars().iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{}", num(*s))?;
        }
        write!(out, "], \"parents\": [")?;
        for (i, p) in tree.parents().iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            match p {
                Some(parent) => write!(out, "{parent}")?,
                None => write!(out, "null")?,
            }
        }
        write!(out, "], \"subtree_members\": [")?;
        for (i, count) in tree.subtree_member_counts().iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{count}")?;
        }
        writeln!(out, "]}},")?;

        // Layout: the domain and one rect per node.
        writeln!(
            out,
            "  \"layout\": {{\"width\": {}, \"height\": {}, \"rects\": [",
            num(layout.config.width),
            num(layout.config.height)
        )?;
        for (i, r) in layout.rects.iter().enumerate() {
            let comma = if i + 1 < layout.rects.len() { "," } else { "" };
            writeln!(
                out,
                "    [{}, {}, {}, {}]{comma}",
                num(r.x0),
                num(r.y0),
                num(r.x1),
                num(r.y1)
            )?;
        }
        writeln!(out, "  ]}},")?;

        // Mesh: positions and indexed, colored triangles.
        writeln!(out, "  \"mesh\": {{\"vertices\": [")?;
        for (i, v) in mesh.vertices.iter().enumerate() {
            let comma = if i + 1 < mesh.vertices.len() { "," } else { "" };
            writeln!(out, "    [{}, {}, {}]{comma}", num(v.x), num(v.y), num(v.z))?;
        }
        writeln!(out, "  ], \"triangles\": [")?;
        for (i, t) in mesh.triangles.iter().enumerate() {
            let comma = if i + 1 < mesh.triangles.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"v\": [{}, {}, {}], \"color\": \"{}\", \"node\": {}, \"top\": {}}}{comma}",
                t.indices[0],
                t.indices[1],
                t.indices[2],
                t.color.hex(),
                t.node,
                t.is_top
            )?;
        }
        writeln!(out, "  ]}},")?;

        // Timings, exactly as the producer recorded them.
        write!(out, "  \"timings\": [")?;
        for (i, t) in scene.timings.iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "{{\"stage\": \"{}\", \"seconds\": {}}}", t.stage, num(t.seconds))?;
        }
        writeln!(out, "]")?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::SceneTiming;
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn scene_parts() -> (scalarfield::SuperScalarTree, crate::TerrainLayout, crate::TerrainMesh) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let scalar = vec![2.0, 2.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        (tree, layout, mesh)
    }

    #[test]
    fn json_scene_has_every_section_and_matching_counts() {
        let (tree, layout, mesh) = scene_parts();
        let timings = [
            SceneTiming { stage: "tree", seconds: 0.5 },
            SceneTiming { stage: "mesh", seconds: 0.25 },
        ];
        let scene = RenderScene::new(&tree, &layout, &mesh).with_timings(&timings);
        let json = JsonScene.export_string(&scene).unwrap();
        for key in ["\"meta\"", "\"tree\"", "\"layout\"", "\"mesh\"", "\"timings\""] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches("\"color\"").count(), mesh.triangle_count());
        assert!(json.contains("{\"stage\": \"tree\", \"seconds\": 0.5}"));
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches missed commas and unterminated arrays.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_scene_without_timings_has_empty_array() {
        let (tree, layout, mesh) = scene_parts();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let json = JsonScene.export_string(&scene).unwrap();
        assert!(json.contains("\"timings\": []"));
    }
}
