//! ASCII heightmap backend: a quick terminal view of a terrain.
//!
//! The heightmap samples the 2D layout on a character grid; every cell shows
//! the height of the deepest nested boundary covering it, using a ramp of
//! characters from `.` (baseline) to `#` (summit). Examples and the quickstart
//! use this to show a terrain without leaving the terminal.

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;
use crate::layout2d::TerrainLayout;

/// The character ramp, lowest to highest.
const RAMP: &[u8] = b" .:-=+*%@#";

/// The terminal backend: streams the layout's height field as ASCII art of
/// `cols` by `rows` characters (plus newlines).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Ascii {
    /// Grid width in characters.
    pub cols: usize,
    /// Grid height in characters.
    pub rows: usize,
}

impl Default for Ascii {
    fn default() -> Self {
        Ascii { cols: 64, rows: 20 }
    }
}

impl Ascii {
    /// A backend with an explicit character-grid size.
    pub fn new(cols: usize, rows: usize) -> Self {
        Ascii { cols, rows }
    }
}

impl Exporter for Ascii {
    fn name(&self) -> &'static str {
        "ascii"
    }

    fn file_extension(&self) -> &'static str {
        "txt"
    }

    fn write_to(
        &self,
        scene: &RenderScene<'_>,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        writer.write_all(render_heightmap(scene.layout, self.cols, self.rows).as_bytes())?;
        Ok(())
    }
}

fn render_heightmap(layout: &TerrainLayout, cols: usize, rows: usize) -> String {
    if layout.rects.is_empty() || cols == 0 || rows == 0 {
        return String::new();
    }
    let min_h = layout.scalar.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_h = layout.scalar.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max_h - min_h).max(1e-12);

    let mut out = String::with_capacity((cols + 1) * rows);
    for row in 0..rows {
        // Row 0 is the top of the layout (max y).
        let y = layout.config.height * (1.0 - (row as f64 + 0.5) / rows as f64);
        for col in 0..cols {
            let x = layout.config.width * (col as f64 + 0.5) / cols as f64;
            let h = layout.height_at_point(x, y);
            let t = ((h - min_h) / span).clamp(0.0, 1.0);
            let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Render the terrain's height field to ASCII art of `cols` by `rows`
/// characters (plus newlines).
#[deprecated(
    since = "0.3.0",
    note = "use the `Ascii` exporter with a `RenderScene` \
            (`Ascii::new(cols, rows).export_string(&scene)`)"
)]
pub fn ascii_heightmap(layout: &TerrainLayout, cols: usize, rows: usize) -> String {
    render_heightmap(layout, cols, rows)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use measures::core_numbers;
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample_layout() -> TerrainLayout {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let g = b.build();
        let cores = core_numbers(&g);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        layout_super_tree(&tree, &LayoutConfig::default())
    }

    #[test]
    fn heightmap_has_requested_dimensions() {
        let layout = sample_layout();
        let art = ascii_heightmap(&layout, 40, 12);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
    }

    #[test]
    fn heightmap_uses_multiple_height_levels() {
        let layout = sample_layout();
        let art = ascii_heightmap(&layout, 60, 20);
        let distinct: std::collections::BTreeSet<char> =
            art.chars().filter(|c| *c != '\n').collect();
        assert!(distinct.len() >= 2, "terrain with peaks should use several glyphs");
        // The summit glyph appears somewhere.
        assert!(art.contains('#') || art.contains('@'));
    }

    #[test]
    fn degenerate_requests_return_empty_strings() {
        let layout = sample_layout();
        assert!(ascii_heightmap(&layout, 0, 10).is_empty());
        assert!(ascii_heightmap(&layout, 10, 0).is_empty());
    }
}
