//! Exporters: SVG (2D treemap and projected 3D terrain), Wavefront OBJ and
//! ASCII heightmaps.
//!
//! The paper's tool renders the terrain interactively; the figure harness of
//! this reproduction instead writes deterministic files that can be inspected,
//! diffed and embedded in reports. The `tv` column of Table II is measured as
//! the time to produce these renderings from a super tree.

pub mod ascii;
pub mod obj;
pub mod svg;
