//! The render boundary: the [`Exporter`] trait, the [`RenderScene`] it
//! consumes, and the built-in backends.
//!
//! The paper's tool renders the terrain interactively; the figure harness of
//! this reproduction instead writes deterministic artifacts that can be
//! inspected, diffed and embedded in reports. Every artifact is produced the
//! same way: borrow a [`RenderScene`] from the built stages (tree, layout,
//! mesh, optional per-stage timings) and stream it through an [`Exporter`]
//! into any [`io::Write`] — a file, a socket, an in-memory buffer — without
//! ever materializing the document as one `String`. The `tv` column of
//! Table II is measured as the time to produce these renderings from a super
//! tree.
//!
//! Built-in backends:
//!
//! | backend        | output                                             | extension |
//! |----------------|----------------------------------------------------|-----------|
//! | [`Svg`]        | oblique-projected 3D terrain                       | `svg`     |
//! | [`TreemapSvg`] | flat 2D treemap (Figure 5(a))                      | `svg`     |
//! | [`Obj`]        | Wavefront OBJ triangle mesh                        | `obj`     |
//! | [`Ply`]        | ASCII PLY mesh with per-face colors                | `ply`     |
//! | [`Ascii`]      | terminal heightmap (top view)                      | `txt`     |
//! | [`JsonScene`]  | mesh + layout + timings as JSON for web frontends  | `json`    |
//! | [`TiledSvg`]   | top-down LOD view of the retained scene            | `svg`     |
//! | [`SceneBin`]   | binary `GTSC` scene document for pan/zoom clients  | `gtsc`    |
//!
//! New backends are plug-ins: implement [`Exporter`] and every call site that
//! takes `&dyn Exporter` (the `TerrainPipeline` session's `render_to` /
//! `write_artifact`, the figure binaries' `--format` flag) accepts it.
//!
//! ```
//! use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
//! use terrain::export::{Exporter, RenderScene, Svg};
//! use terrain::{build_terrain_mesh, layout_super_tree, LayoutConfig, MeshConfig};
//!
//! let mut b = ugraph::GraphBuilder::new();
//! b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
//! let graph = b.build();
//! let scalar = vec![2.0, 2.0, 2.0, 1.0];
//! let sg = VertexScalarGraph::new(&graph, &scalar)?;
//! let tree = build_super_tree(&vertex_scalar_tree(&sg));
//! let layout = layout_super_tree(&tree, &LayoutConfig::default());
//! let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
//!
//! let scene = RenderScene::new(&tree, &layout, &mesh);
//! let mut out = Vec::new();
//! Svg::new(640.0, 480.0).write_to(&scene, &mut out)?;
//! assert!(out.starts_with(b"<svg"));
//! # Ok::<(), terrain::TerrainError>(())
//! ```

pub mod ascii;
pub mod json;
pub mod obj;
pub mod ply;
pub mod svg;
pub mod tiled;

use crate::error::TerrainResult;
use crate::layout2d::TerrainLayout;
use crate::mesh::TerrainMesh;
use scalarfield::SuperScalarTree;
use std::io;

pub use ascii::Ascii;
pub use json::JsonScene;
pub use obj::Obj;
pub use ply::Ply;
pub use svg::{Svg, TreemapSvg};
pub use tiled::{SceneBin, TiledSvg};

/// One stage's wall-clock cost, carried along for backends (like
/// [`JsonScene`]) that report provenance next to geometry.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SceneTiming {
    /// Stage name (e.g. `"scalar"`, `"tree"`, `"layout"`).
    pub stage: &'static str,
    /// Wall-clock seconds the stage took.
    pub seconds: f64,
}

/// A borrowed view of everything a backend may need to render one terrain:
/// the (render) tree, its 2D layout, its 3D mesh, and optional per-stage
/// timings. Backends use the slice of it they care about — [`Obj`] reads only
/// the mesh, [`Ascii`] only the layout, [`JsonScene`] all of it.
#[derive(Copy, Clone, Debug)]
pub struct RenderScene<'a> {
    /// The super scalar tree the terrain was rendered from (after any
    /// Section II-E simplification).
    pub tree: &'a SuperScalarTree,
    /// The nested 2D boundary layout of the tree.
    pub layout: &'a TerrainLayout,
    /// The 3D terrain mesh of the tree.
    pub mesh: &'a TerrainMesh,
    /// Per-stage wall-clock timings, when the producer recorded them.
    pub timings: &'a [SceneTiming],
}

impl<'a> RenderScene<'a> {
    /// A scene over built stages, with no timings attached.
    pub fn new(
        tree: &'a SuperScalarTree,
        layout: &'a TerrainLayout,
        mesh: &'a TerrainMesh,
    ) -> Self {
        RenderScene { tree, layout, mesh, timings: &[] }
    }

    /// Attach per-stage timings (e.g. from the session's `StageTimings`).
    pub fn with_timings(mut self, timings: &'a [SceneTiming]) -> Self {
        self.timings = timings;
        self
    }
}

/// A streaming render backend: serializes a [`RenderScene`] into any
/// [`io::Write`].
///
/// Implementations must be deterministic — identical scenes must produce
/// identical bytes — because the CI determinism gate diffs artifacts across
/// runs, thread counts and ingest paths.
pub trait Exporter {
    /// Short lowercase backend name (what `--format` flags accept).
    fn name(&self) -> &'static str;

    /// Conventional file extension of the artifact (no dot).
    fn file_extension(&self) -> &'static str;

    /// Serialize the scene into `writer`. I/O failures surface as
    /// [`TerrainError::Graph`](crate::TerrainError) wrapping the underlying
    /// [`io::Error`]; no backend panics on any scene, including empty ones.
    fn write_to(&self, scene: &RenderScene<'_>, writer: &mut dyn io::Write) -> TerrainResult<()>;

    /// Render to an owned `String` — a convenience for tests, terminal
    /// output and small artifacts. Streaming callers should prefer
    /// [`write_to`](Exporter::write_to).
    fn export_string(&self, scene: &RenderScene<'_>) -> TerrainResult<String> {
        let mut out = Vec::new();
        self.write_to(scene, &mut out)?;
        String::from_utf8(out).map_err(|e| crate::TerrainError::Mesh {
            message: format!("backend `{}` emitted non-UTF-8 output: {e}", self.name()),
        })
    }
}

/// Every built-in backend, with its default configuration — what generic
/// "render this scene in every format" call sites (CI gates, smoke tests)
/// iterate over.
pub fn builtin_exporters() -> Vec<Box<dyn Exporter>> {
    vec![
        Box::new(Svg::default()),
        Box::new(TreemapSvg::default()),
        Box::new(Obj),
        Box::new(Ply),
        Box::new(Ascii::default()),
        Box::new(JsonScene),
        Box::new(TiledSvg::default()),
        Box::new(SceneBin::default()),
    ]
}

/// The [`Exporter::name`]s of every built-in backend, in
/// [`builtin_exporters`] order — what error messages and HTTP 400 bodies
/// list as the accepted `format` values.
pub fn exporter_names() -> Vec<&'static str> {
    builtin_exporters().iter().map(|e| e.name()).collect()
}

/// Look up a built-in backend by its [`Exporter::name`] (the `--format` flag
/// of the figure binaries and examples, the `format` query parameter of the
/// terrain server). Unknown names return a typed [`UnknownExporterError`]
/// carrying the rejected name and the accepted ones, so callers can surface
/// a precise message (or a structured 400 body) instead of a bare "no".
pub fn exporter_by_name(name: &str) -> Result<Box<dyn Exporter>, UnknownExporterError> {
    builtin_exporters()
        .into_iter()
        .find(|e| e.name() == name.to_ascii_lowercase())
        .ok_or_else(|| UnknownExporterError { requested: name.to_string() })
}

/// [`exporter_by_name`], with an explicit pixel size applied to the
/// size-aware backends (`svg`, `treemap`, `tiled`). The other backends emit
/// resolution-independent geometry or text and are returned as-is. This is
/// the lookup render services should use: a pipeline's
/// `set_svg_size` only configures its own `svg()` convenience stage, not an
/// externally constructed exporter.
pub fn exporter_by_name_sized(
    name: &str,
    width_px: f64,
    height_px: f64,
) -> Result<Box<dyn Exporter>, UnknownExporterError> {
    let exporter = exporter_by_name(name)?;
    Ok(match exporter.name() {
        "svg" => Box::new(Svg::new(width_px, height_px)),
        "treemap" => Box::new(TreemapSvg::new(width_px, height_px)),
        "tiled" => Box::new(TiledSvg::new(width_px, height_px)),
        _ => exporter,
    })
}

/// Error returned by [`exporter_by_name`] when no built-in backend answers
/// to the requested name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownExporterError {
    requested: String,
}

impl UnknownExporterError {
    /// The name that was requested, verbatim (before lowercasing).
    pub fn requested(&self) -> &str {
        &self.requested
    }

    /// The names that *would* have been accepted ([`exporter_names`]).
    pub fn known(&self) -> Vec<&'static str> {
        exporter_names()
    }
}

impl std::fmt::Display for UnknownExporterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown exporter backend {:?}; expected one of: {}",
            self.requested,
            exporter_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownExporterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn sample_stages() -> (SuperScalarTree, TerrainLayout, TerrainMesh) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let g = b.build();
        let scalar = vec![2.0, 2.0, 2.0, 1.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        (tree, layout, mesh)
    }

    #[test]
    fn every_builtin_backend_renders_nonempty_deterministic_output() {
        let (tree, layout, mesh) = sample_stages();
        let timings = [SceneTiming { stage: "tree", seconds: 0.25 }];
        let scene = RenderScene::new(&tree, &layout, &mesh).with_timings(&timings);
        for exporter in builtin_exporters() {
            // Bytes, not `export_string`: the `scene` backend is binary.
            let render = || {
                let mut out = Vec::new();
                exporter.write_to(&scene, &mut out).unwrap();
                out
            };
            let once = render();
            let twice = render();
            assert!(!once.is_empty(), "backend {} emitted nothing", exporter.name());
            assert_eq!(once, twice, "backend {} is not deterministic", exporter.name());
            assert!(!exporter.file_extension().starts_with('.'));
        }
    }

    #[test]
    fn backends_resolve_by_name() {
        for exporter in builtin_exporters() {
            let found = exporter_by_name(exporter.name()).unwrap();
            assert_eq!(found.name(), exporter.name());
        }
        assert_eq!(exporter_by_name("SVG").unwrap().name(), "svg");
        let err = match exporter_by_name("gif") {
            Err(err) => err,
            Ok(_) => panic!("gif must not resolve"),
        };
        assert_eq!(err.requested(), "gif");
        assert_eq!(err.known(), exporter_names());
        let message = err.to_string();
        assert!(message.contains("gif"), "{message}");
        for name in exporter_names() {
            assert!(message.contains(name), "{message} should list {name}");
        }
    }

    #[test]
    fn sized_lookup_applies_pixel_size_to_svg_backends() {
        let (tree, layout, mesh) = sample_stages();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        for name in ["svg", "treemap", "tiled"] {
            let small = exporter_by_name_sized(name, 320.0, 240.0).unwrap();
            let output = small.export_string(&scene).unwrap();
            assert!(output.contains("width=\"320\""), "{name}: {output}");
            assert!(output.contains("height=\"240\""), "{name}: {output}");
            assert_ne!(
                output,
                exporter_by_name(name).unwrap().export_string(&scene).unwrap(),
                "{name}: the size must change the artifact"
            );
        }
        // Resolution-independent backends are untouched by the size.
        let obj = exporter_by_name_sized("obj", 320.0, 240.0).unwrap();
        assert_eq!(
            obj.export_string(&scene).unwrap(),
            exporter_by_name("obj").unwrap().export_string(&scene).unwrap()
        );
        assert!(exporter_by_name_sized("gif", 320.0, 240.0).is_err());
    }

    #[test]
    fn every_registered_backend_honors_the_sized_lookup() {
        // Regression: a size-aware backend registered in
        // `builtin_exporters` but missed by `exporter_by_name_sized`'s
        // match would silently ignore the request's pixel size. Every
        // backend whose artifact carries a pixel size must change it;
        // every other backend must produce byte-identical output.
        let (tree, layout, mesh) = sample_stages();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        for exporter in builtin_exporters() {
            let name = exporter.name();
            let sized = exporter_by_name_sized(name, 128.0, 96.0).unwrap();
            assert_eq!(sized.name(), name);
            assert_eq!(sized.file_extension(), exporter.file_extension());
            let default_bytes = {
                let mut out = Vec::new();
                exporter.write_to(&scene, &mut out).unwrap();
                out
            };
            let sized_bytes = {
                let mut out = Vec::new();
                sized.write_to(&scene, &mut out).unwrap();
                out
            };
            let size_aware = ["svg", "treemap", "tiled"].contains(&name);
            if size_aware {
                assert_ne!(
                    sized_bytes, default_bytes,
                    "{name} must honor the requested pixel size"
                );
                let text = String::from_utf8(sized_bytes).unwrap();
                assert!(text.contains("width=\"128\""), "{name}: {text}");
                assert!(text.contains("height=\"96\""), "{name}: {text}");
            } else {
                assert_eq!(
                    sized_bytes, default_bytes,
                    "{name} is resolution-independent and must ignore the size"
                );
            }
        }
    }

    #[test]
    fn io_errors_surface_as_terrain_errors_not_panics() {
        struct FailingWriter;
        impl io::Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (tree, layout, mesh) = sample_stages();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        for exporter in builtin_exporters() {
            let err = exporter.write_to(&scene, &mut FailingWriter).unwrap_err();
            assert!(err.to_string().contains("pipe closed"), "{}: {err}", exporter.name());
        }
    }
}
