//! SVG backends: the oblique-projected 3D terrain view ([`Svg`]) and the flat
//! treemap view ([`TreemapSvg`]).
//!
//! The 3D view uses a cabinet (oblique) projection: `sx = x + depth·cos(30°)·y`
//! and `sy = -z + depth·sin(30°)·y`, with faces painted back-to-front
//! (painter's algorithm ordered by the face's mean `y`, then mean `z`). This
//! is a faithful static stand-in for the paper's rotatable OpenGL view: the
//! projection direction plays the role of the camera angle.

use super::{Exporter, RenderScene};
use crate::error::TerrainResult;
use crate::mesh::TerrainMesh;
use crate::treemap::{build_treemap, Treemap};
use std::io::Write;

/// The 3D terrain backend: streams the oblique-projected mesh as an SVG
/// document. Output is byte-identical to the historical [`terrain_to_svg`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Svg {
    /// Output width in pixels.
    pub width_px: f64,
    /// Output height in pixels.
    pub height_px: f64,
}

impl Default for Svg {
    fn default() -> Self {
        Svg { width_px: 900.0, height_px: 700.0 }
    }
}

impl Svg {
    /// A backend with an explicit pixel size.
    pub fn new(width_px: f64, height_px: f64) -> Self {
        Svg { width_px, height_px }
    }
}

impl Exporter for Svg {
    fn name(&self) -> &'static str {
        "svg"
    }

    fn file_extension(&self) -> &'static str {
        "svg"
    }

    fn write_to(
        &self,
        scene: &RenderScene<'_>,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        write_terrain_svg(scene.mesh, self.width_px, self.height_px, writer)
    }
}

/// The flat 2D treemap backend (Figure 5(a)): builds the treemap from the
/// scene's tree and layout and streams it as an SVG document. Output is
/// byte-identical to the historical [`treemap_to_svg`] over the same treemap.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TreemapSvg {
    /// Output width in pixels.
    pub width_px: f64,
    /// Output height in pixels.
    pub height_px: f64,
}

impl Default for TreemapSvg {
    fn default() -> Self {
        TreemapSvg { width_px: 900.0, height_px: 700.0 }
    }
}

impl TreemapSvg {
    /// A backend with an explicit pixel size.
    pub fn new(width_px: f64, height_px: f64) -> Self {
        TreemapSvg { width_px, height_px }
    }
}

impl Exporter for TreemapSvg {
    fn name(&self) -> &'static str {
        "treemap"
    }

    fn file_extension(&self) -> &'static str {
        "svg"
    }

    fn write_to(
        &self,
        scene: &RenderScene<'_>,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        let map = build_treemap(scene.tree, scene.layout);
        write_treemap_svg(&map, self.width_px, self.height_px, writer)
    }
}

/// Stream a treemap as an SVG document of the given pixel size.
fn write_treemap_svg(
    map: &Treemap,
    width_px: f64,
    height_px: f64,
    out: &mut dyn Write,
) -> TerrainResult<()> {
    // Determine the layout extent to scale into the pixel viewport.
    let (mut max_x, mut max_y) = (1e-9f64, 1e-9f64);
    for cell in &map.cells {
        max_x = max_x.max(cell.rect.x1);
        max_y = max_y.max(cell.rect.y1);
    }
    let sx = width_px / max_x;
    let sy = height_px / max_y;

    writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    )?;
    out.write_all(b"<!-- graph-terrain 2D treemap -->\n")?;
    for cell in &map.cells {
        writeln!(
            out,
            r##"  <rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" stroke="#222222" stroke-width="0.5"><title>node {} scalar {:.3} members {}</title></rect>"##,
            cell.rect.x0 * sx,
            (max_y - cell.rect.y1) * sy,
            cell.rect.width() * sx,
            cell.rect.height() * sy,
            cell.color.hex(),
            cell.node,
            cell.scalar,
            cell.subtree_members,
        )?;
    }
    out.write_all(b"</svg>\n")?;
    Ok(())
}

/// Stream a terrain mesh as an SVG document using an oblique projection.
fn write_terrain_svg(
    mesh: &TerrainMesh,
    width_px: f64,
    height_px: f64,
    out: &mut dyn Write,
) -> TerrainResult<()> {
    let Some((min, max)) = mesh.bounds() else {
        writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}"/>"#
        )?;
        return Ok(());
    };

    // Oblique projection parameters.
    let depth = 0.45f64;
    let (cos_a, sin_a) = (30f64.to_radians().cos(), 30f64.to_radians().sin());
    let project =
        |x: f64, y: f64, z: f64| -> (f64, f64) { (x + depth * cos_a * y, -z - depth * sin_a * y) };

    // Projected bounding box for scaling.
    let mut pmin = (f64::INFINITY, f64::INFINITY);
    let mut pmax = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for v in &mesh.vertices {
        let p = project(v.x, v.y, v.z);
        pmin = (pmin.0.min(p.0), pmin.1.min(p.1));
        pmax = (pmax.0.max(p.0), pmax.1.max(p.1));
    }
    let _ = (min, max);
    let span_x = (pmax.0 - pmin.0).max(1e-9);
    let span_y = (pmax.1 - pmin.1).max(1e-9);
    let scale = (width_px / span_x).min(height_px / span_y) * 0.95;
    let to_px = |p: (f64, f64)| -> (f64, f64) {
        (
            (p.0 - pmin.0) * scale + (width_px - span_x * scale) / 2.0,
            (p.1 - pmin.1) * scale + (height_px - span_y * scale) / 2.0,
        )
    };

    // Painter's algorithm: sort triangles by depth (far to near), then height.
    let mut order: Vec<usize> = (0..mesh.triangles.len()).collect();
    let depth_key = |i: usize| -> (f64, f64) {
        let t = &mesh.triangles[i];
        let mean_y = t.indices.iter().map(|&v| mesh.vertices[v as usize].y).sum::<f64>() / 3.0;
        let mean_z = t.indices.iter().map(|&v| mesh.vertices[v as usize].z).sum::<f64>() / 3.0;
        (mean_y, mean_z)
    };
    order.sort_by(|&a, &b| {
        let (ya, za) = depth_key(a);
        let (yb, zb) = depth_key(b);
        yb.total_cmp(&ya).then(za.total_cmp(&zb))
    });

    writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    )?;
    out.write_all(b"<!-- graph-terrain 3D terrain (oblique projection) -->\n")?;
    for i in order {
        let t = &mesh.triangles[i];
        let pts: Vec<String> = t
            .indices
            .iter()
            .map(|&v| {
                let vert = &mesh.vertices[v as usize];
                let p = to_px(project(vert.x, vert.y, vert.z));
                format!("{:.2},{:.2}", p.0, p.1)
            })
            .collect();
        writeln!(
            out,
            r#"  <polygon points="{}" fill="{}" stroke="none"/>"#,
            pts.join(" "),
            t.color.hex()
        )?;
    }
    out.write_all(b"</svg>\n")?;
    Ok(())
}

/// Render a treemap to an SVG document of the given pixel size.
#[deprecated(
    since = "0.3.0",
    note = "use the `TreemapSvg` exporter with a `RenderScene` \
            (`TreemapSvg::new(w, h).write_to(&scene, &mut writer)`)"
)]
pub fn treemap_to_svg(map: &Treemap, width_px: f64, height_px: f64) -> String {
    let mut out = Vec::new();
    write_treemap_svg(map, width_px, height_px, &mut out)
        .expect("writing to a Vec<u8> cannot fail");
    String::from_utf8(out).expect("SVG output is UTF-8")
}

/// Render a terrain mesh to an SVG document using an oblique projection.
#[deprecated(
    since = "0.3.0",
    note = "use the `Svg` exporter with a `RenderScene` \
            (`Svg::new(w, h).write_to(&scene, &mut writer)`)"
)]
pub fn terrain_to_svg(mesh: &TerrainMesh, width_px: f64, height_px: f64) -> String {
    let mut out = Vec::new();
    write_terrain_svg(mesh, width_px, height_px, &mut out)
        .expect("writing to a Vec<u8> cannot fail");
    String::from_utf8(out).expect("SVG output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig, TerrainLayout};
    use crate::mesh::{build_terrain_mesh, MeshConfig};
    use measures::core_numbers;
    use scalarfield::{build_super_tree, vertex_scalar_tree, SuperScalarTree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn pipeline() -> (SuperScalarTree, TerrainLayout, TerrainMesh, Treemap) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let g = b.build();
        let cores = core_numbers(&g);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        let map = build_treemap(&tree, &layout);
        (tree, layout, mesh, map)
    }

    #[test]
    fn treemap_svg_has_one_rect_per_cell() {
        let (tree, layout, mesh, map) = pipeline();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let svg = TreemapSvg::new(640.0, 480.0).export_string(&scene).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, map.cell_count());
    }

    #[test]
    fn terrain_svg_has_one_polygon_per_triangle() {
        let (tree, layout, mesh, _) = pipeline();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let svg = Svg::new(800.0, 600.0).export_string(&scene).unwrap();
        let polygons = svg.matches("<polygon").count();
        assert_eq!(polygons, mesh.triangle_count());
        // All emitted coordinates are finite numbers within the viewport
        // (loosely checked: no NaN/inf tokens).
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_are_byte_identical_to_the_backends() {
        let (tree, layout, mesh, map) = pipeline();
        let scene = RenderScene::new(&tree, &layout, &mesh);
        let streamed = Svg::new(800.0, 600.0).export_string(&scene).unwrap();
        assert_eq!(streamed, terrain_to_svg(&mesh, 800.0, 600.0));
        let streamed = TreemapSvg::new(640.0, 480.0).export_string(&scene).unwrap();
        assert_eq!(streamed, treemap_to_svg(&map, 640.0, 480.0));
    }

    #[test]
    #[allow(deprecated)]
    fn empty_mesh_still_produces_valid_svg() {
        let svg = terrain_to_svg(&TerrainMesh::default(), 100.0, 100.0);
        assert!(svg.contains("<svg"));
    }
}
