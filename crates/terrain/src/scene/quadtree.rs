//! A flat-arena quadtree over scene item rectangles.
//!
//! Built once per scene, queried per tile request. The arena keeps every
//! node in one `Vec` (the four children of an interior node are allocated
//! contiguously, addressed by the index of the first) and every item id in
//! one CSR `Vec`, so a build allocates O(nodes) and a query walks
//! indices — no boxing, no pointer chasing, no recursion.
//!
//! Invariants (checked by `debug_assert` and the property tests):
//!
//! * every item id appears in exactly one node's item range — at the
//!   deepest node whose quadrant fully contains it on both axes (items
//!   straddling a split midline stay at the splitting node);
//! * a node is split only while it holds more than `LEAF_CAP` items and
//!   is shallower than `MAX_DEPTH`, so degenerate inputs (all items
//!   stacked on one point) terminate;
//! * within a node, item ids keep their insertion order, making
//!   [`query`](Quadtree::query) output deterministic before the final
//!   sort even matters.
//!
//! `query(viewport)` is `O(log n + k)` for usual scenes: the walk visits
//! the `O(log n)` nodes on the viewport's boundary path plus the nodes
//! fully inside it, which is proportional to the `k` reported items.

use crate::layout2d::Rect;

/// Stop splitting below this many items per node.
const LEAF_CAP: usize = 16;
/// Hard depth bound so identical/overlapping rects cannot recurse forever.
const MAX_DEPTH: u32 = 12;

/// Sentinel for "no children" in a [`Node`].
const NO_CHILDREN: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    /// The quadrant of layout space this node owns.
    region: Rect,
    /// Index of the first of four contiguous children, or [`NO_CHILDREN`].
    children: u32,
    /// Start of this node's item ids in [`Quadtree::item_ids`].
    start: u32,
    /// Number of item ids at this node.
    len: u32,
}

/// The flat-arena quadtree. Indices returned by queries refer to the item
/// slice the tree was built over.
#[derive(Clone, Debug)]
pub struct Quadtree {
    nodes: Vec<Node>,
    item_ids: Vec<u32>,
    /// A copy of each item's rectangle, indexed by item id (the query hot
    /// path reads these; keeping them inline avoids chasing the caller's
    /// slice through a lifetime).
    rects: Vec<Rect>,
    /// Each item's nesting depth, for [`hit_test`](Self::hit_test)'s
    /// deepest-wins rule.
    depths: Vec<u32>,
}

impl Quadtree {
    /// Build the tree over `rects` (one per scene item, in scene order)
    /// within `bounds`. `depths[i]` is item `i`'s nesting depth, used by
    /// [`hit_test`](Self::hit_test) to prefer the most nested item.
    pub fn build(bounds: Rect, rects: &[Rect], depths: &[u32]) -> Quadtree {
        assert_eq!(rects.len(), depths.len(), "one depth per rect");
        debug_assert!(
            rects.iter().all(|r| bounds.contains_rect(r)),
            "every indexed rect must lie within the tree bounds"
        );
        // Interim per-node item lists; flattened into CSR afterwards.
        let mut node_items: Vec<Vec<u32>> = Vec::new();
        let mut nodes: Vec<Node> = Vec::new();
        nodes.push(Node { region: bounds, children: NO_CHILDREN, start: 0, len: 0 });
        node_items.push((0..rects.len() as u32).collect());

        // (node index, depth) of nodes whose item list may still split.
        let mut work: Vec<(u32, u32)> = vec![(0, 0)];
        while let Some((node_idx, depth)) = work.pop() {
            let candidates = std::mem::take(&mut node_items[node_idx as usize]);
            if candidates.len() <= LEAF_CAP || depth >= MAX_DEPTH {
                node_items[node_idx as usize] = candidates;
                continue;
            }
            let region = nodes[node_idx as usize].region;
            let (mid_x, mid_y) = region.center();
            // Quadrants in (SW, SE, NW, NE) order; an item descends only
            // when one quadrant contains it fully on both axes.
            let quadrants = [
                Rect::new(region.x0, region.y0, mid_x, mid_y),
                Rect::new(mid_x, region.y0, region.x1, mid_y),
                Rect::new(region.x0, mid_y, mid_x, region.y1),
                Rect::new(mid_x, mid_y, region.x1, region.y1),
            ];
            let first_child = nodes.len() as u32;
            for quadrant in quadrants {
                nodes.push(Node { region: quadrant, children: NO_CHILDREN, start: 0, len: 0 });
                node_items.push(Vec::new());
            }
            let mut stuck = Vec::new();
            for id in candidates {
                let r = &rects[id as usize];
                let east = r.x0 >= mid_x;
                let west = r.x1 <= mid_x;
                let north = r.y0 >= mid_y;
                let south = r.y1 <= mid_y;
                let quadrant = match (west || east, south || north) {
                    (true, true) => Some(usize::from(east) + 2 * usize::from(north)),
                    _ => None, // straddles a midline: stays at this node
                };
                match quadrant {
                    Some(q) => node_items[first_child as usize + q].push(id),
                    None => stuck.push(id),
                }
            }
            nodes[node_idx as usize].children = first_child;
            node_items[node_idx as usize] = stuck;
            for q in 0..4u32 {
                work.push((first_child + q, depth + 1));
            }
        }

        // Flatten the per-node lists into one CSR arena.
        let mut item_ids = Vec::with_capacity(rects.len());
        for (node, list) in nodes.iter_mut().zip(&node_items) {
            node.start = item_ids.len() as u32;
            node.len = list.len() as u32;
            item_ids.extend_from_slice(list);
        }
        debug_assert_eq!(item_ids.len(), rects.len(), "every item lands in exactly one node");
        Quadtree { nodes, item_ids, rects: rects.to_vec(), depths: depths.to_vec() }
    }

    /// Number of arena nodes (for diagnostics and invariants tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed items.
    pub fn item_count(&self) -> usize {
        self.rects.len()
    }

    /// All item ids whose rectangle overlaps `viewport` with positive
    /// area (the [`Rect::intersects`] predicate), ascending.
    pub fn query(&self, viewport: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(node_idx) = stack.pop() {
            let node = &self.nodes[node_idx as usize];
            if !node.region.intersects(viewport) {
                continue;
            }
            let ids = &self.item_ids[node.start as usize..(node.start + node.len) as usize];
            for &id in ids {
                if self.rects[id as usize].intersects(viewport) {
                    out.push(id);
                }
            }
            if node.children != NO_CHILDREN {
                for q in 0..4u32 {
                    stack.push(node.children + q);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The deepest item whose rectangle contains the point (inclusive
    /// boundaries), ties broken toward the higher item id — the same
    /// "most nested wins" rule as `TerrainLayout::node_at_point`, keyed on
    /// nesting depth instead of scalar height.
    pub fn hit_test(&self, x: f64, y: f64) -> Option<u32> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best: Option<(u32, u32)> = None; // (depth, id), max wins
        let mut stack = vec![0u32];
        while let Some(node_idx) = stack.pop() {
            let node = &self.nodes[node_idx as usize];
            if !node.region.contains_point(x, y) {
                continue;
            }
            let ids = &self.item_ids[node.start as usize..(node.start + node.len) as usize];
            for &id in ids {
                if self.rects[id as usize].contains_point(x, y) {
                    let key = (self.depths[id as usize], id);
                    if best.map_or(true, |b| key > b) {
                        best = Some(key);
                    }
                }
            }
            if node.children != NO_CHILDREN {
                // A point on a midline is inside more than one quadrant
                // (boundaries are inclusive) — descend into all of them.
                for q in 0..4u32 {
                    stack.push(node.children + q);
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The obviously-correct references the tree must agree with.
    fn oracle_query(rects: &[Rect], viewport: &Rect) -> Vec<u32> {
        (0..rects.len() as u32).filter(|&i| rects[i as usize].intersects(viewport)).collect()
    }

    fn oracle_hit(rects: &[Rect], depths: &[u32], x: f64, y: f64) -> Option<u32> {
        (0..rects.len() as u32)
            .filter(|&i| rects[i as usize].contains_point(x, y))
            .max_by_key(|&i| (depths[i as usize], i))
    }

    fn rect_strategy() -> impl Strategy<Value = Rect> {
        // Coordinates snapped to a coarse grid so touching edges, exact
        // containment and midline straddles all actually occur.
        (0u32..32, 0u32..32, 1u32..12, 1u32..12).prop_map(|(x, y, w, h)| {
            let (x0, y0) = (x as f64 / 32.0, y as f64 / 32.0);
            Rect::new(x0, y0, (x0 + w as f64 / 32.0).min(1.0), (y0 + h as f64 / 32.0).min(1.0))
        })
    }

    proptest! {
        #[test]
        fn query_matches_linear_scan_oracle(
            rects in proptest::collection::vec(rect_strategy(), 0..120),
            viewport in rect_strategy(),
        ) {
            let depths: Vec<u32> = (0..rects.len() as u32).map(|i| i % 7).collect();
            let tree = Quadtree::build(Rect::new(0.0, 0.0, 1.0, 1.0), &rects, &depths);
            prop_assert_eq!(tree.query(&viewport), oracle_query(&rects, &viewport));
        }

        #[test]
        fn hit_test_matches_linear_scan_oracle(
            rects in proptest::collection::vec(rect_strategy(), 0..120),
            px in 0u32..=32,
            py in 0u32..=32,
        ) {
            let depths: Vec<u32> = (0..rects.len() as u32).map(|i| (i * 13) % 5).collect();
            let tree = Quadtree::build(Rect::new(0.0, 0.0, 1.0, 1.0), &rects, &depths);
            // Grid-aligned points land exactly on rect boundaries and
            // split midlines, the adversarial case for quadrant descent.
            let (x, y) = (px as f64 / 32.0, py as f64 / 32.0);
            prop_assert_eq!(tree.hit_test(x, y), oracle_hit(&rects, &depths, x, y));
        }
    }

    #[test]
    fn identical_stacked_rects_terminate_and_stay_queryable() {
        let rects = vec![Rect::new(0.4, 0.4, 0.6, 0.6); 200];
        let depths = vec![1u32; 200];
        let tree = Quadtree::build(Rect::new(0.0, 0.0, 1.0, 1.0), &rects, &depths);
        assert_eq!(tree.item_count(), 200);
        let hits = tree.query(&Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(hits.len(), 200);
        assert_eq!(tree.hit_test(0.5, 0.5), Some(199), "ties break to the higher id");
    }

    #[test]
    fn empty_tree_answers_empty() {
        let tree = Quadtree::build(Rect::new(0.0, 0.0, 1.0, 1.0), &[], &[]);
        assert!(tree.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert_eq!(tree.hit_test(0.5, 0.5), None);
        assert_eq!(tree.item_count(), 0);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn query_outside_the_domain_is_empty() {
        let rects = vec![Rect::new(0.1, 0.1, 0.9, 0.9)];
        let tree = Quadtree::build(Rect::new(0.0, 0.0, 1.0, 1.0), &rects, &[0]);
        assert!(tree.query(&Rect::new(2.0, 2.0, 3.0, 3.0)).is_empty());
        assert_eq!(tree.hit_test(-1.0, 0.5), None);
    }
}
