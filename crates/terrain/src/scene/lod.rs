//! The level-of-detail layout pass: `layout_super_tree` extended with a
//! validated [`LodConfig`] so a million-node super tree lays out to a
//! *bounded visible set* instead of one rectangle per node.
//!
//! The pass walks the tree with exactly the slice-and-dice arithmetic of
//! [`crate::layout2d`] (same margin ring, same area scaling, same running
//! cursor, same hairline sibling gap) but makes three additional decisions
//! per node, all phrased in *pixels at the finest LOD* so they are
//! resolution-independent in layout space:
//!
//! * **culling** — a node whose rectangle stays below `min_side` /
//!   `min_area` pixels even at the finest LOD is dropped together with its
//!   subtree (children are strictly nested, so they can only be smaller);
//! * **recursion gating** — children are laid out only while the parent's
//!   inner rectangle is at least `recurse_min_side` pixels at the finest
//!   LOD, which bounds the walk long before a 10M-edge tree is exhausted;
//! * **child capping** — a node with more than `max_children` children
//!   keeps the heaviest ones (by subtree member count, ties to the lower
//!   node id) and redistributes the tail into one synthetic *"other"
//!   bucket* item that occupies the tail's combined area share.
//!
//! Every emitted item additionally carries the accumulated cushion surface
//! coefficients `[sx1, sx2, sy1, sy2]` of van Wijk & van de Wetering,
//! *Cushion Treemaps* (1999): each nesting level adds a parabolic ridge of
//! height `cushion_height * cushion_falloff^depth` over the item's extent
//! on both axes, and renderers shade by the surface normal
//! `(-dz/dx, -dz/dy, 1)`.
//!
//! The pass is a single serial walk over the (already deterministic) super
//! tree, so its output is bit-identical across thread counts by
//! construction — the property the tile cache keys on.

use crate::error::{TerrainError, TerrainResult};
use crate::layout2d::{LayoutConfig, Rect};
use scalarfield::SuperScalarTree;

/// Level-of-detail knobs of the scene pass. All pixel thresholds are
/// evaluated at the finest LOD (`max_lod`), where one layout domain spans
/// `tile_px * 2^max_lod` pixels per axis.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LodConfig {
    /// Edge length of one square tile, in pixels.
    pub tile_px: u32,
    /// Finest LOD level; the tile grid at zoom `z` has `2^z × 2^z` tiles
    /// and zooms past `max_lod` do not exist.
    pub max_lod: u8,
    /// Cull items below this area (px² at the finest LOD).
    pub min_area: f64,
    /// Cull items below this side length (px at the finest LOD).
    pub min_side: f64,
    /// Stop recursing into children once the parent's inner rectangle is
    /// below this side length (px at the finest LOD).
    pub recurse_min_side: f64,
    /// Per-node child cap; the tail beyond the `max_children - 1` heaviest
    /// children collapses into one "other" bucket item.
    pub max_children: usize,
    /// Cushion ridge height at depth 0 (van Wijk & van de Wetering 1999).
    pub cushion_height: f64,
    /// Multiplicative ridge decay per nesting level, in `(0, 1]`.
    pub cushion_falloff: f64,
}

impl Default for LodConfig {
    fn default() -> Self {
        LodConfig {
            tile_px: 256,
            max_lod: 8,
            min_area: 49.0,
            min_side: 3.0,
            recurse_min_side: 12.0,
            max_children: 32,
            cushion_height: 0.5,
            cushion_falloff: 0.75,
        }
    }
}

impl LodConfig {
    /// Validate the configuration ([`TerrainError::Config`] on violation).
    pub fn validate(&self) -> TerrainResult<()> {
        let fail = |message: String| Err(TerrainError::Config { what: "lod config", message });
        if self.tile_px == 0 || self.tile_px > 8192 {
            return fail(format!("tile_px must lie in [1, 8192], got {}", self.tile_px));
        }
        if self.max_lod > 16 {
            return fail(format!("max_lod must be at most 16, got {}", self.max_lod));
        }
        for (name, v) in [("min_area", self.min_area), ("min_side", self.min_side)] {
            if !v.is_finite() || v < 0.0 {
                return fail(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if !self.recurse_min_side.is_finite() || self.recurse_min_side < 0.0 {
            return fail(format!(
                "recurse_min_side must be finite and non-negative, got {}",
                self.recurse_min_side
            ));
        }
        if self.max_children < 2 {
            return fail(format!("max_children must be at least 2, got {}", self.max_children));
        }
        if !self.cushion_height.is_finite() || self.cushion_height < 0.0 {
            return fail(format!(
                "cushion_height must be finite and non-negative, got {}",
                self.cushion_height
            ));
        }
        if !self.cushion_falloff.is_finite()
            || !(0.0..=1.0).contains(&self.cushion_falloff)
            || self.cushion_falloff == 0.0
        {
            return fail(format!(
                "cushion_falloff must lie in (0, 1], got {}",
                self.cushion_falloff
            ));
        }
        Ok(())
    }

    /// Pixels per layout-space unit on each axis at LOD `lod`: the whole
    /// domain spans `tile_px * 2^lod` pixels per axis.
    pub fn pixel_scale(&self, lod: u8, layout: &LayoutConfig) -> (f64, f64) {
        let px = self.tile_px as f64 * (1u64 << u32::from(lod)) as f64;
        (px / layout.width, px / layout.height)
    }
}

/// One visible element of the retained scene: a laid-out super node (or a
/// collapsed "other" bucket of sibling tails), with everything a tile
/// renderer needs to paint it without touching the tree again.
#[derive(Clone, Debug, PartialEq)]
pub struct SceneItem {
    /// The super node this item renders, or `None` for an "other" bucket
    /// aggregating capped-off siblings.
    pub node: Option<u32>,
    /// The item's boundary rectangle in layout space.
    pub rect: Rect,
    /// Nesting depth (roots at 0; an "other" bucket sits at its collapsed
    /// siblings' depth).
    pub depth: u32,
    /// Terrain height: the node's scalar, or the maximum scalar over the
    /// collapsed tail for an "other" bucket.
    pub height: f64,
    /// Subtree members this item stands for (the area weight).
    pub members: u64,
    /// Coarsest LOD at which the item is at least `min_side` / `min_area`
    /// pixels — tiles at zoom `z` draw exactly the items with
    /// `min_visible_lod <= z`.
    pub min_visible_lod: u8,
    /// Accumulated cushion surface coefficients `[sx1, sx2, sy1, sy2]`:
    /// the shading surface is `z = sx2·x² + sx1·x + sy2·y² + sy1·y`.
    pub surface: [f64; 4],
}

/// Whether a rectangle passes the cull thresholds at `lod`.
fn visible_at(rect: &Rect, lod: u8, layout: &LayoutConfig, config: &LodConfig) -> bool {
    let (sx, sy) = config.pixel_scale(lod, layout);
    let w = rect.width() * sx;
    let h = rect.height() * sy;
    w >= config.min_side && h >= config.min_side && w * h >= config.min_area
}

/// The coarsest LOD at which the rectangle is visible, given that it is
/// visible at `max_lod` (visibility is monotone in the LOD because the
/// pixel scale doubles per level).
fn min_visible_lod(rect: &Rect, layout: &LayoutConfig, config: &LodConfig) -> u8 {
    for lod in 0..config.max_lod {
        if visible_at(rect, lod, layout, config) {
            return lod;
        }
    }
    config.max_lod
}

/// One van Wijk parabolic ridge of height `h` over `[lo, hi]`, as the
/// `(Δs1, Δs2)` increments of one axis' coefficient pair.
fn ridge(h: f64, lo: f64, hi: f64) -> (f64, f64) {
    let extent = hi - lo;
    if extent <= 0.0 || h == 0.0 {
        return (0.0, 0.0);
    }
    (4.0 * h * (hi + lo) / extent, -4.0 * h / extent)
}

/// The cushion surface of an item at `depth` with extent `rect`, derived
/// from its parent's surface.
fn cushion_surface(parent: &[f64; 4], rect: &Rect, depth: u32, config: &LodConfig) -> [f64; 4] {
    let mut surface = *parent;
    let h = config.cushion_height * config.cushion_falloff.powi(depth as i32);
    let (dx1, dx2) = ridge(h, rect.x0, rect.x1);
    let (dy1, dy2) = ridge(h, rect.y0, rect.y1);
    surface[0] += dx1;
    surface[1] += dx2;
    surface[2] += dy1;
    surface[3] += dy2;
    surface
}

/// Run the LOD layout pass over a super tree. Both configurations are
/// assumed validated by the caller ([`crate::scene::Scene::build`] does).
///
/// Items come out in depth-first walk order: a parent always precedes every
/// item of its subtree, so painting items in index order is a correct
/// painter's algorithm for the nested rectangles.
pub(crate) fn lod_layout(
    tree: &SuperScalarTree,
    layout: &LayoutConfig,
    config: &LodConfig,
) -> Vec<SceneItem> {
    let subtree_members = tree.subtree_member_counts();
    let domain = Rect::new(0.0, 0.0, layout.width, layout.height);

    // Roots partition the domain horizontally by subtree weight — the same
    // arithmetic as `layout2d::split_rect`, inlined as a running cursor.
    let root_total: f64 = tree.roots().iter().map(|&r| subtree_members[r as usize] as f64).sum();
    let mut stack: Vec<(u32, Rect, u32, [f64; 4])> = Vec::new();
    let mut cursor = 0.0f64;
    for &root in tree.roots() {
        let w = subtree_members[root as usize] as f64;
        let fraction =
            if root_total > 0.0 { w / root_total } else { 1.0 / tree.roots().len() as f64 };
        let next = cursor + fraction;
        let rect = Rect::new(
            domain.x0 + cursor * domain.width(),
            domain.y0,
            domain.x0 + next * domain.width(),
            domain.y1,
        );
        cursor = next;
        stack.push((root, rect, 0, [0.0; 4]));
    }
    // Match `layout_validated`'s LIFO order exactly: it pops roots from the
    // end of the stack, so reverse to process the first root first.
    stack.reverse();

    let mut items = Vec::new();
    let mut keep: Vec<u32> = Vec::new();
    while let Some((node, rect, depth, parent_surface)) = stack.pop() {
        if !visible_at(&rect, config.max_lod, layout, config) {
            // Too small even at the finest LOD; the whole subtree is
            // strictly nested inside, so nothing below can be visible.
            continue;
        }
        let surface = cushion_surface(&parent_surface, &rect, depth, config);
        items.push(SceneItem {
            node: Some(node),
            rect,
            depth,
            height: tree.scalar(node),
            members: subtree_members[node as usize] as u64,
            min_visible_lod: min_visible_lod(&rect, layout, config),
            surface,
        });

        let children = tree.children(node);
        if children.is_empty() {
            continue;
        }
        let own = tree.members(node).len() as f64;
        let child_total: f64 = children.iter().map(|&c| subtree_members[c as usize] as f64).sum();
        let inner_full = rect.shrunk(layout.margin_fraction);
        let share = if child_total + own > 0.0 { child_total / (child_total + own) } else { 0.0 };
        let inner = scale_rect_area(&inner_full, share.max(0.2));
        {
            // Recursion gate: once the inner rectangle is below
            // `recurse_min_side` pixels at the finest LOD, no child can be
            // individually explorable — stop walking this branch.
            let (sx, sy) = config.pixel_scale(config.max_lod, layout);
            let side = (inner.width() * sx).min(inner.height() * sy);
            if side < config.recurse_min_side {
                continue;
            }
        }

        // Child cap: keep the heaviest `max_children - 1` children (ties
        // broken toward the lower node id), collapse the rest into one
        // "other" bucket that takes the tail's combined share at the end
        // of the cursor walk.
        keep.clear();
        let capped = children.len() > config.max_children;
        let (kept_children, tail_members, tail_height, tail_count) = if capped {
            let mut order: Vec<u32> = children.to_vec();
            order.sort_by(|&a, &b| {
                subtree_members[b as usize].cmp(&subtree_members[a as usize]).then(a.cmp(&b))
            });
            order.truncate(config.max_children - 1);
            keep.extend_from_slice(&order);
            keep.sort_unstable();
            let mut tail_members = 0u64;
            let mut tail_height = f64::NEG_INFINITY;
            let mut tail_count = 0u64;
            for &c in children {
                if keep.binary_search(&c).is_err() {
                    tail_members += subtree_members[c as usize] as u64;
                    tail_height = tail_height.max(tree.scalar(c));
                    tail_count += 1;
                }
            }
            (keep.as_slice(), tail_members, tail_height, tail_count)
        } else {
            (children, 0, f64::NEG_INFINITY, 0)
        };

        let horizontal = depth % 2 == 0;
        // The running cursor, bit-identical to `layout_validated` when the
        // cap does not trigger: same fractions of the same totals, summed
        // in the same (arena) order.
        let mut cursor = 0.0f64;
        let slots = kept_children.len() + usize::from(capped);
        let place = |weight: f64, cursor: &mut f64| -> Rect {
            let fraction =
                if child_total > 0.0 { weight / child_total } else { 1.0 / slots as f64 };
            let next = *cursor + fraction;
            let r = if horizontal {
                Rect::new(
                    inner.x0 + *cursor * inner.width(),
                    inner.y0,
                    inner.x0 + next * inner.width(),
                    inner.y1,
                )
            } else {
                Rect::new(
                    inner.x0,
                    inner.y0 + *cursor * inner.height(),
                    inner.x1,
                    inner.y0 + next * inner.height(),
                )
            };
            *cursor = next;
            r
        };
        // Children keep their arena order (the order the full layout walks
        // them in); the other bucket takes the trailing slot.
        let mut pending = Vec::with_capacity(kept_children.len());
        for &c in kept_children {
            let child_rect = place(subtree_members[c as usize] as f64, &mut cursor);
            pending.push((c, child_rect.shrunk(0.02)));
        }
        if capped && tail_count > 0 {
            let other_rect = place(tail_members as f64, &mut cursor).shrunk(0.02);
            if visible_at(&other_rect, config.max_lod, layout, config) {
                let other_surface = cushion_surface(&surface, &other_rect, depth + 1, config);
                items.push(SceneItem {
                    node: None,
                    rect: other_rect,
                    depth: depth + 1,
                    height: tail_height,
                    members: tail_members,
                    min_visible_lod: min_visible_lod(&other_rect, layout, config),
                    surface: other_surface,
                });
            }
        }
        // Push in reverse so the stack pops children in arena order,
        // mirroring `layout_validated`'s traversal.
        for (c, r) in pending.into_iter().rev() {
            stack.push((c, r, depth + 1, surface));
        }
    }
    items
}

/// Shrink a rectangle about its center so its area becomes `fraction` of
/// the original — must stay bit-identical to `layout2d::scale_rect_area`.
fn scale_rect_area(rect: &Rect, fraction: f64) -> Rect {
    let fraction = fraction.clamp(0.0, 1.0);
    let scale = fraction.sqrt();
    let (cx, cy) = rect.center();
    let half_w = rect.width() / 2.0 * scale;
    let half_h = rect.height() / 2.0 * scale;
    Rect::new(cx - half_w, cy - half_h, cx + half_w, cy + half_h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_bad_knobs_are_rejected() {
        LodConfig::default().validate().unwrap();
        for bad in [
            LodConfig { tile_px: 0, ..Default::default() },
            LodConfig { tile_px: 9000, ..Default::default() },
            LodConfig { max_lod: 17, ..Default::default() },
            LodConfig { min_area: -1.0, ..Default::default() },
            LodConfig { min_side: f64::NAN, ..Default::default() },
            LodConfig { recurse_min_side: f64::INFINITY, ..Default::default() },
            LodConfig { max_children: 1, ..Default::default() },
            LodConfig { cushion_height: -0.5, ..Default::default() },
            LodConfig { cushion_falloff: 0.0, ..Default::default() },
            LodConfig { cushion_falloff: 1.5, ..Default::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn pixel_scale_doubles_per_lod() {
        let config = LodConfig::default();
        let layout = LayoutConfig::default();
        let (sx0, sy0) = config.pixel_scale(0, &layout);
        let (sx1, sy1) = config.pixel_scale(1, &layout);
        assert_eq!(sx0, 256.0);
        assert_eq!(sy0, 256.0);
        assert_eq!(sx1, 2.0 * sx0);
        assert_eq!(sy1, 2.0 * sy0);
    }

    #[test]
    fn ridges_accumulate_and_decay_with_depth() {
        let config = LodConfig::default();
        let rect = Rect::new(0.0, 0.0, 1.0, 1.0);
        let base = cushion_surface(&[0.0; 4], &rect, 0, &config);
        assert!(base[1] < 0.0, "x² coefficient must bend downward");
        assert!(base[3] < 0.0, "y² coefficient must bend downward");
        let deeper = cushion_surface(&[0.0; 4], &rect, 3, &config);
        assert!(
            deeper[1].abs() < base[1].abs(),
            "deeper ridges must be shallower: {deeper:?} vs {base:?}"
        );
        // The surface height at the rect center exceeds the edges (a bump).
        let z = |s: &[f64; 4], x: f64, y: f64| s[1] * x * x + s[0] * x + s[3] * y * y + s[2] * y;
        assert!(z(&base, 0.5, 0.5) > z(&base, 0.0, 0.5));
        assert!(z(&base, 0.5, 0.5) > z(&base, 0.5, 1.0));
    }
}
