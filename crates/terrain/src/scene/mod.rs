//! The retained scene: the level-of-detail layer between layout and
//! export that makes large terrains *explorable*.
//!
//! A [`Scene`] is built once from a super scalar tree and then answers
//! viewport questions without touching the tree again:
//!
//! * [`lod`] runs the LOD layout pass — `layout_super_tree`'s
//!   slice-and-dice arithmetic extended with culling, recursion gating,
//!   per-node child capping (tails collapse into "other" buckets) and van
//!   Wijk cushion shading coefficients — producing a bounded list of
//!   [`SceneItem`]s even for million-node trees;
//! * [`quadtree`] indexes the item rectangles in a flat arena for
//!   `O(log n + k)` viewport queries and point hit tests;
//! * [`tile`] fixes the power-of-two tile grid over the layout domain and
//!   the `GTSC` binary scene format streamed to client-side renderers.
//!
//! Everything is deterministic: the pass is one serial walk, the index is
//! built in item order, and a tile's bytes depend only on its
//! [`TileKey`] and the scene — which is exactly the contract the terrain
//! server's byte-exact artifact cache requires of its keys.

pub mod lod;
pub mod quadtree;
pub mod tile;

use std::io;
use std::io::Write as _;

use crate::color::colormap;
use crate::error::{TerrainError, TerrainResult};
use crate::layout2d::{LayoutConfig, Rect};
use scalarfield::SuperScalarTree;

pub use lod::{LodConfig, SceneItem};
pub use quadtree::Quadtree;
pub use tile::{
    decode_gtsc, tile_rect, tiles_overlapping, tiles_per_axis, GtscDocument, GtscHeader, GtscItem,
    TileKey, GTSC_MAGIC, GTSC_VERSION,
};

/// A retained, spatially indexed scene over one super scalar tree.
#[derive(Clone, Debug)]
pub struct Scene {
    items: Vec<SceneItem>,
    index: Quadtree,
    domain: Rect,
    layout_config: LayoutConfig,
    lod_config: LodConfig,
    /// Minimum / maximum item height, the color ramp's range.
    baseline: f64,
    peak: f64,
}

impl Scene {
    /// Run the LOD layout pass over `tree` and index the result. Both
    /// configurations are validated first ([`TerrainError`] on violation,
    /// never a panic).
    pub fn build(
        tree: &SuperScalarTree,
        layout_config: &LayoutConfig,
        lod_config: &LodConfig,
    ) -> TerrainResult<Scene> {
        layout_config.validate()?;
        lod_config.validate()?;
        let items = lod::lod_layout(tree, layout_config, lod_config);
        let domain = Rect::new(0.0, 0.0, layout_config.width, layout_config.height);
        let rects: Vec<Rect> = items.iter().map(|i| i.rect).collect();
        let depths: Vec<u32> = items.iter().map(|i| i.depth).collect();
        let index = Quadtree::build(domain, &rects, &depths);
        let (mut baseline, mut peak) = (f64::INFINITY, f64::NEG_INFINITY);
        for item in &items {
            baseline = baseline.min(item.height);
            peak = peak.max(item.height);
        }
        if items.is_empty() {
            baseline = 0.0;
            peak = 0.0;
        }
        Ok(Scene {
            items,
            index,
            domain,
            layout_config: *layout_config,
            lod_config: *lod_config,
            baseline,
            peak,
        })
    }

    /// The visible set, in depth-first (paint) order.
    pub fn items(&self) -> &[SceneItem] {
        &self.items
    }

    /// Number of scene items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// The layout domain (the zoom-0 tile).
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The layout configuration the scene was built with.
    pub fn layout_config(&self) -> &LayoutConfig {
        &self.layout_config
    }

    /// The LOD configuration the scene was built with.
    pub fn lod_config(&self) -> &LodConfig {
        &self.lod_config
    }

    /// The deepest zoom level tiles exist for.
    pub fn max_zoom(&self) -> u8 {
        self.lod_config.max_lod
    }

    /// The spatial index (exposed for invariants tests and diagnostics).
    pub fn quadtree(&self) -> &Quadtree {
        &self.index
    }

    /// Minimum item height (color ramp low end).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Maximum item height (color ramp high end).
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Item indices overlapping `viewport`, ascending (= paint order).
    pub fn query(&self, viewport: &Rect) -> Vec<u32> {
        self.index.query(viewport)
    }

    /// The most nested item containing the point, if any.
    pub fn hit_test(&self, x: f64, y: f64) -> Option<&SceneItem> {
        self.index.hit_test(x, y).map(|id| &self.items[id as usize])
    }

    /// The tile keys a client needs to cover `viewport` at `zoom`,
    /// row-major from the south-west. Empty when the zoom is past
    /// [`max_zoom`](Self::max_zoom) or the viewport misses the domain.
    pub fn tiles(&self, viewport: &Rect, zoom: u8) -> Vec<TileKey> {
        if zoom > self.max_zoom() {
            return Vec::new();
        }
        tiles_overlapping(&self.domain, viewport, zoom)
    }

    /// The layout-space rectangle of a tile, or `None` when the key is
    /// outside the grid (zoom past the scene's maximum, or tx/ty past the
    /// `2^zoom` axis count) — the server's 404.
    pub fn tile_bounds(&self, key: &TileKey) -> Option<Rect> {
        key.in_range(self.max_zoom()).then(|| tile_rect(&self.domain, key))
    }

    /// The indices of the items a tile draws: overlapping the tile's
    /// rectangle *and* visible at the tile's zoom (`min_visible_lod <=
    /// zoom`), ascending. `None` when the key is out of range.
    pub fn tile_items(&self, key: &TileKey) -> Option<Vec<u32>> {
        let bounds = self.tile_bounds(key)?;
        let mut ids = self.index.query(&bounds);
        ids.retain(|&id| self.items[id as usize].min_visible_lod <= key.zoom);
        Some(ids)
    }

    /// Render one tile as an SVG of `size_px × size_px` pixels. The bytes
    /// depend only on the scene and the key — same key, same bytes — so
    /// the output slots directly into a byte-exact artifact cache.
    pub fn write_tile_svg(
        &self,
        key: &TileKey,
        size_px: u32,
        writer: &mut dyn io::Write,
    ) -> TerrainResult<()> {
        let bounds = self.tile_bounds(key).ok_or_else(|| out_of_range(key, self.max_zoom()))?;
        let ids = self.tile_items(key).expect("bounds checked");
        self.write_view_svg(&bounds, &ids, size_px, size_px, writer)
    }

    /// Render one tile as a `GTSC` binary document (the tile stamp
    /// section records the key and its rectangle).
    pub fn write_tile_gtsc(&self, key: &TileKey, writer: &mut dyn io::Write) -> TerrainResult<()> {
        let bounds = self.tile_bounds(key).ok_or_else(|| out_of_range(key, self.max_zoom()))?;
        let ids = self.tile_items(key).expect("bounds checked");
        let bytes = tile::encode_gtsc(&self.gtsc_header(), Some((*key, bounds)), &self.items, &ids);
        writer.write_all(&bytes).map_err(TerrainError::from)
    }

    /// Encode the whole scene as one `GTSC` document (the
    /// `GET /graphs/{id}/scene` payload): every item, resolution
    /// independent, for client-side pan/zoom renderers.
    pub fn write_scene_gtsc(&self, writer: &mut dyn io::Write) -> TerrainResult<()> {
        let ids: Vec<u32> = (0..self.items.len() as u32).collect();
        let bytes = tile::encode_gtsc(&self.gtsc_header(), None, &self.items, &ids);
        writer.write_all(&bytes).map_err(TerrainError::from)
    }

    fn gtsc_header(&self) -> GtscHeader {
        GtscHeader {
            domain: self.domain,
            tile_px: self.lod_config.tile_px,
            max_lod: self.lod_config.max_lod,
            baseline: self.baseline,
            peak: self.peak,
        }
    }

    /// The zoom level whose item set matches a view of `width_px` pixels
    /// over the whole domain: the coarsest zoom at least as dense as the
    /// requested resolution, clamped to the scene's maximum.
    pub fn zoom_for_width(&self, width_px: f64) -> u8 {
        let mut zoom = 0u8;
        while zoom < self.max_zoom() {
            let span_px = f64::from(self.lod_config.tile_px) * (1u64 << u32::from(zoom)) as f64;
            if span_px >= width_px {
                break;
            }
            zoom += 1;
        }
        zoom
    }

    /// Render an arbitrary viewport of the scene (`ids` = the items to
    /// paint, ascending) into a `width_px × height_px` SVG with cushion
    /// shading. Shared by tile rendering and the full-scene `TiledSvg`
    /// exporter.
    pub(crate) fn write_view_svg(
        &self,
        viewport: &Rect,
        ids: &[u32],
        width_px: u32,
        height_px: u32,
        writer: &mut dyn io::Write,
    ) -> TerrainResult<()> {
        if width_px == 0 || height_px == 0 {
            return Err(TerrainError::Config {
                what: "tile size",
                message: format!("pixel size must be positive, got {width_px}x{height_px}"),
            });
        }
        let sx = f64::from(width_px) / viewport.width().max(1e-300);
        let sy = f64::from(height_px) / viewport.height().max(1e-300);
        let range = (self.peak - self.baseline).max(1e-300);
        let mut w = io::BufWriter::new(writer);
        writeln!(
            w,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
        )?;
        writeln!(w, r##"<rect width="{width_px}" height="{height_px}" fill="#10141c"/>"##)?;
        for &id in ids {
            let item = &self.items[id as usize];
            // Clip to the viewport so a huge parent rect costs the same
            // bytes as a small one — the tile-size bound depends on it.
            let r = &item.rect;
            let clipped = Rect::new(
                r.x0.max(viewport.x0),
                r.y0.max(viewport.y0),
                r.x1.min(viewport.x1),
                r.y1.min(viewport.y1),
            );
            let x = (clipped.x0 - viewport.x0) * sx;
            let y = (viewport.y1 - clipped.y1) * sy; // y up in layout, down in SVG
            let w_px = clipped.width() * sx;
            let h_px = clipped.height() * sy;
            let t = ((item.height - self.baseline) / range).clamp(0.0, 1.0);
            let fill = colormap(t).darkened(cushion_shade(&item.surface, r));
            writeln!(
                w,
                r#"<rect x="{x:.2}" y="{y:.2}" width="{w_px:.2}" height="{h_px:.2}" fill="{}"/>"#,
                fill.hex()
            )?;
        }
        writeln!(w, "</svg>")?;
        io::Write::flush(&mut w)?;
        Ok(())
    }
}

fn out_of_range(key: &TileKey, max_zoom: u8) -> TerrainError {
    TerrainError::Config {
        what: "tile key",
        message: format!(
            "tile {key} is outside the grid (max zoom {max_zoom}, {n}x{n} tiles at its zoom)",
            n = tiles_per_axis(key.zoom)
        ),
    }
}

/// Lambert shading factor from the cushion surface normal at the rect
/// center: `z = sx2·x² + sx1·x + sy2·y² + sy1·y`, normal
/// `(-dz/dx, -dz/dy, 1)`, light from the upper left. Returns a
/// darkening factor in `[0.45, 1.0]`.
fn cushion_shade(surface: &[f64; 4], rect: &Rect) -> f64 {
    let (cx, cy) = rect.center();
    let dzdx = 2.0 * surface[1] * cx + surface[0];
    let dzdy = 2.0 * surface[3] * cy + surface[2];
    let (nx, ny, nz) = (-dzdx, -dzdy, 1.0);
    let norm = (nx * nx + ny * ny + nz * nz).sqrt();
    // Light direction (-1, 1, 2) / |.|, matching the oblique projection's
    // implied sun.
    let (lx, ly, lz) = (-0.408_248_290_463_863, 0.408_248_290_463_863, 0.816_496_580_927_726);
    let lambert = ((nx * lx + ny * ly + nz * lz) / norm).clamp(0.0, 1.0);
    0.45 + 0.55 * lambert
}

#[cfg(test)]
mod tests {
    use super::*;
    use measures::core_numbers;
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::generators::{collaboration_graph, CollaborationConfig};

    fn sample_tree(authors: usize) -> SuperScalarTree {
        let g = collaboration_graph(&CollaborationConfig {
            authors,
            papers: authors,
            groups: 8,
            groups_per_component: 4,
            seed: 7,
            ..Default::default()
        });
        let cores = core_numbers(&g);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    /// A larger tree: per-vertex degree over an R-MAT graph has many
    /// distinct scalar values, so the super tree has many nodes (mostly
    /// chains — R-MAT hubs form one connected core, so superlevel sets
    /// rarely disconnect).
    fn degree_tree(scale: u32, edges: usize) -> SuperScalarTree {
        let g = ugraph::generators::rmat(scale, edges, 20_170_419);
        let scalar: Vec<f64> = measures::degrees(&g).into_iter().map(|d| d as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    /// A hub-and-arms graph whose arms all merge at the hub at once: each
    /// arm is a rising path to its own peak, so the superlevel sets are
    /// `arms` disconnected components until the hub's scalar joins them
    /// and the hub super node gets one child per arm — the branching the
    /// organic generators never produce (their superlevel sets stay
    /// connected, yielding pure chain forests).
    fn starburst_tree(arms: usize) -> SuperScalarTree {
        let mut builder = ugraph::GraphBuilder::new();
        let mut scalar = vec![0.0f64]; // the hub, vertex 0
        let mut next = 1u32;
        for arm in 0..arms {
            // Vary arm length so subtree weights differ and the "heaviest
            // children" selection is meaningful.
            let len = 2 + arm % 3;
            let mut prev = 0u32;
            for step in 0..len {
                builder.add_edge(prev, next);
                scalar.push((step + 1) as f64);
                prev = next;
                next += 1;
            }
        }
        let g = builder.build();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    #[test]
    fn scene_items_nest_within_the_domain_and_parents_precede_children() {
        let tree = sample_tree(400);
        let scene = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        assert!(scene.item_count() > 0);
        let domain = scene.domain();
        let mut seen = std::collections::HashSet::new();
        for item in scene.items() {
            assert!(domain.contains_rect(&item.rect), "{item:?} escapes the domain");
            assert!(item.min_visible_lod <= scene.max_zoom());
            if let Some(node) = item.node {
                // Parent-before-child: every real node's parent chain must
                // already have been emitted (or culled along with us — but
                // a visible child implies a visible parent, its container).
                if let Some(p) = tree.parent(node) {
                    assert!(seen.contains(&p), "parent {p} of {node} not yet emitted");
                }
                seen.insert(node);
            }
        }
    }

    #[test]
    fn lod_bounds_the_visible_set_and_zoom_reveals_detail() {
        let tree = degree_tree(13, 60_000);
        let coarse = LodConfig { max_lod: 2, ..Default::default() };
        let fine = LodConfig { max_lod: 6, ..Default::default() };
        let scene_coarse = Scene::build(&tree, &LayoutConfig::default(), &coarse).unwrap();
        let scene_fine = Scene::build(&tree, &LayoutConfig::default(), &fine).unwrap();
        assert!(
            scene_coarse.item_count() < scene_fine.item_count(),
            "a finer max LOD must retain more items ({} vs {})",
            scene_coarse.item_count(),
            scene_fine.item_count()
        );
        assert!(
            scene_fine.item_count() < tree.node_count(),
            "the visible set must stay below the full tree ({} vs {})",
            scene_fine.item_count(),
            tree.node_count()
        );
        // Items visible at zoom 0 are a subset of items visible at zoom 2.
        let at = |zoom: u8| scene_fine.items().iter().filter(|i| i.min_visible_lod <= zoom).count();
        assert!(at(0) <= at(2));
    }

    #[test]
    fn child_cap_emits_other_buckets_that_cover_the_tail() {
        let arms = 9;
        let tree = starburst_tree(arms);
        let hub = *tree.roots().first().expect("one connected component");
        assert_eq!(
            tree.children(hub).len(),
            arms,
            "every arm must merge at the hub simultaneously"
        );
        // Force the cap low so the bucket actually appears.
        let config = LodConfig { max_children: 3, ..Default::default() };
        let scene = Scene::build(&tree, &LayoutConfig::default(), &config).unwrap();
        let buckets: Vec<&SceneItem> = scene.items().iter().filter(|i| i.node.is_none()).collect();
        assert_eq!(buckets.len(), 1, "one capped family, one bucket");
        let bucket = buckets[0];
        // The cap keeps the 2 heaviest arms; the bucket stands for the
        // remaining arms' combined subtree members and their tallest peak.
        let members = tree.subtree_member_counts();
        let mut weights: Vec<usize> =
            tree.children(hub).iter().map(|&c| members[c as usize]).collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let tail: usize = weights[2..].iter().sum();
        assert_eq!(bucket.members, tail as u64, "the bucket covers exactly the tail");
        assert!(bucket.height.is_finite());
        assert_eq!(bucket.depth, tree.depth(hub) + 1);
        // Kept children plus the bucket partition the hub's inner rect, so
        // the bucket must not overlap any kept child's rectangle.
        for item in scene.items() {
            if let Some(node) = item.node {
                if tree.parent(node) == Some(hub) {
                    assert!(!item.rect.intersects(&bucket.rect));
                }
            }
        }
    }

    #[test]
    fn uncapped_scene_rects_match_the_full_layout_bit_for_bit() {
        let tree = sample_tree(300);
        // A cap larger than any family and thresholds of zero disable
        // culling, gating and capping — the pass must then reproduce
        // `layout_super_tree`'s rectangles exactly.
        let config = LodConfig {
            min_area: 0.0,
            min_side: 0.0,
            recurse_min_side: 0.0,
            max_children: usize::MAX,
            ..Default::default()
        };
        let layout_config = LayoutConfig::default();
        let scene = Scene::build(&tree, &layout_config, &config).unwrap();
        let full = crate::layout2d::layout_super_tree(&tree, &layout_config);
        assert_eq!(scene.item_count(), tree.node_count());
        for item in scene.items() {
            let node = item.node.expect("no buckets without a cap") as usize;
            assert_eq!(
                item.rect, full.rects[node],
                "node {node}: the LOD pass must be bit-identical to the full layout"
            );
        }
    }

    #[test]
    fn tile_rendering_is_deterministic_and_out_of_range_keys_fail() {
        let tree = sample_tree(400);
        let scene = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        let key = TileKey { zoom: 1, tx: 0, ty: 1 };
        let mut a = Vec::new();
        let mut b = Vec::new();
        scene.write_tile_svg(&key, 256, &mut a).unwrap();
        scene.write_tile_svg(&key, 256, &mut b).unwrap();
        assert_eq!(a, b, "same key, same bytes");
        assert!(std::str::from_utf8(&a).unwrap().starts_with("<svg"));

        let mut gtsc = Vec::new();
        scene.write_tile_gtsc(&key, &mut gtsc).unwrap();
        let doc = decode_gtsc(&gtsc).unwrap();
        assert_eq!(doc.tile.unwrap().0, key);

        for bad in [
            TileKey { zoom: scene.max_zoom() + 1, tx: 0, ty: 0 },
            TileKey { zoom: 1, tx: 2, ty: 0 },
            TileKey { zoom: 1, tx: 0, ty: 2 },
        ] {
            assert!(scene.tile_bounds(&bad).is_none());
            assert!(scene.write_tile_svg(&bad, 256, &mut Vec::new()).is_err());
            assert!(scene.write_tile_gtsc(&bad, &mut Vec::new()).is_err());
        }
    }

    #[test]
    fn scene_tiles_enumerates_the_viewport_cover() {
        let tree = sample_tree(300);
        let scene = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        let all = scene.tiles(&scene.domain(), 1);
        assert_eq!(all.len(), 4, "the domain needs all four zoom-1 tiles");
        assert!(scene.tiles(&scene.domain(), scene.max_zoom() + 1).is_empty());
        let one = scene.tiles(&Rect::new(0.1, 0.1, 0.2, 0.2), 2);
        assert_eq!(one, vec![TileKey { zoom: 2, tx: 0, ty: 0 }]);
    }

    #[test]
    fn hit_test_finds_the_most_nested_item() {
        let tree = sample_tree(300);
        let scene = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        // The deepest item's center must hit itself (or something deeper).
        let deepest = scene.items().iter().enumerate().max_by_key(|(_, i)| i.depth).expect("items");
        let (cx, cy) = deepest.1.rect.center();
        let hit = scene.hit_test(cx, cy).expect("center of an item must hit");
        assert!(hit.depth >= deepest.1.depth);
        assert!(scene.hit_test(55.0, 55.0).is_none(), "outside the domain hits nothing");
    }

    #[test]
    fn scene_gtsc_round_trips_every_item() {
        let tree = sample_tree(400);
        let scene = Scene::build(&tree, &LayoutConfig::default(), &LodConfig::default()).unwrap();
        let mut bytes = Vec::new();
        scene.write_scene_gtsc(&mut bytes).unwrap();
        let doc = decode_gtsc(&bytes).unwrap();
        assert_eq!(doc.items.len(), scene.item_count());
        assert_eq!(doc.header.max_lod, scene.max_zoom());
        assert_eq!(doc.header.domain, scene.domain());
        for (decoded, item) in doc.items.iter().zip(scene.items()) {
            assert_eq!(decoded.node, item.node);
            assert_eq!(decoded.rect, item.rect);
            assert_eq!(decoded.height, item.height);
        }
    }
}
