//! The tile grid and the `GTSC` binary scene format.
//!
//! **Tile grid.** Zoom level `z` divides the layout domain into a fixed
//! `2^z × 2^z` grid of square tiles addressed `(tx, ty)` with `(0, 0)` at
//! the domain's lower-left corner (layout space, y up). The grid is
//! power-of-two in *layout space*, so a tile's rectangle — and therefore
//! its rendered bytes — depends only on its [`TileKey`], never on the
//! viewport a client happened to pan through. That is what lets tile keys
//! slot into the server's byte-exact artifact cache.
//!
//! **Wire format.** `GTSC` is the compact little-endian scene encoding for
//! client-side renderers, section-framed like the v3 graph snapshot: a
//! magic + version header, tagged `(u32 tag, u64 len)` sections, and a
//! trailing FNV-1a64 checksum over everything before it. Unknown tags are
//! skipped on decode so the format can grow. Sections:
//!
//! | tag | payload |
//! |-----|---------|
//! | 1   | header: domain rect (4×f64), `tile_px` u32, `max_lod` u32, baseline f64, peak f64, item count u64 |
//! | 2   | tile stamp (tile responses only): zoom u32, tx u32, ty u32, tile rect 4×f64 |
//! | 3   | items: count × 73-byte records (node u32, depth u32, min_visible_lod u8, members u64, rect 4×f64, height f64, surface 4×f32) |
//!
//! A `node` of `u32::MAX` marks an "other" bucket item. Surfaces are
//! stored as f32 — shading precision, not geometry.

use crate::error::{TerrainError, TerrainResult};
use crate::layout2d::Rect;
use crate::scene::lod::SceneItem;

/// Magic bytes opening every `GTSC` document.
pub const GTSC_MAGIC: &[u8; 4] = b"GTSC";
/// Current format version.
pub const GTSC_VERSION: u32 = 1;

const TAG_HEADER: u32 = 1;
const TAG_TILE: u32 = 2;
const TAG_ITEMS: u32 = 3;
const ITEM_RECORD_BYTES: usize = 73;
/// `node` value marking an "other" bucket item on the wire.
const OTHER_NODE: u32 = u32::MAX;

/// Address of one tile in the fixed power-of-two grid.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// Zoom level: the grid is `2^zoom × 2^zoom`.
    pub zoom: u8,
    /// Column, `0..2^zoom`, west to east.
    pub tx: u32,
    /// Row, `0..2^zoom`, south to north (layout space, y up).
    pub ty: u32,
}

impl TileKey {
    /// Whether the address is inside the grid of its zoom level.
    pub fn in_range(&self, max_zoom: u8) -> bool {
        self.zoom <= max_zoom
            && self.tx < tiles_per_axis(self.zoom)
            && self.ty < tiles_per_axis(self.zoom)
    }
}

impl std::fmt::Display for TileKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.zoom, self.tx, self.ty)
    }
}

/// Tiles per axis at a zoom level.
pub fn tiles_per_axis(zoom: u8) -> u32 {
    1u32 << u32::from(zoom.min(31))
}

/// The layout-space rectangle of a tile within `domain`.
pub fn tile_rect(domain: &Rect, key: &TileKey) -> Rect {
    let n = tiles_per_axis(key.zoom) as f64;
    let tw = domain.width() / n;
    let th = domain.height() / n;
    Rect::new(
        domain.x0 + key.tx as f64 * tw,
        domain.y0 + key.ty as f64 * th,
        domain.x0 + (key.tx + 1) as f64 * tw,
        domain.y0 + (key.ty + 1) as f64 * th,
    )
}

/// Every tile at `zoom` whose rectangle overlaps `viewport` with positive
/// area, row-major from the south-west (ty, then tx ascending). Empty when
/// the viewport misses the domain entirely.
pub fn tiles_overlapping(domain: &Rect, viewport: &Rect, zoom: u8) -> Vec<TileKey> {
    if !domain.intersects(viewport) {
        return Vec::new();
    }
    let clip = Rect::new(
        viewport.x0.max(domain.x0),
        viewport.y0.max(domain.y0),
        viewport.x1.min(domain.x1),
        viewport.y1.min(domain.y1),
    );
    let n = tiles_per_axis(zoom);
    let tw = domain.width() / n as f64;
    let th = domain.height() / n as f64;
    let clamp = |v: f64| (v.max(0.0) as u32).min(n - 1);
    let tx0 = clamp(((clip.x0 - domain.x0) / tw).floor());
    let ty0 = clamp(((clip.y0 - domain.y0) / th).floor());
    // `ceil - 1` so a viewport edge exactly on a tile boundary does not
    // drag in the zero-overlap neighbor (intersection is strict).
    let tx1 = clamp(((clip.x1 - domain.x0) / tw).ceil() - 1.0);
    let ty1 = clamp(((clip.y1 - domain.y0) / th).ceil() - 1.0);
    let mut keys = Vec::new();
    for ty in ty0..=ty1 {
        for tx in tx0..=tx1 {
            keys.push(TileKey { zoom, tx, ty });
        }
    }
    keys
}

// ------------------------------------------------------------------ encode

/// FNV-1a 64-bit, the same cheap integrity hash the artifact cache keys
/// with.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_rect(out: &mut Vec<u8>, rect: &Rect) {
    for v in [rect.x0, rect.y0, rect.x1, rect.y1] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn begin_section(out: &mut Vec<u8>, tag: u32) -> usize {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    out.len()
}

fn end_section(out: &mut [u8], payload_start: usize) {
    let len = (out.len() - payload_start) as u64;
    out[payload_start - 8..payload_start].copy_from_slice(&len.to_le_bytes());
}

/// Scene-level facts encoded in the `GTSC` header section.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GtscHeader {
    /// The full layout domain (also the zoom-0 tile).
    pub domain: Rect,
    /// Tile edge in pixels the LOD thresholds were phrased in.
    pub tile_px: u32,
    /// Finest LOD / deepest zoom of the scene.
    pub max_lod: u8,
    /// Minimum item height (the color ramp's low end).
    pub baseline: f64,
    /// Maximum item height (the color ramp's high end).
    pub peak: f64,
}

/// Encode a scene (or a tile's subset of it) as one `GTSC` document.
/// `indices` selects the items to emit, in emission order.
pub fn encode_gtsc(
    header: &GtscHeader,
    tile: Option<(TileKey, Rect)>,
    items: &[SceneItem],
    indices: &[u32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + indices.len() * ITEM_RECORD_BYTES);
    out.extend_from_slice(GTSC_MAGIC);
    out.extend_from_slice(&GTSC_VERSION.to_le_bytes());

    let start = begin_section(&mut out, TAG_HEADER);
    push_rect(&mut out, &header.domain);
    out.extend_from_slice(&header.tile_px.to_le_bytes());
    out.extend_from_slice(&u32::from(header.max_lod).to_le_bytes());
    out.extend_from_slice(&header.baseline.to_le_bytes());
    out.extend_from_slice(&header.peak.to_le_bytes());
    out.extend_from_slice(&(indices.len() as u64).to_le_bytes());
    end_section(&mut out, start);

    if let Some((key, rect)) = tile {
        let start = begin_section(&mut out, TAG_TILE);
        out.extend_from_slice(&u32::from(key.zoom).to_le_bytes());
        out.extend_from_slice(&key.tx.to_le_bytes());
        out.extend_from_slice(&key.ty.to_le_bytes());
        push_rect(&mut out, &rect);
        end_section(&mut out, start);
    }

    let start = begin_section(&mut out, TAG_ITEMS);
    for &idx in indices {
        let item = &items[idx as usize];
        out.extend_from_slice(&item.node.unwrap_or(OTHER_NODE).to_le_bytes());
        out.extend_from_slice(&item.depth.to_le_bytes());
        out.push(item.min_visible_lod);
        out.extend_from_slice(&item.members.to_le_bytes());
        push_rect(&mut out, &item.rect);
        out.extend_from_slice(&item.height.to_le_bytes());
        for s in item.surface {
            out.extend_from_slice(&(s as f32).to_le_bytes());
        }
    }
    end_section(&mut out, start);

    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

// ------------------------------------------------------------------ decode

/// One decoded scene item (surfaces at their f32 wire precision).
#[derive(Clone, Debug, PartialEq)]
pub struct GtscItem {
    /// The super node, or `None` for an "other" bucket.
    pub node: Option<u32>,
    /// Nesting depth.
    pub depth: u32,
    /// Coarsest zoom the item is visible at.
    pub min_visible_lod: u8,
    /// Subtree members the item stands for.
    pub members: u64,
    /// Boundary rectangle in layout space.
    pub rect: Rect,
    /// Terrain height.
    pub height: f64,
    /// Cushion surface coefficients `[sx1, sx2, sy1, sy2]`.
    pub surface: [f32; 4],
}

/// A fully parsed `GTSC` document.
#[derive(Clone, Debug, PartialEq)]
pub struct GtscDocument {
    /// The header section.
    pub header: GtscHeader,
    /// The tile stamp, present on tile responses only.
    pub tile: Option<(TileKey, Rect)>,
    /// The items, in emission (paint) order.
    pub items: Vec<GtscItem>,
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> TerrainResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(gtsc_error(format!(
                "truncated document: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> TerrainResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> TerrainResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> TerrainResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> TerrainResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> TerrainResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn rect(&mut self) -> TerrainResult<Rect> {
        let (x0, y0, x1, y1) = (self.f64()?, self.f64()?, self.f64()?, self.f64()?);
        if !(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite())
            || x1 < x0
            || y1 < y0
        {
            return Err(gtsc_error(format!("invalid rectangle [{x0},{y0},{x1},{y1}]")));
        }
        Ok(Rect::new(x0, y0, x1, y1))
    }
}

fn gtsc_error(message: String) -> TerrainError {
    TerrainError::Config { what: "gtsc scene", message }
}

/// Parse and validate a `GTSC` document (magic, version, section framing,
/// checksum, item-count consistency). Corrupt input is a
/// [`TerrainError`], never a panic.
pub fn decode_gtsc(bytes: &[u8]) -> TerrainResult<GtscDocument> {
    if bytes.len() < 20 {
        return Err(gtsc_error(format!("document too short: {} bytes", bytes.len())));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(gtsc_error(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut r = Reader { bytes: body, pos: 0 };
    if r.take(4)? != GTSC_MAGIC {
        return Err(gtsc_error("bad magic, not a GTSC document".to_string()));
    }
    let version = r.u32()?;
    if version != GTSC_VERSION {
        return Err(gtsc_error(format!(
            "unsupported version {version}, this build reads {GTSC_VERSION}"
        )));
    }

    let mut header: Option<(GtscHeader, u64)> = None;
    let mut tile = None;
    let mut items = Vec::new();
    while r.pos < r.bytes.len() {
        let tag = r.u32()?;
        let len = r.u64()? as usize;
        let payload = r.take(len)?;
        let mut s = Reader { bytes: payload, pos: 0 };
        match tag {
            TAG_HEADER => {
                let domain = s.rect()?;
                let tile_px = s.u32()?;
                let max_lod = s.u32()?;
                if max_lod > 16 {
                    return Err(gtsc_error(format!("max_lod {max_lod} out of range")));
                }
                let baseline = s.f64()?;
                let peak = s.f64()?;
                let count = s.u64()?;
                header = Some((
                    GtscHeader { domain, tile_px, max_lod: max_lod as u8, baseline, peak },
                    count,
                ));
            }
            TAG_TILE => {
                let zoom = s.u32()?;
                if zoom > 16 {
                    return Err(gtsc_error(format!("tile zoom {zoom} out of range")));
                }
                let key = TileKey { zoom: zoom as u8, tx: s.u32()?, ty: s.u32()? };
                tile = Some((key, s.rect()?));
            }
            TAG_ITEMS => {
                if len % ITEM_RECORD_BYTES != 0 {
                    return Err(gtsc_error(format!(
                        "item section length {len} is not a multiple of {ITEM_RECORD_BYTES}"
                    )));
                }
                items.reserve(len / ITEM_RECORD_BYTES);
                while s.pos < s.bytes.len() {
                    let node = s.u32()?;
                    let depth = s.u32()?;
                    let min_visible_lod = s.u8()?;
                    let members = s.u64()?;
                    let rect = s.rect()?;
                    let height = s.f64()?;
                    let surface = [s.f32()?, s.f32()?, s.f32()?, s.f32()?];
                    items.push(GtscItem {
                        node: (node != OTHER_NODE).then_some(node),
                        depth,
                        min_visible_lod,
                        members,
                        rect,
                        height,
                        surface,
                    });
                }
            }
            _ => {} // forward compatibility: unknown sections are skipped
        }
    }
    let (header, declared) =
        header.ok_or_else(|| gtsc_error("missing header section".to_string()))?;
    if declared != items.len() as u64 {
        return Err(gtsc_error(format!(
            "header declares {declared} items, item section carries {}",
            items.len()
        )));
    }
    Ok(GtscDocument { header, tile, items })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_items() -> Vec<SceneItem> {
        vec![
            SceneItem {
                node: Some(0),
                rect: Rect::new(0.0, 0.0, 1.0, 1.0),
                depth: 0,
                height: 1.0,
                members: 9,
                min_visible_lod: 0,
                surface: [0.1, -0.2, 0.3, -0.4],
            },
            SceneItem {
                node: None,
                rect: Rect::new(0.25, 0.25, 0.5, 0.5),
                depth: 1,
                height: 3.5,
                members: 4,
                min_visible_lod: 2,
                surface: [0.0; 4],
            },
        ]
    }

    fn sample_header() -> GtscHeader {
        GtscHeader {
            domain: Rect::new(0.0, 0.0, 1.0, 1.0),
            tile_px: 256,
            max_lod: 8,
            baseline: 1.0,
            peak: 3.5,
        }
    }

    #[test]
    fn gtsc_round_trips_scene_and_tile_documents() {
        let items = sample_items();
        let header = sample_header();
        let scene = encode_gtsc(&header, None, &items, &[0, 1]);
        assert_eq!(&scene[..4], GTSC_MAGIC);
        let doc = decode_gtsc(&scene).unwrap();
        assert_eq!(doc.header, header);
        assert_eq!(doc.tile, None);
        assert_eq!(doc.items.len(), 2);
        assert_eq!(doc.items[0].node, Some(0));
        assert_eq!(doc.items[1].node, None, "other buckets survive the round trip");
        assert_eq!(doc.items[1].height, 3.5);

        let key = TileKey { zoom: 2, tx: 1, ty: 3 };
        let rect = tile_rect(&header.domain, &key);
        let tile = encode_gtsc(&header, Some((key, rect)), &items, &[1]);
        let doc = decode_gtsc(&tile).unwrap();
        assert_eq!(doc.tile, Some((key, rect)));
        assert_eq!(doc.items.len(), 1);
    }

    #[test]
    fn corrupt_documents_are_rejected_not_panicked() {
        let good = encode_gtsc(&sample_header(), None, &sample_items(), &[0, 1]);
        assert!(decode_gtsc(&[]).is_err());
        assert!(decode_gtsc(&good[..good.len() - 1]).is_err(), "truncation breaks the checksum");
        let mut flipped = good.clone();
        flipped[20] ^= 0xff;
        assert!(decode_gtsc(&flipped).is_err(), "a flipped byte breaks the checksum");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_gtsc(&bad_magic).is_err());
    }

    #[test]
    fn tile_grid_is_power_of_two_and_covers_the_domain() {
        let domain = Rect::new(0.0, 0.0, 2.0, 1.0);
        assert_eq!(tiles_per_axis(0), 1);
        assert_eq!(tiles_per_axis(3), 8);
        let whole = tile_rect(&domain, &TileKey { zoom: 0, tx: 0, ty: 0 });
        assert_eq!(whole, domain);
        // The four zoom-1 tiles partition the domain.
        let mut area = 0.0;
        for ty in 0..2 {
            for tx in 0..2 {
                area += tile_rect(&domain, &TileKey { zoom: 1, tx, ty }).area();
            }
        }
        assert!((area - domain.area()).abs() < 1e-12);
        assert!(TileKey { zoom: 1, tx: 1, ty: 1 }.in_range(8));
        assert!(!TileKey { zoom: 1, tx: 2, ty: 0 }.in_range(8));
        assert!(!TileKey { zoom: 9, tx: 0, ty: 0 }.in_range(8));
    }

    #[test]
    fn viewport_tile_enumeration_is_clipped_and_row_major() {
        let domain = Rect::new(0.0, 0.0, 1.0, 1.0);
        // A viewport over the center straddles all four zoom-1 tiles.
        let keys = tiles_overlapping(&domain, &Rect::new(0.4, 0.4, 0.6, 0.6), 1);
        assert_eq!(
            keys,
            vec![
                TileKey { zoom: 1, tx: 0, ty: 0 },
                TileKey { zoom: 1, tx: 1, ty: 0 },
                TileKey { zoom: 1, tx: 0, ty: 1 },
                TileKey { zoom: 1, tx: 1, ty: 1 },
            ]
        );
        // A viewport whose edge lands exactly on the midline stays on its
        // side (tile overlap is strict).
        let keys = tiles_overlapping(&domain, &Rect::new(0.1, 0.1, 0.5, 0.5), 1);
        assert_eq!(keys, vec![TileKey { zoom: 1, tx: 0, ty: 0 }]);
        // Out-of-domain viewports clip (or vanish).
        assert!(tiles_overlapping(&domain, &Rect::new(2.0, 2.0, 3.0, 3.0), 1).is_empty());
        let keys = tiles_overlapping(&domain, &Rect::new(0.9, 0.9, 5.0, 5.0), 2);
        assert_eq!(keys, vec![TileKey { zoom: 2, tx: 3, ty: 3 }]);
    }
}
