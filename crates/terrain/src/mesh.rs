//! 3D terrain mesh construction (Figure 4(c)).
//!
//! Every super node's boundary rectangle is extruded into a prism that rises
//! from its parent's height (the baseline for roots) to its own scalar value;
//! stacking the prisms of a nested layout produces the terraced terrain: the
//! outer rings sit low, inner peaks rise high, and the vertical prism sides
//! are exactly the "walls between neighboring boundaries" of the paper.
//!
//! The mesh is a plain triangle soup (positions + indexed triangles + one
//! color per face) so it can be exported to OBJ/SVG or inspected in tests
//! without any graphics dependency.

use crate::color::{node_color, normalize_for_color, Color, ColorScheme};
use crate::error::{TerrainError, TerrainResult};
use crate::layout2d::TerrainLayout;
use scalarfield::SuperScalarTree;

/// Configuration of the mesh construction.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Scale applied to scalar values to obtain z coordinates.
    pub height_scale: f64,
    /// The coloring scheme.
    pub color: ColorScheme,
    /// Baseline height (z of the terrain floor) expressed as a scalar value;
    /// `None` uses the minimum node scalar.
    pub baseline: Option<f64>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig { height_scale: 1.0, color: ColorScheme::ByHeight, baseline: None }
    }
}

/// One vertex of the mesh.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MeshVertex {
    /// X coordinate (layout space).
    pub x: f64,
    /// Y coordinate (layout space).
    pub y: f64,
    /// Z coordinate (scaled scalar value).
    pub z: f64,
}

/// One triangle, referencing three vertex indices, plus its color and the
/// super node it belongs to.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MeshTriangle {
    /// Vertex indices.
    pub indices: [u32; 3],
    /// Face color.
    pub color: Color,
    /// The super node that generated this face.
    pub node: u32,
    /// Whether this face is a (horizontal) top cap rather than a wall.
    pub is_top: bool,
}

/// An axis-aligned 3D bounding box:
/// `((min_x, min_y, min_z), (max_x, max_y, max_z))`.
pub type MeshBounds = ((f64, f64, f64), (f64, f64, f64));

/// A terrain triangle mesh.
#[derive(Clone, Debug, Default)]
pub struct TerrainMesh {
    /// Vertex positions.
    pub vertices: Vec<MeshVertex>,
    /// Triangles (two per rectangle face).
    pub triangles: Vec<MeshTriangle>,
}

impl TerrainMesh {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Axis-aligned bounding box of the mesh as
    /// `((min_x, min_y, min_z), (max_x, max_y, max_z))`.
    pub fn bounds(&self) -> Option<MeshBounds> {
        if self.vertices.is_empty() {
            return None;
        }
        let mut min = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            min = (min.0.min(v.x), min.1.min(v.y), min.2.min(v.z));
            max = (max.0.max(v.x), max.1.max(v.y), max.2.max(v.z));
        }
        Some((min, max))
    }

    fn push_vertex(&mut self, x: f64, y: f64, z: f64) -> u32 {
        self.vertices.push(MeshVertex { x, y, z });
        (self.vertices.len() - 1) as u32
    }

    fn push_quad(&mut self, corners: [u32; 4], color: Color, node: u32, is_top: bool) {
        self.triangles.push(MeshTriangle {
            indices: [corners[0], corners[1], corners[2]],
            color,
            node,
            is_top,
        });
        self.triangles.push(MeshTriangle {
            indices: [corners[0], corners[2], corners[3]],
            color,
            node,
            is_top,
        });
    }
}

impl MeshConfig {
    /// Validate the configuration against the tree it will mesh: the height
    /// scale and baseline must be finite, the height scale non-negative, and
    /// any coloring data ([`ColorScheme::BySecondaryScalar`] /
    /// [`ColorScheme::ByClass`]) must carry exactly one entry per element of
    /// the scalar field (`element_count`).
    pub fn validate(&self, element_count: usize) -> TerrainResult<()> {
        let fail = |message: String| Err(TerrainError::Mesh { message });
        if !self.height_scale.is_finite() || self.height_scale < 0.0 {
            return fail(format!(
                "height_scale must be finite and non-negative, got {}",
                self.height_scale
            ));
        }
        if let Some(baseline) = self.baseline {
            if !baseline.is_finite() {
                return fail(format!("baseline must be finite, got {baseline}"));
            }
        }
        match &self.color {
            ColorScheme::ByHeight => {}
            ColorScheme::BySecondaryScalar(values) => {
                if values.len() != element_count {
                    return fail(format!(
                        "secondary color scalar has {} entries, the field has {} elements",
                        values.len(),
                        element_count
                    ));
                }
                if let Some(index) = values.iter().position(|v| !v.is_finite()) {
                    return fail(format!(
                        "secondary color scalar contains non-finite value {} at index {index}",
                        values[index]
                    ));
                }
            }
            ColorScheme::ByClass { classes, palette } => {
                if classes.len() != element_count {
                    return fail(format!(
                        "class vector has {} entries, the field has {} elements",
                        classes.len(),
                        element_count
                    ));
                }
                if let Some(&class) = classes.iter().find(|&&c| c >= palette.len()) {
                    return fail(format!(
                        "class {class} has no palette entry (palette has {} colors)",
                        palette.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Build the terrain mesh from a super tree and its 2D layout, validating the
/// configuration and coloring data first ([`TerrainError::Mesh`] otherwise).
/// This is the entry point of `graph-terrain`'s staged pipeline;
/// [`build_terrain_mesh`] is the historical lenient wrapper.
pub fn try_build_terrain_mesh(
    tree: &SuperScalarTree,
    layout: &TerrainLayout,
    config: &MeshConfig,
) -> TerrainResult<TerrainMesh> {
    config.validate(tree.element_count())?;
    if layout.rects.len() != tree.node_count() {
        return Err(TerrainError::Mesh {
            message: format!(
                "layout has {} rectangles but the tree has {} nodes (layout built for a different tree?)",
                layout.rects.len(),
                tree.node_count()
            ),
        });
    }
    Ok(build_terrain_mesh(tree, layout, config))
}

/// Build the terrain mesh from a super tree and its 2D layout.
///
/// Out-of-range coloring data is tolerated (missing secondary values read as
/// mid-scale, unknown classes fall back to gray); use
/// [`try_build_terrain_mesh`] to reject such inputs with a [`TerrainError`]
/// instead.
pub fn build_terrain_mesh(
    tree: &SuperScalarTree,
    layout: &TerrainLayout,
    config: &MeshConfig,
) -> TerrainMesh {
    let mut mesh = TerrainMesh::default();
    if tree.node_count() == 0 {
        return mesh;
    }
    let min_scalar = tree.scalars().iter().copied().fold(f64::INFINITY, f64::min);
    let baseline = config.baseline.unwrap_or(min_scalar);
    let normalized_heights = normalize_for_color(tree.scalars());

    // Reserve exact capacity up front: every node emits a 4-vertex/2-triangle
    // top cap, and every raised node (z1 > z0, same test as the build loop)
    // adds 4 base vertices and 4 wall quads. Large unsimplified trees would
    // otherwise regrow both vectors a dozen times.
    let raised = (0..tree.node_count() as u32)
        .filter(|&id| {
            let bottom_scalar = match tree.parent(id) {
                Some(p) => tree.scalar(p),
                None => baseline,
            };
            (tree.scalar(id) - baseline) * config.height_scale
                > (bottom_scalar - baseline) * config.height_scale
        })
        .count();
    mesh.vertices.reserve_exact(4 * tree.node_count() + 4 * raised);
    mesh.triangles.reserve_exact(2 * tree.node_count() + 8 * raised);

    for id in 0..tree.node_count() as u32 {
        let rect = layout.rects[id as usize];
        let bottom_scalar = match tree.parent(id) {
            Some(p) => tree.scalar(p),
            None => baseline,
        };
        let z0 = (bottom_scalar - baseline) * config.height_scale;
        let z1 = (tree.scalar(id) - baseline) * config.height_scale;
        let color = node_color(&config.color, tree.members(id), normalized_heights[id as usize]);
        let wall_color = color.darkened(0.75);

        // Top cap at z1.
        let t0 = mesh.push_vertex(rect.x0, rect.y0, z1);
        let t1 = mesh.push_vertex(rect.x1, rect.y0, z1);
        let t2 = mesh.push_vertex(rect.x1, rect.y1, z1);
        let t3 = mesh.push_vertex(rect.x0, rect.y1, z1);
        mesh.push_quad([t0, t1, t2, t3], color, id, true);

        // Four walls from z0 to z1 (skipped when the prism is flat).
        if z1 > z0 {
            let b0 = mesh.push_vertex(rect.x0, rect.y0, z0);
            let b1 = mesh.push_vertex(rect.x1, rect.y0, z0);
            let b2 = mesh.push_vertex(rect.x1, rect.y1, z0);
            let b3 = mesh.push_vertex(rect.x0, rect.y1, z0);
            mesh.push_quad([b0, b1, t1, t0], wall_color, id, false);
            mesh.push_quad([b1, b2, t2, t1], wall_color, id, false);
            mesh.push_quad([b2, b3, t3, t2], wall_color, id, false);
            mesh.push_quad([b3, b0, t0, t3], wall_color, id, false);
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use measures::core_numbers;
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn small_tree() -> (SuperScalarTree, TerrainLayout) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let g = b.build();
        let cores = core_numbers(&g);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        (tree, layout)
    }

    #[test]
    fn mesh_has_a_cap_per_node_and_walls_for_raised_nodes() {
        let (tree, layout) = small_tree();
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        let caps = mesh.triangles.iter().filter(|t| t.is_top).count();
        assert_eq!(caps, 2 * tree.node_count(), "two triangles per top cap");
        // Exactly the nodes whose scalar exceeds their parent's get walls.
        let raised = (0..tree.node_count() as u32)
            .filter(|&n| match tree.parent(n) {
                Some(p) => tree.scalar(n) > tree.scalar(p),
                None => false,
            })
            .count();
        let wall_quads = mesh.triangles.iter().filter(|t| !t.is_top).count() / 2;
        assert_eq!(wall_quads, raised * 4, "four wall quads per raised node");
    }

    #[test]
    fn heights_match_scalars() {
        let (tree, layout) = small_tree();
        let config = MeshConfig { height_scale: 2.0, ..Default::default() };
        let mesh = build_terrain_mesh(&tree, &layout, &config);
        let min_scalar = tree.scalars().iter().copied().fold(f64::INFINITY, f64::min);
        let max_scalar = tree.scalars().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (_, max) = mesh.bounds().unwrap();
        assert!((max.2 - (max_scalar - min_scalar) * 2.0).abs() < 1e-9);
        // Every top-cap triangle of a node sits exactly at the node's scaled height.
        for t in mesh.triangles.iter().filter(|t| t.is_top) {
            let expected = (tree.scalar(t.node) - min_scalar) * 2.0;
            for &i in &t.indices {
                assert!((mesh.vertices[i as usize].z - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flat_tree_has_no_walls() {
        // Constant scalar field: a single super node per component, no walls.
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2)]);
        let g = b.build();
        let scalar = vec![1.0, 1.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        assert!(mesh.triangles.iter().all(|t| t.is_top));
        assert_eq!(mesh.triangle_count(), 2);
    }

    #[test]
    fn walls_are_darker_than_caps() {
        let (tree, layout) = small_tree();
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        for t in &mesh.triangles {
            if !t.is_top {
                let cap = mesh.triangles.iter().find(|c| c.is_top && c.node == t.node).unwrap();
                let brightness = |c: &Color| c.r as u32 + c.g as u32 + c.b as u32;
                assert!(brightness(&t.color) < brightness(&cap.color));
            }
        }
    }

    #[test]
    fn invalid_mesh_inputs_are_rejected() {
        let (tree, layout) = small_tree();
        let n = tree.element_count();
        let bad_configs = [
            MeshConfig { height_scale: f64::NAN, ..Default::default() },
            MeshConfig { height_scale: -1.0, ..Default::default() },
            MeshConfig { baseline: Some(f64::INFINITY), ..Default::default() },
            MeshConfig {
                color: ColorScheme::BySecondaryScalar(vec![1.0; n + 1]),
                ..Default::default()
            },
            MeshConfig {
                color: ColorScheme::BySecondaryScalar(vec![f64::NAN; n]),
                ..Default::default()
            },
            MeshConfig {
                color: ColorScheme::ByClass { classes: vec![0; n - 1], palette: vec![] },
                ..Default::default()
            },
            MeshConfig {
                color: ColorScheme::ByClass {
                    classes: vec![7; n],
                    palette: vec![Color::rgb(0, 0, 0)],
                },
                ..Default::default()
            },
        ];
        for config in bad_configs {
            let err = try_build_terrain_mesh(&tree, &layout, &config).unwrap_err();
            assert!(matches!(err, crate::error::TerrainError::Mesh { .. }), "{err:?}");
        }
        // A layout built for a different tree is refused too.
        let (other_tree, _) = small_tree();
        let wrong = crate::layout2d::TerrainLayout {
            rects: layout.rects[..1].to_vec(),
            config: layout.config,
            scalar: layout.scalar[..1].to_vec(),
            parent: layout.parent[..1].to_vec(),
            subtree_members: layout.subtree_members[..1].to_vec(),
        };
        assert!(try_build_terrain_mesh(&other_tree, &wrong, &MeshConfig::default()).is_err());
        // Valid input: both paths agree exactly.
        let a = try_build_terrain_mesh(&tree, &layout, &MeshConfig::default()).unwrap();
        let b = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.triangles, b.triangles);
    }

    #[test]
    fn empty_tree_gives_empty_mesh() {
        let g = GraphBuilder::new().build();
        let scalar: Vec<f64> = vec![];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        assert_eq!(mesh.vertex_count(), 0);
        assert_eq!(mesh.triangle_count(), 0);
        assert!(mesh.bounds().is_none());
    }
}
