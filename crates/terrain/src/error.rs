//! The workspace-wide error type for terrain builds.
//!
//! Everything below the terrain layer reports [`ugraph::GraphError`]; the
//! layout, mesh and SVG stages add failure modes of their own (inverted
//! layout domains, non-finite height scales, coloring data that does not
//! match the scalar field). [`TerrainError`] unifies both so that a whole
//! pipeline run — `graph-terrain`'s `TerrainPipeline` session as well as
//! `bench::pipeline` — propagates one non-panicking error type from every
//! stage.

use std::fmt;
use ugraph::GraphError;

/// Result alias for terrain construction and the staged pipeline.
pub type TerrainResult<T> = std::result::Result<T, TerrainError>;

/// Any failure of a staged terrain build: an invalid scalar field or graph
/// (wrapped [`GraphError`]), an invalid layout configuration, or mesh
/// inputs that do not fit the tree they are meant to color.
#[derive(Debug)]
pub enum TerrainError {
    /// The graph / scalar-field substrate rejected its input.
    Graph(GraphError),
    /// The 2D layout configuration is invalid (non-finite or non-positive
    /// domain, out-of-range margin fraction).
    Layout {
        /// Human readable description of the violated constraint.
        message: String,
    },
    /// The mesh configuration or coloring data is invalid (non-finite
    /// height scale or baseline, secondary scalar / class vector whose
    /// length does not match the element count, layout built for a
    /// different tree).
    Mesh {
        /// Human readable description of the violated constraint.
        message: String,
    },
    /// A pipeline-level configuration parameter is out of range (e.g. an
    /// SVG size that is not a positive finite number of pixels).
    Config {
        /// The parameter that was rejected.
        what: &'static str,
        /// Human readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for TerrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerrainError::Graph(e) => write!(f, "{e}"),
            TerrainError::Layout { message } => write!(f, "invalid layout: {message}"),
            TerrainError::Mesh { message } => write!(f, "invalid mesh input: {message}"),
            TerrainError::Config { what, message } => {
                write!(f, "invalid configuration for {what}: {message}")
            }
        }
    }
}

impl std::error::Error for TerrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TerrainError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for TerrainError {
    fn from(e: GraphError) -> Self {
        TerrainError::Graph(e)
    }
}

/// Streaming exporters write into arbitrary [`std::io::Write`] sinks; their
/// I/O failures ride the existing [`GraphError::Io`] wrapping so the whole
/// pipeline keeps a single error type.
impl From<std::io::Error> for TerrainError {
    fn from(e: std::io::Error) -> Self {
        TerrainError::Graph(GraphError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TerrainError::Layout { message: "width must be positive, got -1".into() };
        assert!(e.to_string().contains("invalid layout"));
        assert!(e.to_string().contains("-1"));

        let e =
            TerrainError::Mesh { message: "secondary scalar has 3 entries, field has 5".into() };
        assert!(e.to_string().contains("invalid mesh input"));

        let e =
            TerrainError::Config { what: "svg size", message: "width_px must be finite".into() };
        assert!(e.to_string().contains("svg size"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let g = GraphError::LengthMismatch { what: "vertices", expected: 3, actual: 4 };
        let display = g.to_string();
        let e: TerrainError = g.into();
        assert!(matches!(e, TerrainError::Graph(_)));
        assert_eq!(e.to_string(), display);
        assert!(std::error::Error::source(&e).is_some());
    }
}
