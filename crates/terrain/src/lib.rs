//! # terrain — the terrain-metaphor visualization of Section II-E
//!
//! The paper converts a (super) scalar tree into a *terrain*: every tree node
//! becomes a nested boundary in the plane whose enclosed area is proportional
//! to the size of its subtree; each boundary is then lifted to the height of
//! its node's scalar value and walls are drawn between neighboring boundaries.
//! Peaks of the terrain at height α are exactly the maximal α-connected
//! components of the scalar graph, so the one picture shows the whole
//! hierarchy at every threshold simultaneously.
//!
//! The paper's implementation is an interactive OpenGL tool; this crate
//! reproduces the *geometry* and the analysis operations deterministically
//! (see DESIGN.md §4 for the substitution argument):
//!
//! * [`layout2d`] — the nested 2D boundary layout (Figure 4(b)); boundaries
//!   are axis-aligned rectangles, nested by subtree containment, with areas
//!   proportional to subtree member counts;
//! * [`mesh`] — the 3D terrain as a stack of prisms (Figure 4(c)): every super
//!   node extrudes its boundary from its parent's height to its own height;
//! * [`color`] — the red/yellow/green/blue colormap of Section III, coloring
//!   either by the terrain's own scalar or by a second measure / nominal
//!   attribute (Figures 1(a), 9, 11);
//! * [`peaks`] — `peakα` extraction (Definition 6), highest-peak queries and
//!   rectangular region selection (the "click on a peak / linked 2D display"
//!   interactions);
//! * [`scene`] — the retained level-of-detail scene: the LOD layout pass
//!   (culling, recursion gating, child capping, cushion shading), the
//!   flat-arena quadtree index, the power-of-two tile grid, and the `GTSC`
//!   binary scene format streamed to pan/zoom clients;
//! * [`treemap`] — the flat 2D treemap variant of Figure 5(a);
//! * [`export`] — the render boundary: the [`Exporter`] trait over a borrowed
//!   [`RenderScene`], with streaming SVG / treemap-SVG / OBJ / PLY / ASCII /
//!   JSON backends used by the figure harness (the old `String`-returning
//!   free functions remain as deprecated wrappers);
//! * [`error`] — [`TerrainError`], the workspace-wide non-panicking error
//!   type every staged terrain build propagates (wrapping
//!   [`ugraph::GraphError`] and adding layout / mesh / config variants).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod color;
pub mod error;
pub mod export;
pub mod layout2d;
pub mod mesh;
pub mod peaks;
pub mod scene;
pub mod treemap;

pub use color::{colormap, role_palette, Color, ColorScheme};
pub use error::{TerrainError, TerrainResult};
#[allow(deprecated)]
pub use export::ascii::ascii_heightmap;
#[allow(deprecated)]
pub use export::obj::mesh_to_obj;
#[allow(deprecated)]
pub use export::svg::{terrain_to_svg, treemap_to_svg};
pub use export::{
    builtin_exporters, exporter_by_name, exporter_by_name_sized, exporter_names, Ascii, Exporter,
    JsonScene, Obj, Ply, RenderScene, SceneBin, SceneTiming, Svg, TiledSvg, TreemapSvg,
    UnknownExporterError,
};
pub use layout2d::{layout_super_tree, try_layout_super_tree, LayoutConfig, Rect, TerrainLayout};
pub use mesh::{build_terrain_mesh, try_build_terrain_mesh, MeshBounds, MeshConfig, TerrainMesh};
pub use peaks::{highest_peaks, peaks_at_alpha, select_region, Peak};
pub use scene::{
    decode_gtsc, GtscDocument, GtscHeader, GtscItem, LodConfig, Quadtree, Scene, SceneItem, TileKey,
};
pub use treemap::{build_treemap, Treemap, TreemapCell};
