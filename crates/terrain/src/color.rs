//! Colors and colormaps for terrain rendering.
//!
//! Section III of the paper: "The color ranges from red (most intense);
//! yellow (intense); green (less intense); blue (least intense)." The terrain
//! can be colored by the scalar that generated it, by a *second* scalar
//! (Figure 1(a): K-Core terrain colored by degree), or by a nominal attribute
//! such as the dominant role (Figure 9) or the plant genus (Figure 11).

/// An sRGB color.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Construct a color from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// CSS hex representation, e.g. `#ff7f00`.
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Linear interpolation between two colors.
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
        Color { r: mix(a.r, b.r), g: mix(a.g, b.g), b: mix(a.b, b.b) }
    }

    /// A slightly darker shade (used for wall faces so they read as 3D).
    pub fn darkened(&self, factor: f64) -> Color {
        let factor = factor.clamp(0.0, 1.0);
        Color {
            r: (self.r as f64 * factor) as u8,
            g: (self.g as f64 * factor) as u8,
            b: (self.b as f64 * factor) as u8,
        }
    }
}

/// The paper's four anchor colors, least to most intense.
pub const BLUE: Color = Color::rgb(43, 98, 209);
/// Green anchor ("less intense").
pub const GREEN: Color = Color::rgb(58, 178, 94);
/// Yellow anchor ("intense").
pub const YELLOW: Color = Color::rgb(243, 201, 55);
/// Red anchor ("most intense").
pub const RED: Color = Color::rgb(214, 49, 37);

/// How to color the terrain.
#[derive(Clone, Debug, PartialEq)]
pub enum ColorScheme {
    /// Color by the terrain's own scalar (the default).
    ByHeight,
    /// Color by a secondary per-element scalar: the color of a super node is
    /// the colormapped mean of its members' secondary values.
    BySecondaryScalar(Vec<f64>),
    /// Color by a nominal per-element class (e.g. role or genus): the color of
    /// a super node is the palette color of its members' majority class.
    ByClass {
        /// Class index per element.
        classes: Vec<usize>,
        /// Palette indexed by class.
        palette: Vec<Color>,
    },
}

/// The blue→green→yellow→red colormap on a normalized value in `[0, 1]`.
pub fn colormap(t: f64) -> Color {
    let t = t.clamp(0.0, 1.0);
    if t < 1.0 / 3.0 {
        Color::lerp(BLUE, GREEN, t * 3.0)
    } else if t < 2.0 / 3.0 {
        Color::lerp(GREEN, YELLOW, (t - 1.0 / 3.0) * 3.0)
    } else {
        Color::lerp(YELLOW, RED, (t - 2.0 / 3.0) * 3.0)
    }
}

/// The role palette of Figure 9: hub = green, dense community = blue,
/// periphery = red, whisker = gray (indexed by `measures::Role::code()`).
pub fn role_palette() -> Vec<Color> {
    vec![
        Color::rgb(58, 178, 94),   // hub -> green
        Color::rgb(43, 98, 209),   // dense community -> blue
        Color::rgb(214, 49, 37),   // periphery -> red
        Color::rgb(150, 150, 150), // whisker -> gray
    ]
}

/// Normalize a slice of values to `[0, 1]` (constant slices map to 0.5).
pub fn normalize_for_color(values: &[f64]) -> Vec<f64> {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() || max <= min {
        return vec![0.5; values.len()];
    }
    values.iter().map(|&v| (v - min) / (max - min)).collect()
}

/// Resolve the color of one super node given the coloring scheme.
///
/// `members` are the original element ids of the node, `normalized_height` is
/// the node's scalar normalized to `[0, 1]` over the whole tree.
pub fn node_color(scheme: &ColorScheme, members: &[u32], normalized_height: f64) -> Color {
    match scheme {
        ColorScheme::ByHeight => colormap(normalized_height),
        ColorScheme::BySecondaryScalar(values) => {
            if members.is_empty() {
                return colormap(normalized_height);
            }
            let normalized = normalize_for_color(values);
            let mean = members
                .iter()
                .map(|&m| normalized.get(m as usize).copied().unwrap_or(0.5))
                .sum::<f64>()
                / members.len() as f64;
            colormap(mean)
        }
        ColorScheme::ByClass { classes, palette } => {
            let mut counts = std::collections::HashMap::new();
            for &m in members {
                if let Some(&class) = classes.get(m as usize) {
                    *counts.entry(class).or_insert(0usize) += 1;
                }
            }
            counts
                .into_iter()
                .max_by_key(|&(class, count)| (count, std::cmp::Reverse(class)))
                .and_then(|(class, _)| palette.get(class).copied())
                .unwrap_or(Color::rgb(128, 128, 128))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colormap_endpoints_follow_the_paper_scale() {
        assert_eq!(colormap(0.0), BLUE);
        assert_eq!(colormap(1.0), RED);
        assert_eq!(colormap(1.0 / 3.0), GREEN);
        // Out-of-range inputs clamp.
        assert_eq!(colormap(-5.0), BLUE);
        assert_eq!(colormap(7.0), RED);
    }

    #[test]
    fn colormap_blueness_decreases_along_the_scale() {
        let mut previous = f64::INFINITY;
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            let c = colormap(t);
            // The blue channel decreases monotonically from BLUE to RED.
            assert!((c.b as f64) <= previous + 1e-9, "colormap blue channel not monotone at t={t}");
            previous = c.b as f64;
        }
    }

    #[test]
    fn hex_and_darken() {
        let c = Color::rgb(255, 128, 0);
        assert_eq!(c.hex(), "#ff8000");
        let d = c.darkened(0.5);
        assert_eq!(d, Color::rgb(127, 64, 0));
    }

    #[test]
    fn normalize_handles_constant_and_varying_inputs() {
        assert_eq!(normalize_for_color(&[3.0, 3.0]), vec![0.5, 0.5]);
        let n = normalize_for_color(&[1.0, 2.0, 3.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn node_color_by_secondary_scalar_averages_members() {
        let scheme = ColorScheme::BySecondaryScalar(vec![0.0, 10.0, 10.0, 0.0]);
        let c_high = node_color(&scheme, &[1, 2], 0.0);
        let c_low = node_color(&scheme, &[0, 3], 0.0);
        assert_eq!(c_high, colormap(1.0));
        assert_eq!(c_low, colormap(0.0));
    }

    #[test]
    fn node_color_by_class_takes_majority() {
        let scheme = ColorScheme::ByClass { classes: vec![0, 0, 1, 1, 1], palette: role_palette() };
        let c = node_color(&scheme, &[0, 2, 3, 4], 0.0);
        assert_eq!(c, role_palette()[1]);
        // Empty member list falls back to gray.
        let c = node_color(&scheme, &[], 0.0);
        assert_eq!(c, Color::rgb(128, 128, 128));
    }

    #[test]
    fn by_height_uses_normalized_height() {
        assert_eq!(node_color(&ColorScheme::ByHeight, &[0, 1], 1.0), RED);
    }
}
