//! Nested 2D boundary layout of a super scalar tree (Figure 4(b)).
//!
//! Every super node is assigned an axis-aligned rectangle:
//!
//! * a child's rectangle is strictly contained in its parent's rectangle
//!   (nesting = subtree containment);
//! * siblings' rectangles are disjoint;
//! * the *area* of a node's rectangle is proportional to the number of
//!   elements (graph vertices or edges) in its subtree, within each parent —
//!   the quantity the paper maps to boundary area;
//! * a configurable margin fraction of each parent is reserved as the ring
//!   that visually separates the parent's boundary from its children (the
//!   paper's "wall" footprint).
//!
//! Children are packed with the slice-and-dice rule, alternating the split
//! axis with depth, which keeps the construction deterministic and simple to
//! reason about in tests.

use crate::error::{TerrainError, TerrainResult};
use scalarfield::SuperScalarTree;

/// An axis-aligned rectangle in layout space.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Rect {
    /// Left coordinate.
    pub x0: f64,
    /// Bottom coordinate.
    pub y0: f64,
    /// Right coordinate.
    pub x1: f64,
    /// Top coordinate.
    pub y1: f64,
}

impl Rect {
    /// Construct a rectangle; panics (debug) if the corners are inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        debug_assert!(x1 >= x0 && y1 >= y0, "rectangle corners are inverted");
        Rect { x0, y0, x1, y1 }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (in the plane) of the rectangle.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether `other` lies entirely within `self` (boundaries may touch).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 - 1e-12
            && other.y0 >= self.y0 - 1e-12
            && other.x1 <= self.x1 + 1e-12
            && other.y1 <= self.y1 + 1e-12
    }

    /// Whether a point lies inside the rectangle.
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Whether two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The rectangle shrunk by a margin fraction of its smaller side on every
    /// edge.
    pub fn shrunk(&self, margin_fraction: f64) -> Rect {
        let margin = margin_fraction * self.width().min(self.height());
        Rect {
            x0: self.x0 + margin,
            y0: self.y0 + margin,
            x1: (self.x1 - margin).max(self.x0 + margin),
            y1: (self.y1 - margin).max(self.y0 + margin),
        }
    }
}

/// Configuration of the layout.
#[derive(Clone, Copy, Debug)]
pub struct LayoutConfig {
    /// Width of the whole layout domain.
    pub width: f64,
    /// Height of the whole layout domain.
    pub height: f64,
    /// Fraction of each parent's smaller side reserved as margin around its
    /// children (the visible "ring" of the parent).
    pub margin_fraction: f64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig { width: 1.0, height: 1.0, margin_fraction: 0.06 }
    }
}

impl LayoutConfig {
    /// Validate the configuration: the domain must be finite with positive
    /// area, and the margin fraction must lie in `[0, 0.5)` (at 0.5 the
    /// inner rectangle collapses to a point and every child degenerates).
    pub fn validate(&self) -> TerrainResult<()> {
        let fail = |message: String| Err(TerrainError::Layout { message });
        if !self.width.is_finite() || self.width <= 0.0 {
            return fail(format!("domain width must be finite and positive, got {}", self.width));
        }
        if !self.height.is_finite() || self.height <= 0.0 {
            return fail(format!("domain height must be finite and positive, got {}", self.height));
        }
        if !self.margin_fraction.is_finite() || !(0.0..0.5).contains(&self.margin_fraction) {
            return fail(format!(
                "margin_fraction must lie in [0, 0.5), got {}",
                self.margin_fraction
            ));
        }
        Ok(())
    }
}

/// The complete 2D layout of a super scalar tree.
#[derive(Clone, Debug)]
pub struct TerrainLayout {
    /// `rects[node]` is the boundary rectangle of super node `node`.
    pub rects: Vec<Rect>,
    /// The layout configuration used.
    pub config: LayoutConfig,
    /// Copy of each super node's scalar (for convenience in rendering).
    pub scalar: Vec<f64>,
    /// Copy of each super node's parent.
    pub parent: Vec<Option<u32>>,
    /// Subtree member counts (area weights).
    pub subtree_members: Vec<usize>,
}

impl TerrainLayout {
    /// The deepest (most nested) super node whose rectangle contains the
    /// point, if any — i.e. the terrain node visible from above at `(x, y)`.
    pub fn node_at_point(&self, x: f64, y: f64) -> Option<u32> {
        let mut best: Option<u32> = None;
        let mut best_scalar = f64::NEG_INFINITY;
        for (id, rect) in self.rects.iter().enumerate() {
            if rect.contains_point(x, y) && self.scalar[id] >= best_scalar {
                best = Some(id as u32);
                best_scalar = self.scalar[id];
            }
        }
        best
    }

    /// The height (scalar) of the terrain surface at `(x, y)`, or the baseline
    /// (minimum scalar) if the point is outside every boundary.
    pub fn height_at_point(&self, x: f64, y: f64) -> f64 {
        match self.node_at_point(x, y) {
            Some(node) => self.scalar[node as usize],
            None => self.scalar.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// Compute the nested boundary layout of a super scalar tree, validating the
/// configuration first ([`TerrainError::Layout`] on an invalid domain or
/// margin). This is the entry point of `graph-terrain`'s staged pipeline;
/// [`layout_super_tree`] is the historical infallible wrapper.
pub fn try_layout_super_tree(
    tree: &SuperScalarTree,
    config: &LayoutConfig,
) -> TerrainResult<TerrainLayout> {
    config.validate()?;
    Ok(layout_validated(tree, config))
}

/// Compute the nested boundary layout of a super scalar tree.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`LayoutConfig::validate`]); use
/// [`try_layout_super_tree`] to get a [`TerrainError`] instead.
pub fn layout_super_tree(tree: &SuperScalarTree, config: &LayoutConfig) -> TerrainLayout {
    match try_layout_super_tree(tree, config) {
        Ok(layout) => layout,
        Err(e) => panic!("{e}"),
    }
}

fn layout_validated(tree: &SuperScalarTree, config: &LayoutConfig) -> TerrainLayout {
    let n = tree.node_count();
    let mut rects = vec![Rect::new(0.0, 0.0, 0.0, 0.0); n];
    let subtree_members = tree.subtree_member_counts();

    // Roots partition the full domain horizontally, proportionally to their
    // subtree sizes.
    let domain = Rect::new(0.0, 0.0, config.width, config.height);
    let root_weights: Vec<f64> =
        tree.roots().iter().map(|&r| subtree_members[r as usize] as f64).collect();
    let root_rects = split_rect(&domain, &root_weights, true);
    let mut stack: Vec<(u32, Rect, usize)> =
        tree.roots().iter().zip(root_rects).map(|(&r, rect)| (r, rect, 0usize)).collect();

    while let Some((node, rect, depth)) = stack.pop() {
        rects[node as usize] = rect;
        let children = tree.children(node);
        if children.is_empty() {
            continue;
        }
        // Children share the inner rectangle, proportionally to their subtree
        // sizes; the parent's own members occupy the margin ring (plus a share
        // of the inner area if the parent has many direct members).
        let own = tree.members(node).len() as f64;
        let child_total: f64 = children.iter().map(|&c| subtree_members[c as usize] as f64).sum();
        let inner_full = rect.shrunk(config.margin_fraction);
        // Scale the children's area share by child_total / (child_total + own)
        // so parents with many direct members keep more visible ring area.
        let share = if child_total + own > 0.0 { child_total / (child_total + own) } else { 0.0 };
        let inner = scale_rect_area(&inner_full, share.max(0.2));
        let horizontal = depth % 2 == 0;
        // Walk the children with a running cursor instead of materializing a
        // weight vector and a rect vector per node (`split_rect` stays for the
        // one-shot root partition). `child_total` sums the same values in the
        // same order as `split_rect`'s internal total, so the arithmetic — and
        // therefore every emitted coordinate — is bit-identical to splitting.
        let mut cursor = 0.0f64;
        for &c in children {
            let w = subtree_members[c as usize] as f64;
            let fraction =
                if child_total > 0.0 { w / child_total } else { 1.0 / children.len() as f64 };
            let next = cursor + fraction;
            let child_rect = if horizontal {
                Rect::new(
                    inner.x0 + cursor * inner.width(),
                    inner.y0,
                    inner.x0 + next * inner.width(),
                    inner.y1,
                )
            } else {
                Rect::new(
                    inner.x0,
                    inner.y0 + cursor * inner.height(),
                    inner.x1,
                    inner.y0 + next * inner.height(),
                )
            };
            cursor = next;
            // Leave a hairline gap between siblings so walls are distinct.
            stack.push((c, child_rect.shrunk(0.02), depth + 1));
        }
    }

    TerrainLayout {
        rects,
        config: *config,
        scalar: tree.scalars().to_vec(),
        parent: tree.parents().to_vec(),
        subtree_members,
    }
}

/// Split `rect` into one sub-rectangle per weight, side by side along the
/// chosen axis, with widths proportional to the weights.
fn split_rect(rect: &Rect, weights: &[f64], horizontal: bool) -> Vec<Rect> {
    let total: f64 = weights.iter().sum();
    let mut result = Vec::with_capacity(weights.len());
    if weights.is_empty() {
        return result;
    }
    let mut cursor = 0.0f64;
    for &w in weights {
        let fraction = if total > 0.0 { w / total } else { 1.0 / weights.len() as f64 };
        let next = cursor + fraction;
        let r = if horizontal {
            Rect::new(
                rect.x0 + cursor * rect.width(),
                rect.y0,
                rect.x0 + next * rect.width(),
                rect.y1,
            )
        } else {
            Rect::new(
                rect.x0,
                rect.y0 + cursor * rect.height(),
                rect.x1,
                rect.y0 + next * rect.height(),
            )
        };
        result.push(r);
        cursor = next;
    }
    result
}

/// Shrink a rectangle about its center so its area becomes `fraction` of the
/// original (fraction clamped to [0, 1]).
fn scale_rect_area(rect: &Rect, fraction: f64) -> Rect {
    let fraction = fraction.clamp(0.0, 1.0);
    let scale = fraction.sqrt();
    let (cx, cy) = rect.center();
    let half_w = rect.width() / 2.0 * scale;
    let half_h = rect.height() / 2.0 * scale;
    Rect::new(cx - half_w, cy - half_h, cx + half_w, cy + half_h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use measures::core_numbers;
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::generators::collaboration_graph;
    use ugraph::GraphBuilder;

    fn kcore_super_tree(graph: &ugraph::CsrGraph) -> SuperScalarTree {
        let cores = core_numbers(graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(graph, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    fn figure2_tree() -> SuperScalarTree {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (0, 2), (1, 4), (2, 4)]);
        b.add_edge(3, 5);
        b.extend_edges([(2u32, 6u32), (5, 6)]);
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        let g = b.build();
        let scalar = vec![3.0, 3.0, 4.0, 3.0, 5.0, 4.0, 2.0, 1.5, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        build_super_tree(&vertex_scalar_tree(&sg))
    }

    #[test]
    fn children_are_nested_inside_parents_and_siblings_disjoint() {
        let tree = figure2_tree();
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        for id in 0..tree.node_count() as u32 {
            if let Some(p) = tree.parent(id) {
                assert!(
                    layout.rects[p as usize].contains_rect(&layout.rects[id as usize]),
                    "child {id} must nest inside parent {p}"
                );
            }
            let children = tree.children(id);
            for (i, &a) in children.iter().enumerate() {
                for &b in children.iter().skip(i + 1) {
                    assert!(
                        !layout.rects[a as usize].intersects(&layout.rects[b as usize]),
                        "sibling rects {a} and {b} must not overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn sibling_areas_are_proportional_to_subtree_sizes() {
        let g = collaboration_graph(&ugraph::generators::CollaborationConfig {
            authors: 400,
            papers: 400,
            groups: 8,
            groups_per_component: 4,
            seed: 3,
            ..Default::default()
        });
        let tree = kcore_super_tree(&g);
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let counts = tree.subtree_member_counts();
        for node in 0..tree.node_count() as u32 {
            let children = tree.children(node);
            if children.len() < 2 {
                continue;
            }
            for window in children.windows(2) {
                let (a, b) = (window[0] as usize, window[1] as usize);
                // Skip degenerate slivers where the hairline sibling gap
                // dominates the rectangle.
                if counts[a] < 3 || counts[b] < 3 {
                    continue;
                }
                let area_ratio = layout.rects[a].area() / layout.rects[b].area().max(1e-12);
                let count_ratio = counts[a] as f64 / counts[b] as f64;
                // Slice-and-dice with identical sibling gaps keeps the ratio
                // close to the member-count ratio.
                assert!(
                    (area_ratio / count_ratio - 1.0).abs() < 0.5,
                    "area ratio {area_ratio} vs count ratio {count_ratio}"
                );
            }
        }
    }

    #[test]
    fn height_at_point_matches_deepest_nested_node() {
        let tree = figure2_tree();
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        // The center of the highest-scalar node's rect must report that
        // node's height.
        let highest = layout.scalar.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let (cx, cy) = layout.rects[highest].center();
        assert_eq!(layout.node_at_point(cx, cy), Some(highest as u32));
        assert_eq!(layout.height_at_point(cx, cy), layout.scalar[highest]);
        // A point outside the domain falls back to the baseline height.
        let baseline = layout.scalar.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(layout.height_at_point(55.0, 55.0), baseline);
    }

    #[test]
    fn every_rect_fits_in_the_domain() {
        let g = collaboration_graph(&ugraph::generators::CollaborationConfig {
            authors: 300,
            papers: 250,
            groups: 6,
            seed: 11,
            ..Default::default()
        });
        let tree = kcore_super_tree(&g);
        let config = LayoutConfig { width: 10.0, height: 6.0, margin_fraction: 0.05 };
        let layout = layout_super_tree(&tree, &config);
        let domain = Rect::new(0.0, 0.0, 10.0, 6.0);
        for rect in &layout.rects {
            assert!(domain.contains_rect(rect));
            assert!(rect.area() >= 0.0);
        }
    }

    #[test]
    fn invalid_configs_are_rejected_not_laid_out() {
        let tree = figure2_tree();
        for bad in [
            LayoutConfig { width: 0.0, ..Default::default() },
            LayoutConfig { width: -3.0, ..Default::default() },
            LayoutConfig { height: f64::NAN, ..Default::default() },
            LayoutConfig { height: f64::INFINITY, ..Default::default() },
            LayoutConfig { margin_fraction: 0.5, ..Default::default() },
            LayoutConfig { margin_fraction: -0.1, ..Default::default() },
        ] {
            let err = try_layout_super_tree(&tree, &bad).unwrap_err();
            assert!(
                matches!(err, crate::error::TerrainError::Layout { .. }),
                "expected a layout error for {bad:?}, got {err:?}"
            );
        }
        // The fallible and infallible paths agree on valid input.
        let config = LayoutConfig::default();
        let a = try_layout_super_tree(&tree, &config).unwrap();
        let b = layout_super_tree(&tree, &config);
        assert_eq!(a.rects, b.rects);
    }

    #[test]
    fn rect_helpers() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), (2.0, 1.0));
        assert!(r.contains_point(1.0, 1.0));
        assert!(!r.contains_point(5.0, 1.0));
        let inner = r.shrunk(0.25);
        assert!(r.contains_rect(&inner));
        assert!(inner.area() < r.area());
        let disjoint = Rect::new(10.0, 10.0, 11.0, 11.0);
        assert!(!r.intersects(&disjoint));
    }
}
