//! The flat 2D treemap view (Figure 5(a)).
//!
//! Section II-E: "We can also link a 2D treemap of the scalar graph by setting
//! the height of all boundaries to 0 and (optionally) using colors –
//! red/yellow/green/blue – to indicate highest/high/low/lowest value." The
//! treemap shares the nested layout with the 3D terrain; only the encoding of
//! the scalar changes (color instead of height), which is exactly the
//! trade-off the paper discusses (peaks 1 and 2 of Figure 5 are
//! distinguishable by height but not by color).

use crate::color::{colormap, normalize_for_color, Color};
use crate::layout2d::{Rect, TerrainLayout};
use scalarfield::SuperScalarTree;

/// One cell of the treemap (one super node).
#[derive(Clone, Debug, PartialEq)]
pub struct TreemapCell {
    /// The super node this cell represents.
    pub node: u32,
    /// The cell rectangle.
    pub rect: Rect,
    /// The node's scalar value.
    pub scalar: f64,
    /// The fill color (colormapped scalar).
    pub color: Color,
    /// Nesting depth (for draw order: parents first).
    pub depth: usize,
    /// Number of graph elements in the node's subtree.
    pub subtree_members: usize,
}

/// A 2D treemap of a super scalar tree.
#[derive(Clone, Debug, Default)]
pub struct Treemap {
    /// Cells in draw order (parents before children).
    pub cells: Vec<TreemapCell>,
}

impl Treemap {
    /// Number of cells (= number of super nodes).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell of a given super node.
    pub fn cell_of(&self, node: u32) -> Option<&TreemapCell> {
        self.cells.iter().find(|c| c.node == node)
    }
}

/// Build the 2D treemap from a super tree and its layout.
pub fn build_treemap(tree: &SuperScalarTree, layout: &TerrainLayout) -> Treemap {
    let normalized = normalize_for_color(tree.scalars());
    let mut cells: Vec<TreemapCell> = (0..tree.node_count())
        .map(|id| TreemapCell {
            node: id as u32,
            rect: layout.rects[id],
            scalar: tree.scalars()[id],
            color: colormap(normalized[id]),
            depth: tree.depths()[id] as usize,
            subtree_members: tree.subtree_member_count(id as u32),
        })
        .collect();
    // Draw order: shallow first so nested cells paint over their parents.
    cells.sort_by_key(|c| (c.depth, c.node));
    Treemap { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{BLUE, RED};
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};
    use ugraph::GraphBuilder;

    fn chain_treemap() -> (SuperScalarTree, Treemap) {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        let g = b.build();
        let scalar = vec![4.0, 3.0, 2.0, 1.0];
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let map = build_treemap(&tree, &layout);
        (tree, map)
    }

    #[test]
    fn one_cell_per_super_node_in_parent_first_order() {
        let (tree, map) = chain_treemap();
        assert_eq!(map.cell_count(), tree.node_count());
        for w in map.cells.windows(2) {
            assert!(w[0].depth <= w[1].depth, "cells must be ordered parents-first");
        }
    }

    #[test]
    fn colors_span_the_scale() {
        let (tree, map) = chain_treemap();
        // The minimum-scalar node is blue, the maximum-scalar node is red.
        let min_node = (0..tree.node_count())
            .min_by(|&a, &b| tree.scalars()[a].total_cmp(&tree.scalars()[b]))
            .unwrap();
        let max_node = (0..tree.node_count())
            .max_by(|&a, &b| tree.scalars()[a].total_cmp(&tree.scalars()[b]))
            .unwrap();
        assert_eq!(map.cell_of(min_node as u32).unwrap().color, BLUE);
        assert_eq!(map.cell_of(max_node as u32).unwrap().color, RED);
    }

    #[test]
    fn cells_record_subtree_sizes() {
        let (tree, map) = chain_treemap();
        let root = tree.roots()[0];
        assert_eq!(map.cell_of(root).unwrap().subtree_members, 4);
        assert_eq!(map.cell_of(root).unwrap().depth, 0);
    }
}
