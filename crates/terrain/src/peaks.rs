//! Peak extraction and interactive-style selection queries.
//!
//! Definition 6 of the paper: a `peakα` is the terrain area within a boundary
//! whose height is α; every `peakα` corresponds to a maximal α-connected
//! component, and the area of its bottom boundary reflects the component's
//! size. This module exposes those correspondences as queries:
//!
//! * [`peaks_at_alpha`] — cut the terrain with the horizontal plane `z = α`
//!   and return one [`Peak`] per maximal α-connected component;
//! * [`highest_peaks`] — the tallest peaks of the terrain (what a user finds
//!   by glancing at the picture; used by the simulated user study);
//! * [`select_region`] — all graph elements whose boundary rectangles
//!   intersect a query rectangle (the programmatic equivalent of selecting a
//!   region of the terrain and invoking the linked-2D-display callback).

use crate::layout2d::{Rect, TerrainLayout};
use scalarfield::{components_at_alpha, SuperScalarTree};

/// One peak of the terrain.
#[derive(Clone, Debug, PartialEq)]
pub struct Peak {
    /// The super node that roots this peak's subtree.
    pub root_node: u32,
    /// The cut height α this peak was extracted at (equals `base_height` for
    /// [`highest_peaks`]).
    pub alpha: f64,
    /// Scalar value at the peak's base (the root super node's scalar).
    pub base_height: f64,
    /// The maximum scalar value inside the peak (its summit height).
    pub summit_height: f64,
    /// Number of graph elements (vertices or edges) under the peak.
    pub member_count: usize,
    /// The graph elements under the peak, sorted by id.
    pub members: Vec<u32>,
    /// The peak's footprint rectangle in the 2D layout.
    pub footprint: Rect,
}

impl Peak {
    /// Area of the peak's footprint (proportional, by construction of the
    /// layout, to `member_count` within its parent).
    pub fn base_area(&self) -> f64 {
        self.footprint.area()
    }
}

/// All peaks at cut height `alpha`: one per maximal α-connected component.
pub fn peaks_at_alpha(tree: &SuperScalarTree, layout: &TerrainLayout, alpha: f64) -> Vec<Peak> {
    let cut = components_at_alpha(tree, alpha);
    cut.component_roots.iter().map(|&root| build_peak(tree, layout, root, alpha)).collect()
}

/// The `count` highest peaks of the terrain, tallest first.
///
/// A "highest peak" is the subtree rooted at a super node of locally maximal
/// scalar (a leaf super node, i.e. a summit), ranked by its scalar value; ties
/// are broken towards larger member counts and then smaller node ids so the
/// ordering is deterministic. Ranking uses [`f64::total_cmp`], so a tree that
/// somehow carries NaN scalars sorts them deterministically instead of
/// panicking mid-comparison.
pub fn highest_peaks(tree: &SuperScalarTree, layout: &TerrainLayout, count: usize) -> Vec<Peak> {
    let mut summits: Vec<u32> =
        (0..tree.node_count() as u32).filter(|&n| tree.children(n).is_empty()).collect();
    summits.sort_by(|&a, &b| {
        tree.scalar(b)
            .total_cmp(&tree.scalar(a))
            .then(tree.subtree_member_count(b).cmp(&tree.subtree_member_count(a)))
            .then(a.cmp(&b))
    });
    summits
        .into_iter()
        .take(count)
        .map(|summit| build_peak(tree, layout, summit, tree.scalar(summit)))
        .collect()
}

/// All graph elements whose boundary rectangle intersects `region` — the
/// "select a region of the terrain, then draw it with another visualization"
/// interaction of Section II-E.
pub fn select_region(tree: &SuperScalarTree, layout: &TerrainLayout, region: &Rect) -> Vec<u32> {
    let mut members = Vec::new();
    for id in 0..tree.node_count() as u32 {
        if layout.rects[id as usize].intersects(region) {
            members.extend_from_slice(tree.members(id));
        }
    }
    members.sort_unstable();
    members.dedup();
    members
}

fn build_peak(tree: &SuperScalarTree, layout: &TerrainLayout, root: u32, alpha: f64) -> Peak {
    let members = tree.subtree_members(root);
    // Summit height: maximum scalar in the subtree — a linear scan over the
    // subtree's contiguous arena id range, no stack needed.
    let summit =
        tree.subtree_nodes(root).map(|node| tree.scalar(node)).fold(f64::NEG_INFINITY, f64::max);
    Peak {
        root_node: root,
        alpha,
        base_height: tree.scalar(root),
        summit_height: summit,
        member_count: members.len(),
        members,
        footprint: layout.rects[root as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout2d::{layout_super_tree, LayoutConfig};
    use measures::core_numbers;
    use scalarfield::{
        build_super_tree, maximal_alpha_components, vertex_scalar_tree, VertexScalarGraph,
    };
    use std::collections::BTreeSet;
    use ugraph::{CsrGraph, GraphBuilder};

    /// Two K4 cliques joined by a long path: two clear K-Core peaks.
    fn two_clique_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v);
                b.add_edge(u + 4, v + 4);
            }
        }
        b.extend_edges([(3u32, 8u32), (8, 9), (9, 4)]);
        b.build()
    }

    fn kcore_pipeline(graph: &CsrGraph) -> (SuperScalarTree, TerrainLayout, Vec<f64>) {
        let cores = core_numbers(graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = VertexScalarGraph::new(graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        (tree, layout, scalar)
    }

    #[test]
    fn peaks_at_alpha_match_maximal_components() {
        let g = two_clique_graph();
        let (tree, layout, scalar) = kcore_pipeline(&g);
        let sg = VertexScalarGraph::new(&g, &scalar).unwrap();
        for alpha in [1.0, 2.0, 3.0] {
            let peaks = peaks_at_alpha(&tree, &layout, alpha);
            let direct = maximal_alpha_components(&sg, alpha);
            assert_eq!(peaks.len(), direct.len(), "alpha {alpha}");
            let peak_sets: BTreeSet<BTreeSet<u32>> =
                peaks.iter().map(|p| p.members.iter().copied().collect()).collect();
            let direct_sets: BTreeSet<BTreeSet<u32>> =
                direct.into_iter().map(|c| c.vertices.into_iter().map(|v| v.0).collect()).collect();
            assert_eq!(peak_sets, direct_sets, "alpha {alpha}");
        }
    }

    #[test]
    fn two_cliques_give_two_peaks_at_core_3() {
        let g = two_clique_graph();
        let (tree, layout, _) = kcore_pipeline(&g);
        let peaks = peaks_at_alpha(&tree, &layout, 3.0);
        assert_eq!(peaks.len(), 2, "each K4 is its own 3-core peak");
        for p in &peaks {
            assert_eq!(p.member_count, 4);
            assert_eq!(p.summit_height, 3.0);
            assert!(p.base_area() > 0.0);
        }
        // The two peak footprints are disjoint.
        assert!(!peaks[0].footprint.intersects(&peaks[1].footprint));
    }

    #[test]
    fn highest_peaks_are_sorted_and_capture_summits() {
        let g = two_clique_graph();
        let (tree, layout, _) = kcore_pipeline(&g);
        let peaks = highest_peaks(&tree, &layout, 5);
        assert!(!peaks.is_empty());
        for w in peaks.windows(2) {
            assert!(w[0].summit_height >= w[1].summit_height);
        }
        assert_eq!(peaks[0].summit_height, 3.0);
        // Requesting more peaks than summits just returns all of them.
        let all = highest_peaks(&tree, &layout, 100);
        assert!(all.len() <= tree.node_count());
    }

    #[test]
    fn select_region_returns_members_under_the_rectangle() {
        let g = two_clique_graph();
        let (tree, layout, _) = kcore_pipeline(&g);
        // Selecting the whole domain returns every vertex.
        let all = select_region(
            &tree,
            &layout,
            &Rect::new(0.0, 0.0, layout.config.width, layout.config.height),
        );
        assert_eq!(all.len(), g.vertex_count());
        // Selecting one peak's footprint returns at least that peak's members
        // and not the other peak's (footprints are disjoint).
        let peaks = peaks_at_alpha(&tree, &layout, 3.0);
        let selected = select_region(&tree, &layout, &peaks[0].footprint);
        for m in &peaks[0].members {
            assert!(selected.contains(m));
        }
        for m in &peaks[1].members {
            assert!(!peaks[0].members.contains(m));
        }
        // An empty region off the terrain selects nothing.
        let nothing = select_region(&tree, &layout, &Rect::new(50.0, 50.0, 51.0, 51.0));
        assert!(nothing.is_empty());
    }

    #[test]
    fn alpha_above_summit_gives_no_peaks() {
        let g = two_clique_graph();
        let (tree, layout, _) = kcore_pipeline(&g);
        assert!(peaks_at_alpha(&tree, &layout, 10.0).is_empty());
    }
}
