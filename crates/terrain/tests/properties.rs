//! Property-based tests for the terrain layer: nesting and area invariants of
//! the 2D layout, mesh/height consistency, and peak ↔ component agreement on
//! arbitrary scalar graphs.

use proptest::prelude::*;
use scalarfield::{
    build_super_tree, component_members_at_alpha, vertex_scalar_tree, VertexScalarGraph,
};
use std::collections::BTreeSet;
use terrain::{
    build_terrain_mesh, layout_super_tree, peaks_at_alpha, Ascii, Exporter, JsonScene,
    LayoutConfig, MeshConfig, Obj, Ply, RenderScene, Svg, TreemapSvg,
};
use ugraph::{CsrGraph, GraphBuilder};

fn graph_and_scalars(max_n: usize) -> impl Strategy<Value = (CsrGraph, Vec<f64>)> {
    (2usize..max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
            let scalars = proptest::collection::vec(0u8..5, n);
            (Just(n), edges, scalars)
        })
        .prop_map(|(n, edges, scalars)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            (b.build(), scalars.into_iter().map(|s| s as f64).collect())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layout invariants: children nest inside parents, siblings stay disjoint,
    /// everything fits in the configured domain.
    #[test]
    fn layout_nesting_invariants((graph, scalar) in graph_and_scalars(24)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let config = LayoutConfig { width: 4.0, height: 3.0, margin_fraction: 0.05 };
        let layout = layout_super_tree(&tree, &config);
        let domain = terrain::Rect::new(0.0, 0.0, 4.0, 3.0);
        for id in 0..tree.node_count() as u32 {
            prop_assert!(domain.contains_rect(&layout.rects[id as usize]));
            if let Some(p) = tree.parent(id) {
                prop_assert!(layout.rects[p as usize].contains_rect(&layout.rects[id as usize]));
            }
            let children = tree.children(id);
            for (i, &a) in children.iter().enumerate() {
                for &b in children.iter().skip(i + 1) {
                    prop_assert!(!layout.rects[a as usize].intersects(&layout.rects[b as usize]));
                }
            }
        }
    }

    /// Mesh invariants: two cap triangles per super node, every cap at its
    /// node's scaled height, wall count determined by the raised nodes.
    #[test]
    fn mesh_heights_match_tree_scalars((graph, scalar) in graph_and_scalars(20)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        let caps = mesh.triangles.iter().filter(|t| t.is_top).count();
        prop_assert_eq!(caps, 2 * tree.node_count());
        let min = tree.scalars().iter().copied().fold(f64::INFINITY, f64::min);
        for t in mesh.triangles.iter().filter(|t| t.is_top) {
            let expected = tree.scalar(t.node) - min;
            for &i in &t.indices {
                prop_assert!((mesh.vertices[i as usize].z - expected).abs() < 1e-9);
            }
        }
    }

    /// Peaks at every distinct scalar level agree with the maximal
    /// α-connected components read off the super tree.
    #[test]
    fn peaks_agree_with_alpha_components((graph, scalar) in graph_and_scalars(20)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mut levels = scalar.clone();
        levels.sort_by(f64::total_cmp);
        levels.dedup();
        for alpha in levels {
            let peaks: BTreeSet<BTreeSet<u32>> = peaks_at_alpha(&tree, &layout, alpha)
                .into_iter()
                .map(|p| p.members.into_iter().collect())
                .collect();
            let components: BTreeSet<BTreeSet<u32>> = component_members_at_alpha(&tree, alpha)
                .into_iter()
                .map(|m| m.into_iter().collect())
                .collect();
            prop_assert_eq!(peaks, components);
        }
    }

    /// Every exporter backend produces structurally consistent output for
    /// arbitrary terrains: one SVG polygon per triangle, one OBJ vertex line
    /// per mesh vertex, one treemap rect per super node, one PLY face line
    /// per triangle, an ASCII grid of the requested size, balanced JSON
    /// delimiters, and no NaN coordinates anywhere.
    #[test]
    fn exporters_are_structurally_consistent((graph, scalar) in graph_and_scalars(18)) {
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&tree, &LayoutConfig::default());
        let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
        let scene = RenderScene::new(&tree, &layout, &mesh);

        let svg = Svg::new(320.0, 240.0).export_string(&scene).unwrap();
        prop_assert_eq!(svg.matches("<polygon").count(), mesh.triangle_count());
        prop_assert!(!svg.contains("NaN"));

        let obj = Obj.export_string(&scene).unwrap();
        prop_assert_eq!(obj.lines().filter(|l| l.starts_with("v ")).count(), mesh.vertex_count());

        let map_svg = TreemapSvg::new(320.0, 240.0).export_string(&scene).unwrap();
        prop_assert_eq!(map_svg.matches("<rect").count(), tree.node_count());

        let ply = Ply.export_string(&scene).unwrap();
        prop_assert_eq!(
            ply.lines().filter(|l| l.starts_with("3 ")).count(),
            mesh.triangle_count()
        );

        let json = JsonScene.export_string(&scene).unwrap();
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
        prop_assert_eq!(json.matches('[').count(), json.matches(']').count());
        prop_assert!(!json.contains("NaN"));

        let art = Ascii::new(24, 8).export_string(&scene).unwrap();
        if tree.node_count() > 0 {
            prop_assert_eq!(art.lines().count(), 8);
            prop_assert!(art.lines().all(|l| l.chars().count() == 24));
        }
    }
}
