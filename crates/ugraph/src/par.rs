//! Deterministic chunked parallelism for the measure and pipeline layers.
//!
//! The hot algorithms of the workspace — Brandes betweenness, all-sources
//! BFS closeness, the PageRank power iteration, triangle counting — are
//! embarrassingly parallel over sources, vertices or edges. This module is
//! the execution engine they share. It is dependency-free (no rayon; the
//! build container has no crates.io access) and built on
//! [`std::thread::scope`], with one design rule that everything else follows
//! from:
//!
//! > **The work decomposition never depends on the thread count.**
//!
//! An input of length `len` is always split into the same chunks — a pure
//! function of `len` and the *declared* chunk-count target
//! ([`Parallelism::width`], default [`DEFAULT_WIDTH`]; see [`chunk_size`]) —
//! each chunk produces its own accumulator, and accumulators are merged
//! left-to-right in chunk order. Threads only change *who* computes a chunk,
//! never *what* a chunk is or the order accumulators combine. Floating-point
//! reductions therefore give **bit-identical results** for
//! [`Parallelism::Serial`] and [`Parallelism::Threads`]`(n)` for every `n`
//! — the property tests in `measures` assert exact `==` on `Vec<f64>`
//! outputs across thread counts.
//!
//! The width is part of the *declared decomposition*, not of the execution:
//! [`Parallelism::Wide`]`{ threads, width }` splits the input into up to
//! `width` chunks, so machines beyond [`DEFAULT_WIDTH`]-way parallelism can
//! be saturated — at the cost of results being a function of the chosen
//! width. For any *fixed* width the bit-identity guarantee is unchanged:
//!
//! ```
//! use ugraph::par::{map_reduce_chunks, Parallelism};
//!
//! let xs: Vec<f64> = (0..50_000).map(|i| (i as f64).cos()).collect();
//! let sum = |p: Parallelism| {
//!     map_reduce_chunks(p, xs.len(), |r| xs[r].iter().sum::<f64>(), |a, b| a + b).unwrap()
//! };
//! // 128 chunks, executed on 1 worker and on 8 workers: the same f64.
//! let wide_serial = sum(Parallelism::Serial.with_width(128));
//! let wide_threads = sum(Parallelism::Threads(8).with_width(128));
//! assert_eq!(wide_serial.to_bits(), wide_threads.to_bits());
//! ```
//!
//! ## Example
//!
//! ```
//! use ugraph::par::{map_reduce_chunks, Parallelism};
//!
//! let xs: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.1).collect();
//! let sum = |p: Parallelism| {
//!     map_reduce_chunks(p, xs.len(), |range| xs[range].iter().sum::<f64>(), |a, b| a + b)
//!         .unwrap_or(0.0)
//! };
//! // Not merely approximately equal: the exact same f64, bit for bit.
//! assert_eq!(sum(Parallelism::Serial).to_bits(), sum(Parallelism::Threads(4)).to_bits());
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel region may use, and (optionally) how
/// finely the input is decomposed.
///
/// The thread count never affects results (see the module docs), only
/// wall-clock time, so callers can default to [`Parallelism::auto`] without
/// giving up reproducibility. The *width* — the chunk-count target of
/// [`Parallelism::Wide`] — does shape results of floating-point reductions
/// (it decides the merge tree), which is why it is an explicit, declared
/// parameter and is never derived from the thread count or the machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Run everything on the calling thread. No threads are spawned.
    #[default]
    Serial,
    /// Use up to this many worker threads (`Threads(0)` and `Threads(1)`
    /// behave like [`Parallelism::Serial`]) over the default decomposition
    /// of [`DEFAULT_WIDTH`] chunks.
    Threads(usize),
    /// Use up to `threads` workers over an input split into up to `width`
    /// chunks (`width` ≥ 1; 0 is treated as 1).
    ///
    /// Use this to saturate machines with more than [`DEFAULT_WIDTH`] cores,
    /// or to load-balance skewed per-chunk costs with a finer decomposition.
    /// Results are bit-identical across `threads` for any fixed `width`, but
    /// two different widths are two different merge orders — record the width
    /// next to any number you want to reproduce (the bench ladder does).
    Wide {
        /// Worker-thread budget (0 and 1 mean serial execution).
        threads: usize,
        /// Chunk-count target the input is split into (0 means 1).
        width: usize,
    },
}

impl Parallelism {
    /// The parallelism the machine offers:
    /// `Threads(`[`std::thread::available_parallelism`]`)`, or
    /// [`Parallelism::Serial`] when that cannot be determined.
    pub fn auto() -> Parallelism {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Parallelism::Threads(n.get()),
            _ => Parallelism::Serial,
        }
    }

    /// The number of worker threads this setting allows (at least 1).
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Wide { threads, .. } => threads.max(1),
        }
    }

    /// The chunk-count target this setting declares (at least 1):
    /// [`DEFAULT_WIDTH`] for [`Parallelism::Serial`] and
    /// [`Parallelism::Threads`], the carried width for
    /// [`Parallelism::Wide`].
    ///
    /// ```
    /// use ugraph::par::{Parallelism, DEFAULT_WIDTH};
    ///
    /// assert_eq!(Parallelism::Serial.width(), DEFAULT_WIDTH);
    /// assert_eq!(Parallelism::Threads(64).width(), DEFAULT_WIDTH);
    /// assert_eq!(Parallelism::Threads(64).with_width(256).width(), 256);
    /// ```
    pub fn width(self) -> usize {
        match self {
            Parallelism::Serial | Parallelism::Threads(_) => DEFAULT_WIDTH,
            Parallelism::Wide { width, .. } => width.max(1),
        }
    }

    /// This setting with an explicit chunk-count target: the same thread
    /// budget as `self`, decomposing inputs into up to `width` chunks.
    ///
    /// `Serial.with_width(w)` keeps serial *execution* but adopts the `w`-chunk
    /// decomposition — exactly what `Threads(n).with_width(w)` computes, so the
    /// two compare bit-for-bit in the determinism tests.
    pub fn with_width(self, width: usize) -> Parallelism {
        Parallelism::Wide { threads: self.thread_count(), width }
    }

    /// The flag string [`Parallelism::parse`] maps back to an equivalent
    /// setting: `"serial"`, `"4"`, `"4x128"`. The bench ladder records this
    /// form in `BENCH_*.json` so a baseline's parallelism column pastes
    /// straight back into `scale_ladder --parallelism`.
    ///
    /// ```
    /// use ugraph::par::Parallelism;
    ///
    /// for p in [Parallelism::Serial, Parallelism::Threads(4), Parallelism::Threads(4).with_width(128)] {
    ///     let flag = p.canonical_flag();
    ///     let parsed = Parallelism::parse(&flag).unwrap();
    ///     // Round-trips to a behaviorally identical setting.
    ///     assert_eq!(parsed.thread_count(), p.thread_count());
    ///     assert_eq!(parsed.width(), p.width());
    /// }
    /// assert_eq!(Parallelism::Threads(4).canonical_flag(), "4");
    /// assert_eq!(Parallelism::Serial.with_width(64).canonical_flag(), "1x64");
    /// ```
    pub fn canonical_flag(self) -> String {
        match self {
            Parallelism::Serial => "serial".to_string(),
            Parallelism::Threads(n) => n.max(1).to_string(),
            Parallelism::Wide { threads, width } => {
                format!("{}x{}", threads.max(1), width.max(1))
            }
        }
    }

    /// Parse a `Parallelism` from a thread-count string: `"serial"`, `"auto"`,
    /// an integer — `"0"` and `"1"` mean serial, consistent with how
    /// [`Parallelism::Threads`]`(0)` behaves — or `"<threads>x<width>"`
    /// (e.g. `"8x128"`: 8 workers over a 128-chunk decomposition).
    ///
    /// This is the format the figure binaries accept for `--threads`, the
    /// bench ladder accepts in `--parallelism`, and the terrain server
    /// accepts as the `threads` query parameter. A rejected string carries a
    /// typed [`ParseParallelismError`] saying *which* part was wrong, so
    /// callers (a CLI warning, an HTTP 400 body) can report it precisely.
    pub fn parse(s: &str) -> Result<Parallelism, ParseParallelismError> {
        let fail = |kind| Err(ParseParallelismError { input: s.to_string(), kind });
        if let Some((threads, width)) = s.split_once('x') {
            let Ok(threads) = threads.parse::<usize>() else {
                return fail(ParseParallelismErrorKind::BadThreadCount);
            };
            let Ok(width) = width.parse::<usize>() else {
                return fail(ParseParallelismErrorKind::BadWidth);
            };
            if width == 0 {
                return fail(ParseParallelismErrorKind::ZeroWidth);
            }
            return Ok(Parallelism::Wide { threads, width });
        }
        match s {
            "serial" => Ok(Parallelism::Serial),
            "auto" => Ok(Parallelism::auto()),
            _ => match s.parse::<usize>() {
                Ok(0 | 1) => Ok(Parallelism::Serial),
                Ok(n) => Ok(Parallelism::Threads(n)),
                Err(_) => fail(ParseParallelismErrorKind::Unrecognized),
            },
        }
    }
}

/// Why a [`Parallelism::parse`] input was rejected.
///
/// The variants name the offending part of the flag; [`std::fmt::Display`]
/// renders a full sentence including [`ParseParallelismError::EXPECTED`], so
/// an error surfaced verbatim (CLI warning, HTTP 400 body) tells the caller
/// exactly what the accepted forms are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseParallelismError {
    input: String,
    kind: ParseParallelismErrorKind,
}

/// The specific malformation [`Parallelism::parse`] found.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParseParallelismErrorKind {
    /// The `<threads>` part of a `<threads>x<width>` form is not a number.
    BadThreadCount,
    /// The `<width>` part of a `<threads>x<width>` form is not a number.
    BadWidth,
    /// A `<threads>x0` form: a zero width is a typo, not a request.
    ZeroWidth,
    /// The input is none of `serial`, `auto`, an integer, or a `NxW` pair.
    Unrecognized,
}

impl ParseParallelismError {
    /// The accepted input forms, as a human-readable fragment.
    pub const EXPECTED: &'static str =
        "`serial`, `auto`, a thread count, or `<threads>x<width>` with a nonzero width";

    /// The string that failed to parse, verbatim.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Which part of the input was malformed.
    pub fn kind(&self) -> ParseParallelismErrorKind {
        self.kind
    }
}

impl std::fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let problem = match self.kind {
            ParseParallelismErrorKind::BadThreadCount => "the thread count is not a number",
            ParseParallelismErrorKind::BadWidth => "the chunk width is not a number",
            ParseParallelismErrorKind::ZeroWidth => "the chunk width must be nonzero",
            ParseParallelismErrorKind::Unrecognized => "unrecognized form",
        };
        write!(f, "invalid parallelism {:?}: {problem}; expected {}", self.input, Self::EXPECTED)
    }
}

impl std::error::Error for ParseParallelismError {}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
            Parallelism::Wide { threads, width } => write!(f, "threads({threads})x{width}"),
        }
    }
}

/// The default chunk-count target ([`Parallelism::width`]) when no explicit
/// width is declared.
///
/// Fixed (rather than derived from the thread count) so that the chunk
/// decomposition — and with it every floating-point merge order — is a pure
/// function of the input length. 32 chunks keep per-chunk accumulators small
/// while load-balancing well up to 32-way hardware; machines beyond that
/// declare a wider decomposition with [`Parallelism::with_width`].
pub const DEFAULT_WIDTH: usize = 32;

/// Historical name for [`DEFAULT_WIDTH`], from when the chunk-count cap was
/// not configurable.
#[deprecated(note = "use DEFAULT_WIDTH; the cap is now per-Parallelism (`with_width`)")]
pub const MAX_CHUNKS: usize = DEFAULT_WIDTH;

/// The deterministic chunk size for an input of `len` items under a
/// chunk-count target of `width`: the smallest size that covers `len` with at
/// most `width.max(1)` chunks.
///
/// This is a pure function of `(len, width)` — never of the thread count.
///
/// ```
/// use ugraph::par::chunk_size;
///
/// assert_eq!(chunk_size(1_000, 32), 32);  // 32 chunks of ≤32 items
/// assert_eq!(chunk_size(1_000, 128), 8);  // finer declared decomposition
/// assert_eq!(chunk_size(5, 32), 1);       // never below one item per chunk
/// ```
pub fn chunk_size(len: usize, width: usize) -> usize {
    len.div_ceil(width.max(1)).max(1)
}

/// Map every chunk of `0..len` through `map` and fold the per-chunk
/// accumulators **in chunk order** with `reduce`. Returns `None` iff
/// `len == 0`.
///
/// `map` receives the half-open index range of one chunk and runs on a worker
/// thread (or the calling thread under [`Parallelism::Serial`]); `reduce`
/// always runs on the calling thread, merging `(…(a₀ ⊕ a₁) ⊕ a₂…)` in
/// increasing chunk order. Because the chunk decomposition is a pure function
/// of `len` and the declared width (see [`chunk_size`]) the result is
/// bit-identical for every [`Parallelism`] setting of that width.
///
/// Panics in `map` are propagated to the caller once all workers have
/// stopped.
///
/// ```
/// use ugraph::par::{map_reduce_chunks, Parallelism};
///
/// let max = map_reduce_chunks(
///     Parallelism::Threads(2),
///     1_000,
///     |range| range.max().unwrap(),
///     usize::max,
/// );
/// assert_eq!(max, Some(999));
/// assert_eq!(map_reduce_chunks(Parallelism::Serial, 0, |_| 0usize, usize::max), None);
/// ```
pub fn map_reduce_chunks<A, M, R>(
    parallelism: Parallelism,
    len: usize,
    map: M,
    reduce: R,
) -> Option<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    R: FnMut(A, A) -> A,
{
    map_chunks(parallelism, len, map).into_iter().reduce(reduce)
}

/// Map every item of `0..len` to a value, returning the values in index
/// order. The chunked equivalent of `(0..len).map(f).collect()`.
///
/// Each output element depends only on its own index, so the result is
/// trivially identical across [`Parallelism`] settings; use this for
/// per-vertex / per-edge measures with no cross-item accumulation.
pub fn map_collect<U, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    concat_chunks(map_chunks(parallelism, len, |range| range.map(&f).collect::<Vec<U>>()), len)
}

/// Like [`map_collect`], but `f` produces one whole chunk at a time, so it
/// can reuse scratch buffers (BFS queues, distance arrays) across the items
/// of a chunk. `f` gets the chunk's index range and must return exactly
/// `range.len()` values, which are concatenated in chunk order.
pub fn map_collect_chunked<U, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> Vec<U> + Sync,
{
    let chunks = map_chunks(parallelism, len, |range| {
        let expected = range.len();
        let out = f(range);
        assert_eq!(out.len(), expected, "chunk closure returned the wrong number of values");
        out
    });
    concat_chunks(chunks, len)
}

/// Like [`map_reduce_chunks`], but every chunk closure also receives the
/// disjoint `&mut` sub-slice of `data` covering its index range, so stages
/// that fill a preallocated output buffer (the PageRank share/gather sweeps)
/// run with **zero per-iteration allocation**: values are written in place
/// instead of being collected into per-chunk `Vec`s and concatenated.
///
/// The chunk decomposition is the same pure function of `data.len()` and the
/// declared width as in [`map_reduce_chunks`] (see [`chunk_size`]), the
/// sub-slices are disjoint by
/// construction (handed out via `split_at_mut`), and the per-chunk
/// accumulators merge in increasing chunk order on the calling thread — so
/// results stay bit-identical for every [`Parallelism`] setting. Returns
/// `None` iff `data` is empty.
///
/// ```
/// use ugraph::par::{map_reduce_chunks_mut, Parallelism};
///
/// let mut out = vec![0.0f64; 1_000];
/// let sum = map_reduce_chunks_mut(
///     Parallelism::Threads(4),
///     &mut out,
///     |range, chunk| {
///         let mut s = 0.0;
///         for (slot, i) in chunk.iter_mut().zip(range) {
///             *slot = i as f64 * 0.5;
///             s += *slot;
///         }
///         s
///     },
///     |a, b| a + b,
/// )
/// .unwrap();
/// assert_eq!(out[2], 1.0);
/// assert_eq!(sum, out.iter().sum::<f64>());
/// ```
pub fn map_reduce_chunks_mut<T, A, M, R>(
    parallelism: Parallelism,
    data: &mut [T],
    map: M,
    reduce: R,
) -> Option<A>
where
    T: Send,
    A: Send,
    M: Fn(Range<usize>, &mut [T]) -> A + Sync,
    R: FnMut(A, A) -> A,
{
    let len = data.len();
    if len == 0 {
        return None;
    }
    let chunk = chunk_size(len, parallelism.width());
    let n_chunks = len.div_ceil(chunk);
    let workers = parallelism.thread_count().min(n_chunks);
    // Both execution paths consume the same pre-split decomposition, so the
    // chunk boundaries — and with them the merge order — cannot drift apart.
    let pieces = split_chunks_mut(data, chunk);
    debug_assert_eq!(pieces.len(), n_chunks);
    if workers <= 1 {
        // Serial fast path: run the chunks in order on the calling thread.
        return pieces.into_iter().map(|(range, piece)| map(range, piece)).reduce(reduce);
    }

    // Workers claim the next unclaimed chunk (same work-stealing scheme as
    // `map_chunks`) and park their accumulator in the chunk's slot so the
    // caller merges in chunk order regardless of completion order.
    let next = AtomicUsize::new(0);
    let work: Vec<Mutex<Option<ChunkPiece<'_, T>>>> =
        pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let slots: Vec<Mutex<Option<A>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let (range, piece) = work[i]
                    .lock()
                    .expect("no other panic while holding a work lock")
                    .take()
                    .expect("each chunk index is claimed exactly once");
                let acc = map(range, piece);
                *slots[i].lock().expect("no other panic while holding a slot lock") = Some(acc);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let acc = slot.into_inner().expect("worker panics propagate before this");
            acc.expect("every chunk index was claimed and completed")
        })
        .reduce(reduce)
}

/// A chunk of a mutable slice: its global index range plus the disjoint
/// `&mut` sub-slice covering it.
type ChunkPiece<'a, T> = (Range<usize>, &'a mut [T]);

/// Split `data` into the deterministic chunk decomposition (`chunk` from
/// [`chunk_size`]) as disjoint `&mut` pieces, in chunk order. The single
/// source of truth for [`map_reduce_chunks_mut`]'s serial and parallel paths.
fn split_chunks_mut<T>(data: &mut [T], chunk: usize) -> Vec<ChunkPiece<'_, T>> {
    let mut pieces = Vec::with_capacity(data.len().div_ceil(chunk));
    let mut rest = data;
    let mut start = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        pieces.push((start..start + take, head));
        start += take;
        rest = tail;
    }
    pieces
}

/// Run `map` over every chunk of `0..len`, returning the per-chunk results
/// in chunk order. The lower-level primitive behind [`map_reduce_chunks`].
fn map_chunks<A, M>(parallelism: Parallelism, len: usize, map: M) -> Vec<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let chunk = chunk_size(len, parallelism.width());
    let n_chunks = len.div_ceil(chunk);
    let chunk_range = |i: usize| i * chunk..((i + 1) * chunk).min(len);
    let workers = parallelism.thread_count().min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks).map(|i| map(chunk_range(i))).collect();
    }

    // Work-stealing over chunk indices: each worker claims the next unclaimed
    // chunk. Results are parked in their chunk's slot so the caller can merge
    // them in chunk order regardless of completion order.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<A>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let acc = map(chunk_range(i));
                *slots[i].lock().expect("no other panic while holding a slot lock") = Some(acc);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let acc = slot.into_inner().expect("worker panics propagate before this");
            acc.expect("every chunk index was claimed and completed")
        })
        .collect()
}

/// Concatenate per-chunk vectors, reusing the first chunk's allocation when
/// it already has room.
fn concat_chunks<U>(chunks: Vec<Vec<U>>, len: usize) -> Vec<U> {
    let mut iter = chunks.into_iter();
    let mut out = match iter.next() {
        None => return Vec::new(),
        Some(first) => {
            let mut v = if first.capacity() >= len {
                first
            } else {
                let mut grown = Vec::with_capacity(len);
                grown.extend(first);
                grown
            };
            v.reserve(len - v.len());
            v
        }
    };
    for chunk in iter {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_is_a_pure_function_of_len_and_width() {
        assert_eq!(chunk_size(0, DEFAULT_WIDTH), 1);
        assert_eq!(chunk_size(1, DEFAULT_WIDTH), 1);
        assert_eq!(chunk_size(DEFAULT_WIDTH, DEFAULT_WIDTH), 1);
        assert_eq!(chunk_size(DEFAULT_WIDTH + 1, DEFAULT_WIDTH), 2);
        assert_eq!(chunk_size(10 * DEFAULT_WIDTH, DEFAULT_WIDTH), 10);
        // A zero width is treated as one chunk, never a division by zero.
        assert_eq!(chunk_size(100, 0), 100);
        // Covers len with at most `width` chunks, for widths beyond the old cap.
        for width in [1usize, 7, 32, 48, 64, 128, 257, 1024] {
            for len in [1usize, 5, 31, 32, 33, 100, 1000, 12345] {
                assert!(len.div_ceil(chunk_size(len, width)) <= width, "len {len} width {width}");
            }
        }
    }

    #[test]
    fn width_defaults_and_wide_carries_it() {
        assert_eq!(Parallelism::Serial.width(), DEFAULT_WIDTH);
        assert_eq!(Parallelism::Threads(64).width(), DEFAULT_WIDTH);
        assert_eq!(Parallelism::Wide { threads: 64, width: 256 }.width(), 256);
        assert_eq!(Parallelism::Wide { threads: 2, width: 0 }.width(), 1);
        assert_eq!(Parallelism::Serial.with_width(9), Parallelism::Wide { threads: 1, width: 9 });
        assert_eq!(
            Parallelism::Threads(8).with_width(64),
            Parallelism::Wide { threads: 8, width: 64 }
        );
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert_eq!(Parallelism::Threads(7).thread_count(), 7);
        assert_eq!(Parallelism::Wide { threads: 0, width: 64 }.thread_count(), 1);
        assert_eq!(Parallelism::Wide { threads: 5, width: 64 }.thread_count(), 5);
        assert!(Parallelism::auto().thread_count() >= 1);
    }

    #[test]
    fn parse_accepts_serial_auto_counts_and_widths() {
        assert_eq!(Parallelism::parse("serial"), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse("0"), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse("1"), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse("4"), Ok(Parallelism::Threads(4)));
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::auto()));
        assert_eq!(Parallelism::parse("8x128"), Ok(Parallelism::Wide { threads: 8, width: 128 }));
        assert_eq!(Parallelism::parse("0x64"), Ok(Parallelism::Wide { threads: 0, width: 64 }));
        assert_eq!(format!("{}", Parallelism::Threads(4)), "threads(4)");
        assert_eq!(format!("{}", Parallelism::Serial), "serial");
        assert_eq!(format!("{}", Parallelism::Wide { threads: 8, width: 128 }), "threads(8)x128");
    }

    #[test]
    fn parse_rejections_carry_a_typed_kind_and_the_input() {
        let kind = |s: &str| Parallelism::parse(s).unwrap_err().kind();
        assert_eq!(kind("8x0"), ParseParallelismErrorKind::ZeroWidth);
        assert_eq!(kind("8x"), ParseParallelismErrorKind::BadWidth);
        assert_eq!(kind("8xsixty"), ParseParallelismErrorKind::BadWidth);
        assert_eq!(kind("x64"), ParseParallelismErrorKind::BadThreadCount);
        assert_eq!(kind("four"), ParseParallelismErrorKind::Unrecognized);
        assert_eq!(kind(""), ParseParallelismErrorKind::Unrecognized);
        assert_eq!(kind("-2"), ParseParallelismErrorKind::Unrecognized);
        let err = Parallelism::parse("8x0").unwrap_err();
        assert_eq!(err.input(), "8x0");
        let message = err.to_string();
        assert!(message.contains("8x0"), "{message}");
        assert!(message.contains("nonzero"), "{message}");
        assert!(message.contains(ParseParallelismError::EXPECTED), "{message}");
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // A sum whose value genuinely depends on association order, so this
        // test fails if chunking ever became thread-count-dependent.
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3 + 1.0).collect();
        let run = |p: Parallelism| {
            map_reduce_chunks(p, xs.len(), |r| xs[r].iter().sum::<f64>(), |a, b| a + b).unwrap()
        };
        let serial = run(Parallelism::Serial);
        for threads in 1..=8 {
            assert_eq!(
                serial.to_bits(),
                run(Parallelism::Threads(threads)).to_bits(),
                "threads({threads})"
            );
        }
        // And chunked summation differs from the naive left fold, proving the
        // serial path really goes through the same chunk decomposition.
        let naive: f64 = xs.iter().sum();
        assert!((serial - naive).abs() < 1e-9);
    }

    #[test]
    fn wide_widths_beyond_the_old_cap_stay_bit_identical_across_threads() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3 + 1.0).collect();
        let run = |p: Parallelism| {
            map_reduce_chunks(p, xs.len(), |r| xs[r].iter().sum::<f64>(), |a, b| a + b).unwrap()
        };
        for width in [33usize, 48, 64, 100, 128, 257] {
            let reference = run(Parallelism::Serial.with_width(width));
            for threads in [2usize, 4, 8, 64] {
                assert_eq!(
                    reference.to_bits(),
                    run(Parallelism::Threads(threads).with_width(width)).to_bits(),
                    "threads({threads}) at width {width}"
                );
            }
            // The in-place variant follows the same decomposition.
            let mut buf = vec![0.0f64; xs.len()];
            let in_place = map_reduce_chunks_mut(
                Parallelism::Threads(4).with_width(width),
                &mut buf,
                |range, chunk| {
                    let mut s = 0.0;
                    for (slot, i) in chunk.iter_mut().zip(range) {
                        *slot = xs[i];
                        s += *slot;
                    }
                    s
                },
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(reference.to_bits(), in_place.to_bits(), "mut variant at width {width}");
        }
    }

    #[test]
    fn width_one_behaves_like_a_single_chunk() {
        let out = map_collect(Parallelism::Threads(4).with_width(1), 100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let sum = map_reduce_chunks(
            Parallelism::Serial.with_width(1),
            1000,
            |r| {
                assert_eq!(r, 0..1000, "one chunk covers everything");
                r.sum::<usize>()
            },
            |a, b| a + b,
        );
        assert_eq!(sum, Some(499_500));
    }

    #[test]
    fn map_collect_preserves_index_order() {
        for p in [Parallelism::Serial, Parallelism::Threads(3)] {
            let out = map_collect(p, 1000, |i| 3 * i);
            assert_eq!(out.len(), 1000);
            assert!(out.iter().enumerate().all(|(i, &v)| v == 3 * i), "{p}");
        }
    }

    #[test]
    fn map_collect_chunked_concatenates_in_chunk_order() {
        for p in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = map_collect_chunked(p, 501, |r| r.map(|i| i as u64).collect());
            assert_eq!(out, (0..501u64).collect::<Vec<_>>(), "{p}");
        }
    }

    #[test]
    fn empty_input_yields_none_and_empty() {
        assert_eq!(map_reduce_chunks(Parallelism::Threads(4), 0, |_| 1usize, |a, b| a + b), None);
        assert!(map_collect(Parallelism::Threads(4), 0, |i| i).is_empty());
    }

    #[test]
    fn oversubscribed_threads_are_harmless() {
        // More threads than chunks, more chunks than items: still correct.
        let out =
            map_reduce_chunks(Parallelism::Threads(64), 3, |r| r.sum::<usize>(), |a, b| a + b);
        assert_eq!(out, Some(3));
    }

    #[test]
    fn map_reduce_chunks_mut_writes_every_slot_and_merges_in_chunk_order() {
        // The in-place variant must produce exactly the same bits as the
        // collect-and-concatenate path, for every thread count.
        let reference: Vec<f64> = (0..12_345).map(|i| (i as f64).sin() * 1e-3 + 1.0).collect();
        let ref_sum = map_reduce_chunks(
            Parallelism::Serial,
            reference.len(),
            |r| reference[r].iter().sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap();
        for p in [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)] {
            let mut out = vec![0.0f64; reference.len()];
            let sum = map_reduce_chunks_mut(
                p,
                &mut out,
                |range, chunk| {
                    let mut s = 0.0;
                    for (slot, i) in chunk.iter_mut().zip(range) {
                        *slot = (i as f64).sin() * 1e-3 + 1.0;
                        s += *slot;
                    }
                    s
                },
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(out, reference, "{p}");
            assert_eq!(sum.to_bits(), ref_sum.to_bits(), "{p}");
        }
    }

    #[test]
    fn map_reduce_chunks_mut_empty_and_tiny_inputs() {
        let mut empty: [u64; 0] = [];
        assert_eq!(
            map_reduce_chunks_mut(Parallelism::Threads(4), &mut empty, |_, _| 1u64, |a, b| a + b),
            None
        );
        let mut tiny = [5u64, 7];
        let total = map_reduce_chunks_mut(
            Parallelism::Threads(64),
            &mut tiny,
            |_, chunk| {
                chunk.iter_mut().for_each(|v| *v *= 2);
                chunk.iter().sum::<u64>()
            },
            |a, b| a + b,
        );
        assert_eq!(total, Some(24));
        assert_eq!(tiny, [10, 14]);
    }

    #[test]
    fn map_reduce_chunks_mut_worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 1000];
            map_reduce_chunks_mut(
                Parallelism::Threads(2),
                &mut data,
                |r, _| {
                    assert!(!r.contains(&777), "boom");
                    0usize
                },
                |a, b| a + b,
            )
        });
        assert!(result.is_err(), "a panicking chunk must fail the whole call");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_reduce_chunks(
                Parallelism::Threads(2),
                1000,
                |r| {
                    assert!(!r.contains(&777), "boom");
                    0usize
                },
                |a, b| a + b,
            )
        });
        assert!(result.is_err(), "a panicking chunk must fail the whole call");
    }
}
