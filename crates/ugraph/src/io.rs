//! Plain-text edge-list I/O and a compact binary encoding.
//!
//! The text format is the SNAP-style whitespace-separated edge list used by
//! the paper's datasets: one `u v` pair per line, `#`-prefixed comment lines
//! ignored. An optional third column carries a per-edge scalar. The binary
//! format is a simple length-prefixed `u32` stream built with [`bytes`] for
//! fast round-tripping of generated benchmark graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// An edge list parsed from text: the graph plus optional per-edge weights.
#[derive(Clone, Debug)]
pub struct ParsedEdgeList {
    /// The parsed graph.
    pub graph: CsrGraph,
    /// Per-edge weights aligned with [`CsrGraph`] edge ids, if the input had a
    /// third column on every edge line.
    pub edge_weights: Option<Vec<f64>>,
}

/// Read a whitespace-separated edge list from a reader.
///
/// Lines beginning with `#` or `%` and blank lines are skipped. Each data line
/// must contain two vertex ids and may contain a third floating-point weight.
/// The weight column is all-or-nothing: mixing weighted and unweighted edge
/// lines is a [`GraphError::Parse`] (the seed behavior of silently dropping
/// every weight hid exactly the kind of lossy input this guards against), and
/// so is a non-finite weight (`nan`/`inf`), which would poison every scalar
/// computation downstream.
///
/// Duplicate edges — including reversed orientation, since edges are
/// canonicalized to `u <= v` — are deduplicated with a **last-wins** rule for
/// their weight: the weight on the last line mentioning the edge is the one
/// returned. Self loops (`u u [w]`) are dropped along with their weight; their
/// lines still count towards the all-or-nothing weight-column rule.
pub fn read_edge_list<R: Read>(reader: R) -> Result<ParsedEdgeList> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    // (canonical endpoints) -> weight; insertion overwrites, implementing the
    // last-wins rule before weights are re-aligned with canonical edge ids.
    let mut weights_by_edge: std::collections::HashMap<(u32, u32), f64> = Default::default();
    // Line number of the first data line, and whether it carried a weight —
    // every later line must agree.
    let mut first_edge_line: Option<(usize, bool)> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u32 = parse_field(it.next(), lineno, "source vertex")?;
        let v: u32 = parse_field(it.next(), lineno, "target vertex")?;
        let weight = it.next();
        match first_edge_line {
            None => first_edge_line = Some((lineno, weight.is_some())),
            Some((first_line, first_weighted)) => {
                if first_weighted != weight.is_some() {
                    let (with, without) =
                        if first_weighted { (first_line, lineno) } else { (lineno, first_line) };
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!(
                            "inconsistent weight column: line {with} has a weight but \
                             line {without} does not"
                        ),
                    });
                }
            }
        }
        if let Some(w) = weight {
            let w: f64 = w.parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid weight `{w}`"),
            })?;
            if !w.is_finite() {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("non-finite weight `{w}`"),
                });
            }
            let key = if u <= v { (u, v) } else { (v, u) };
            weights_by_edge.insert(key, w);
        }
        // Keep every vertex the file mentions, even when its only edge is a
        // dropped self loop — the graph must not silently lose vertices.
        builder.ensure_vertex(u);
        builder.ensure_vertex(v);
        builder.add_edge(u, v);
    }

    let graph = builder.build();
    let edge_weights = match first_edge_line {
        Some((_, true)) => {
            let weights = graph
                .edges()
                .map(|e| {
                    weights_by_edge.get(&(e.u.0, e.v.0)).copied().ok_or_else(|| GraphError::Parse {
                        line: 0,
                        message: format!("edge {} {} has no matched weight", e.u.0, e.v.0),
                    })
                })
                .collect::<Result<Vec<f64>>>()?;
            Some(weights)
        }
        _ => None,
    };
    Ok(ParsedEdgeList { graph, edge_weights })
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let raw =
        field.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    raw.parse().map_err(|_| GraphError::Parse { line, message: format!("invalid {what} `{raw}`") })
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<ParsedEdgeList> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Write a graph as a plain edge list (`u v` per line, canonical order).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# graph-terrain edge list: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.u.0, e.v.0)?;
    }
    Ok(())
}

/// Write a graph to a file as an edge list.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, std::io::BufWriter::new(file))
}

/// Encode a graph into a compact binary buffer: `u32` vertex count, `u32` edge
/// count, then `u32` endpoint pairs.
pub fn encode_binary(graph: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + graph.edge_count() * 8);
    buf.put_u32_le(graph.vertex_count() as u32);
    buf.put_u32_le(graph.edge_count() as u32);
    for e in graph.edges() {
        buf.put_u32_le(e.u.0);
        buf.put_u32_le(e.v.0);
    }
    buf.freeze()
}

/// Decode a graph from the binary encoding produced by [`encode_binary`].
pub fn decode_binary(mut bytes: Bytes) -> Result<CsrGraph> {
    if bytes.remaining() < 8 {
        return Err(GraphError::Parse { line: 0, message: "binary header truncated".into() });
    }
    let vertex_count = bytes.get_u32_le() as usize;
    let edge_count = bytes.get_u32_le() as usize;
    if bytes.remaining() < edge_count * 8 {
        return Err(GraphError::Parse { line: 0, message: "binary edge data truncated".into() });
    }
    let mut builder = GraphBuilder::with_capacity(edge_count);
    if vertex_count > 0 {
        builder.ensure_vertex(vertex_count - 1);
    }
    for _ in 0..edge_count {
        let u = bytes.get_u32_le();
        let v = bytes.get_u32_le();
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn parses_snap_style_edge_list() {
        let text = "# comment line\n% another comment\n\n0 1\n1 2\n2 0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.vertex_count(), 3);
        assert_eq!(parsed.graph.edge_count(), 3);
        assert!(parsed.edge_weights.is_none());
    }

    #[test]
    fn parses_weighted_edge_list() {
        let text = "0 1 0.5\n1 2 2.5\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        let weights = parsed.edge_weights.unwrap();
        assert_eq!(weights.len(), 2);
        let e = parsed.graph.find_edge(VertexId(1), VertexId(2)).unwrap();
        assert!((weights[e.index()] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_weight_columns_are_rejected() {
        // The seed code silently dropped every weight here; a half-weighted
        // file is corrupt input and must fail loudly with the offending line.
        let err = read_edge_list("0 1 0.5\n1 2\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("inconsistent weight column"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Same with the orientations flipped: weight appearing late.
        let err = read_edge_list("0 1\n1 2 0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        for bad in ["nan", "inf", "-inf"] {
            let text = format!("0 1 {bad}\n");
            let err = read_edge_list(text.as_bytes()).unwrap_err();
            match err {
                GraphError::Parse { line, message } => {
                    assert_eq!(line, 1);
                    assert!(message.contains("non-finite"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_edges_keep_the_last_weight() {
        // The same canonical edge listed three times (once reversed): the
        // weight of the *last* line wins.
        let text = "0 1 1.0\n1 0 2.0\n0 1 3.5\n1 2 9.0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 2);
        let weights = parsed.edge_weights.unwrap();
        let e01 = parsed.graph.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert!((weights[e01.index()] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_self_loops_are_dropped_with_their_weight() {
        // The self loop vanishes (the builder drops it) and its weight with
        // it; remaining edges still get their weights, and the loop line
        // counts towards the all-or-nothing weight rule.
        let text = "2 2 5.0\n0 1 1.5\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
        assert_eq!(parsed.graph.vertex_count(), 3, "loop vertex still exists");
        let weights = parsed.edge_weights.unwrap();
        assert_eq!(weights.len(), 1);
        assert!((weights[0] - 1.5).abs() < 1e-12);
        // A weighted self loop in an otherwise unweighted file is still an
        // inconsistent weight column.
        let err = read_edge_list("2 2 5.0\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1\nbogus line here\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn text_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let parsed = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(parsed.graph, g);
    }

    #[test]
    fn binary_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5);
        b.add_edge(5, 9);
        b.ensure_vertex(12);
        let g = b.build();
        let bytes = encode_binary(&g);
        let decoded = decode_binary(bytes).unwrap();
        assert_eq!(decoded, g);
    }

    #[test]
    fn binary_rejects_truncated_input() {
        assert!(decode_binary(Bytes::from_static(&[1, 2, 3])).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_u32_le(5); // claims 5 edges but provides none
        assert!(decode_binary(buf.freeze()).is_err());
    }
}
