//! A minimal read-only memory-map shim.
//!
//! The offline build has no `memmap2`, so this module talks to the platform
//! directly: on Unix it declares `mmap`/`munmap` itself (the symbols are
//! already linked through `std`) and maps files `PROT_READ | MAP_PRIVATE`; on
//! every other platform — or whenever the syscall fails — it falls back to
//! reading the file into an 8-byte-aligned heap buffer. Both paths hand out
//! the same [`MappedBytes`] type, so callers see zero behavioral difference,
//! only residency: a mapping is paged in lazily by the kernel and shared
//! between processes, the heap fallback is a private RAM copy.
//!
//! Alignment contract: the start of a [`MappedBytes`] buffer is always at
//! least 8-byte aligned (pages are 4 KiB-aligned; the heap fallback allocates
//! `u64` words). Snapshot v3 places every section payload at an 8-byte offset
//! from the start, so `u64`/`f64` reinterpretation never sees a misaligned
//! pointer.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

/// A read-only byte buffer backed by either a memory-mapped file or an
/// aligned heap allocation. Dereferences to `&[u8]`.
pub struct MappedBytes {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap(AlignedHeap),
}

/// Heap buffer with guaranteed 8-byte alignment: `Vec<u8>` only guarantees
/// byte alignment, so the storage is a `Vec<u64>` viewed as bytes.
struct AlignedHeap {
    words: Vec<u64>,
    len: usize,
}

impl AlignedHeap {
    fn read_from(file: &mut File, len: usize) -> std::io::Result<AlignedHeap> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // View the word storage as bytes for the read; the tail padding of the
        // last partial word stays zero.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        file.read_exact(&mut bytes[..len])?;
        Ok(AlignedHeap { words, len })
    }

    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

// SAFETY: the mmap variant is a read-only (`PROT_READ`) private mapping that
// is never mutated or remapped for the lifetime of the value, so shared
// references to its bytes are as safe to send and share as `&[u8]` of a
// heap buffer. The heap variant is ordinary owned memory.
#[cfg(unix)]
unsafe impl Send for MappedBytes {}
#[cfg(unix)]
unsafe impl Sync for MappedBytes {}

#[cfg(unix)]
mod sys {
    //! Just enough of the C mmap interface. `std` already links the platform
    //! libc, so declaring the two symbols is all the "vendoring" needed.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// Prefault the whole mapping at `mmap` time (Linux only). One bulk
    /// populate with kernel readahead is far cheaper than the thousands of
    /// demand faults the open-time checksum/validation scan would otherwise
    /// take; advisory, so `mmap` still succeeds if it cannot populate.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: c_int = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: c_int = 0;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl MappedBytes {
    /// Map `path` read-only, falling back to an aligned heap read if mapping
    /// is unavailable (non-Unix platform, empty file, or a failed syscall).
    pub fn map_file(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large for this address space",
            ));
        }
        let len = len as usize;
        #[cfg(unix)]
        if len > 0 {
            if let Some(mapped) = Self::try_mmap(&file, len) {
                return Ok(mapped);
            }
        }
        Self::read_file(&mut file, len)
    }

    /// Read `path` into the aligned heap buffer, never mapping. Used on
    /// non-Unix platforms and by callers that want a private RAM copy.
    pub fn read_file_to_heap(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large for this address space",
            ));
        }
        Self::read_file(&mut file, len as usize)
    }

    /// Copy an in-memory buffer into the aligned heap representation —
    /// primarily for tests that build snapshots without touching disk.
    pub fn from_bytes(bytes: &[u8]) -> MappedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        dst[..bytes.len()].copy_from_slice(bytes);
        MappedBytes { inner: Inner::Heap(AlignedHeap { words, len: bytes.len() }) }
    }

    #[cfg(unix)]
    fn try_mmap(file: &File, len: usize) -> Option<MappedBytes> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE | sys::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is -1; also refuse (never observed) misaligned mappings
        // so the zero-copy reinterpret path can rely on 8-byte alignment.
        if ptr == usize::MAX as *mut _ || ptr.is_null() || (ptr as usize) % 8 != 0 {
            return None;
        }
        Some(MappedBytes { inner: Inner::Mmap { ptr: ptr as *const u8, len } })
    }

    fn read_file(file: &mut File, len: usize) -> std::io::Result<MappedBytes> {
        Ok(MappedBytes { inner: Inner::Heap(AlignedHeap::read_from(file, len)?) })
    }

    /// Whether the bytes are a live kernel mapping (`false` means the heap
    /// fallback holds a private copy).
    pub fn is_memory_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mmap { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            // SAFETY: ptr/len come from a successful mmap that lives until
            // Drop; the mapping is read-only and never resized.
            #[cfg(unix)]
            Inner::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap(heap) => heap.as_slice(),
        }
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mmap { ptr, len } = &self.inner {
            // SAFETY: unmapping the exact region returned by mmap, once.
            unsafe {
                sys::munmap(*ptr as *mut _, *len);
            }
        }
    }
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBytes")
            .field("len", &self.len())
            .field("memory_mapped", &self.is_memory_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ugraph-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mapped_and_heap_reads_agree() {
        let path = temp_path("agree");
        let payload: Vec<u8> = (0..=255u8).cycle().take(12_345).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = MappedBytes::map_file(&path).unwrap();
        let heap = MappedBytes::read_file_to_heap(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        assert_eq!(&*heap, &payload[..]);
        assert!(!heap.is_memory_mapped());
        #[cfg(unix)]
        assert!(mapped.is_memory_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buffers_are_eight_byte_aligned() {
        let path = temp_path("aligned");
        std::fs::write(&path, [7u8; 31]).unwrap();
        for buf in
            [MappedBytes::map_file(&path).unwrap(), MappedBytes::read_file_to_heap(&path).unwrap()]
        {
            assert_eq!(buf.as_ptr() as usize % 8, 0);
            assert_eq!(buf.len(), 31);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_and_from_bytes() {
        let path = temp_path("empty");
        std::fs::write(&path, []).unwrap();
        let buf = MappedBytes::map_file(&path).unwrap();
        assert!(buf.is_empty());
        std::fs::remove_file(&path).unwrap();
        let copied = MappedBytes::from_bytes(b"hello");
        assert_eq!(&*copied, b"hello");
        assert!(!copied.is_memory_mapped());
    }
}
