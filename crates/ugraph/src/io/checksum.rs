//! The two-level chunked checksum of binary snapshot v3.
//!
//! Definition: the protected byte stream is cut into fixed
//! [`CHECKSUM_CHUNK`]-sized chunks (the final chunk may be short; an empty
//! stream has no chunks). Each chunk is digested by an FNV-style *word fold*:
//! the chunk is split into 8-byte little-endian words (the final partial word
//! zero-padded), each word is folded into a running hash `h = (h ^ word) *
//! FNV_PRIME` starting from the FNV-1a64 offset basis, and the chunk's byte
//! length is folded in last (so zero-padding cannot alias a shorter chunk).
//! The stored checksum is the same word fold over the sequence of per-chunk
//! digests.
//!
//! Why not plain byte-wise FNV-1a64 over the file? A byte-at-a-time FNV is an
//! inherently serial multiply-per-byte dependency chain — one ~3-cycle
//! 64-bit multiply per input byte, ~0.7 GB/s no matter how wide the machine
//! is. Folding whole words costs one multiply per **8 bytes**, and the fixed
//! chunk boundaries make the per-chunk chains independent:
//! [`chunked_checksum`] advances four chunk digests through one core's
//! pipeline simultaneously (the multiplies overlap in the out-of-order
//! window) and spreads chunk groups across threads for large inputs, so
//! open-time verification runs at memory bandwidth instead of gating the
//! zero-copy design. The writer ([`ChunkedFnv`]) stays strictly streaming —
//! it never needs the file in memory, only one pending word and the current
//! chunk's running hash.
//!
//! The result is deterministic: the chunk and word decomposition is a pure
//! function of the stream length, and digests are always combined in chunk
//! order, so every thread count (and the serial fallback) produces identical
//! bytes.

/// Fixed chunk width of the two-level checksum (1 MiB — a multiple of the
/// 8-byte word size, so chunk boundaries are always word boundaries). Part of
/// the v3 format: changing it changes every stored checksum.
pub(crate) const CHECKSUM_CHUNK: usize = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Inputs below this size are verified on the calling thread only — spawning
/// threads costs more than the hash.
const PARALLEL_THRESHOLD: usize = 8 << 20;

/// Upper bound on verification threads; beyond this the walk is memory-bound.
const MAX_THREADS: usize = 8;

#[inline]
fn fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

#[inline]
fn word_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Digest one whole chunk: word fold over its 8-byte words (partial last word
/// zero-padded), then the byte length.
fn chunk_digest(chunk: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    let words = chunk.len() / 8;
    for i in 0..words {
        hash = fold(hash, word_at(chunk, i * 8));
    }
    let tail = &chunk[words * 8..];
    if !tail.is_empty() {
        let mut buf = [0u8; 8];
        buf[..tail.len()].copy_from_slice(tail);
        hash = fold(hash, u64::from_le_bytes(buf));
    }
    fold(hash, chunk.len() as u64)
}

/// Streaming state of the two-level checksum — feed bytes in any split with
/// [`update`](Self::update), read the final checksum with
/// [`finish`](Self::finish).
#[derive(Clone, Debug)]
pub(crate) struct ChunkedFnv {
    digests: Vec<u64>,
    hash: u64,
    /// Bytes folded into `hash` so far this chunk (always a multiple of 8
    /// while `pending` holds the in-progress word).
    chunk_fill: usize,
    pending: [u8; 8],
    pending_len: usize,
}

impl ChunkedFnv {
    pub(crate) fn new() -> Self {
        ChunkedFnv {
            digests: Vec::new(),
            hash: FNV_OFFSET,
            chunk_fill: 0,
            pending: [0; 8],
            pending_len: 0,
        }
    }

    fn end_chunk(&mut self) {
        self.digests.push(fold(self.hash, self.chunk_fill as u64));
        self.hash = FNV_OFFSET;
        self.chunk_fill = 0;
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        // Complete a word left pending by an unaligned previous update.
        // Chunk boundaries are word-aligned, so a completed word never
        // straddles one.
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(rest.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&rest[..take]);
            self.pending_len += take;
            rest = &rest[take..];
            if self.pending_len < 8 {
                return;
            }
            self.hash = fold(self.hash, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
            self.chunk_fill += 8;
            if self.chunk_fill == CHECKSUM_CHUNK {
                self.end_chunk();
            }
        }
        while !rest.is_empty() {
            let room = CHECKSUM_CHUNK - self.chunk_fill;
            let words = rest.len().min(room) / 8;
            for i in 0..words {
                self.hash = fold(self.hash, word_at(rest, i * 8));
            }
            self.chunk_fill += words * 8;
            rest = &rest[words * 8..];
            if self.chunk_fill == CHECKSUM_CHUNK {
                self.end_chunk();
                continue;
            }
            // Fewer than 8 bytes remain: stash them for the next update.
            self.pending[..rest.len()].copy_from_slice(rest);
            self.pending_len = rest.len();
            break;
        }
    }

    pub(crate) fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            let mut buf = [0u8; 8];
            buf[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            self.hash = fold(self.hash, u64::from_le_bytes(buf));
            self.chunk_fill += self.pending_len;
        }
        if self.chunk_fill > 0 {
            self.end_chunk();
        }
        combine(&self.digests)
    }
}

/// Word fold over the per-chunk digests — the second level of the checksum.
pub(crate) fn combine(digests: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &digest in digests {
        hash = fold(hash, digest);
    }
    fold(hash, digests.len() as u64)
}

fn chunk_of(body: &[u8], index: usize) -> &[u8] {
    &body[index * CHECKSUM_CHUNK..((index + 1) * CHECKSUM_CHUNK).min(body.len())]
}

/// Digest four full-width chunks through one pipeline: the four fold chains
/// are independent, so their long-latency multiplies overlap.
fn digest_x4(a: &[u8], b: &[u8], c: &[u8], d: &[u8]) -> [u64; 4] {
    let a = &a[..CHECKSUM_CHUNK];
    let b = &b[..CHECKSUM_CHUNK];
    let c = &c[..CHECKSUM_CHUNK];
    let d = &d[..CHECKSUM_CHUNK];
    let mut h = [FNV_OFFSET; 4];
    for i in 0..CHECKSUM_CHUNK / 8 {
        let at = i * 8;
        h[0] = fold(h[0], word_at(a, at));
        h[1] = fold(h[1], word_at(b, at));
        h[2] = fold(h[2], word_at(c, at));
        h[3] = fold(h[3], word_at(d, at));
    }
    h.map(|hash| fold(hash, CHECKSUM_CHUNK as u64))
}

/// Digest the chunks `first_chunk..first_chunk + out.len()` of `body` into
/// `out`, four at a time where the chunks are full-width. Also the building
/// block of the fused verify-and-validate sweep in the v3 open path.
pub(crate) fn digest_range(body: &[u8], first_chunk: usize, out: &mut [u64]) {
    let mut i = 0;
    while i < out.len() {
        if i + 4 <= out.len() {
            let last = chunk_of(body, first_chunk + i + 3);
            // Only the file's final chunk can be short, so a full-width
            // fourth chunk means all four are full-width.
            if last.len() == CHECKSUM_CHUNK {
                let h = digest_x4(
                    chunk_of(body, first_chunk + i),
                    chunk_of(body, first_chunk + i + 1),
                    chunk_of(body, first_chunk + i + 2),
                    last,
                );
                out[i..i + 4].copy_from_slice(&h);
                i += 4;
                continue;
            }
        }
        out[i] = chunk_digest(chunk_of(body, first_chunk + i));
        i += 1;
    }
}

/// Number of verification threads for an input of `len` bytes.
fn verify_threads(len: usize) -> usize {
    if len < PARALLEL_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
}

/// Compute the two-level checksum of `body` — the verification-side
/// counterpart of [`ChunkedFnv`], interleaved in the pipeline and parallel
/// over chunk groups for large inputs. Identical output for every thread
/// count.
pub(crate) fn chunked_checksum(body: &[u8]) -> u64 {
    let chunk_count = body.len().div_ceil(CHECKSUM_CHUNK);
    let mut digests = vec![0u64; chunk_count];
    let threads = verify_threads(body.len());
    if threads <= 1 {
        digest_range(body, 0, &mut digests);
    } else {
        let per_thread = chunk_count.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest: &mut [u64] = &mut digests;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = per_thread.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let start = first_chunk;
                scope.spawn(move || digest_range(body, start, head));
                rest = tail;
                first_chunk += take;
            }
        });
    }
    combine(&digests)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chunk-by-chunk reference implementation: no interleave, no threads.
    fn reference(body: &[u8]) -> u64 {
        let digests: Vec<u64> = body.chunks(CHECKSUM_CHUNK).map(chunk_digest).collect();
        combine(&digests)
    }

    fn arbitrary_bytes(len: usize) -> Vec<u8> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ len as u64;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn streaming_interleaved_and_reference_agree() {
        // Lengths straddling every boundary case: empty, sub-word, sub-chunk,
        // exact multiples, the 4-chunk interleave width, word-unaligned
        // tails, and a short tail chunk.
        for len in [
            0,
            1,
            7,
            8,
            9,
            CHECKSUM_CHUNK - 1,
            CHECKSUM_CHUNK,
            CHECKSUM_CHUNK + 1,
            3 * CHECKSUM_CHUNK,
            4 * CHECKSUM_CHUNK,
            4 * CHECKSUM_CHUNK + 9,
            5 * CHECKSUM_CHUNK + CHECKSUM_CHUNK / 2,
            9 * CHECKSUM_CHUNK + 3,
        ] {
            let body = arbitrary_bytes(len);
            let expected = reference(&body);
            assert_eq!(chunked_checksum(&body), expected, "len {len}");
            // Streaming writer fed in word-unaligned splits.
            let mut writer = ChunkedFnv::new();
            for piece in body.chunks(1_000_003) {
                writer.update(piece);
            }
            assert_eq!(writer.finish(), expected, "streaming, len {len}");
            // And byte at a time over a smaller prefix (full pass is slow).
            let prefix = &body[..len.min(CHECKSUM_CHUNK + 21)];
            let mut writer = ChunkedFnv::new();
            for &b in prefix {
                writer.update(std::slice::from_ref(&b));
            }
            assert_eq!(writer.finish(), reference(prefix), "byte-wise, len {len}");
        }
    }

    #[test]
    fn every_byte_influences_the_checksum() {
        let mut body = arbitrary_bytes(2 * CHECKSUM_CHUNK + 17);
        let baseline = chunked_checksum(&body);
        for at in [0, 1, 7, CHECKSUM_CHUNK - 1, CHECKSUM_CHUNK, 2 * CHECKSUM_CHUNK + 16] {
            body[at] ^= 0x40;
            assert_ne!(chunked_checksum(&body), baseline, "flip at {at} undetected");
            body[at] ^= 0x40;
        }
        assert_eq!(chunked_checksum(&body), baseline);
    }

    #[test]
    fn trailing_zeros_change_the_checksum() {
        // The length fold keeps zero-padding from aliasing a shorter stream.
        let body = arbitrary_bytes(CHECKSUM_CHUNK / 2);
        let mut padded = body.clone();
        padded.push(0);
        assert_ne!(chunked_checksum(&body), chunked_checksum(&padded));
        assert_ne!(chunked_checksum(&[]), chunked_checksum(&[0]));
    }

    #[test]
    fn empty_stream_is_the_digest_of_no_chunks() {
        assert_eq!(chunked_checksum(&[]), combine(&[]));
        assert_eq!(ChunkedFnv::new().finish(), combine(&[]));
    }
}
