//! [`GraphSource`] — the one ingest entry point over every supported format.

use super::{
    decode_binary_auto, read_csv, read_edge_list, read_json_adjacency, read_metis, GraphFormat,
    ParsedEdgeList,
};
use crate::error::Result;
use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// A builder describing where a graph comes from and how to parse it.
///
/// A source pairs an input (a filesystem path or any [`Read`]er) with an
/// optional [`GraphFormat`]. [`load`](GraphSource::load) resolves the format
/// — explicit [`with_format`](GraphSource::with_format) wins, then the file
/// extension (for [`path`](GraphSource::path) sources), then content sniffing
/// ([`GraphFormat::sniff`]) — and streams the input through the matching
/// reader. Text formats are parsed line by line and never materialized whole;
/// only the binary snapshot (whose checksum trails the data) is read into
/// memory first.
///
/// ```
/// use ugraph::io::{GraphFormat, GraphSource};
///
/// // From an in-memory reader, format sniffed from the content:
/// let parsed = GraphSource::reader("0 1\n1 2\n".as_bytes()).load()?;
/// assert_eq!(parsed.graph.edge_count(), 2);
///
/// // The same bytes as CSV would need the format stated explicitly:
/// let csv = GraphSource::reader("source,target\n0,1\n".as_bytes())
///     .with_format(GraphFormat::Csv)
///     .load()?;
/// assert_eq!(csv.graph.edge_count(), 1);
/// # Ok::<(), ugraph::GraphError>(())
/// ```
pub struct GraphSource {
    input: SourceInput,
    format: Option<GraphFormat>,
    use_extension: bool,
}

enum SourceInput {
    Path(PathBuf),
    Reader(Box<dyn Read>),
}

impl fmt::Debug for GraphSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("GraphSource");
        match &self.input {
            SourceInput::Path(p) => s.field("path", p),
            SourceInput::Reader(_) => s.field("reader", &"<dyn Read>"),
        };
        s.field("format", &self.format).finish()
    }
}

impl GraphSource {
    /// A source reading from a file. The format is resolved from (in order)
    /// an explicit [`with_format`](Self::with_format), the file extension,
    /// and content sniffing.
    pub fn path(path: impl AsRef<Path>) -> Self {
        GraphSource {
            input: SourceInput::Path(path.as_ref().to_path_buf()),
            format: None,
            use_extension: true,
        }
    }

    /// A source reading from a file whose format is detected from the
    /// *content alone* ([`GraphFormat::sniff`]), ignoring the extension —
    /// for files whose extension lies or says nothing (`.dat`, no extension,
    /// a download). Note METIS cannot be sniffed; state it explicitly.
    pub fn auto(path: impl AsRef<Path>) -> Self {
        GraphSource {
            input: SourceInput::Path(path.as_ref().to_path_buf()),
            format: None,
            use_extension: false,
        }
    }

    /// A source reading from any [`Read`]er (a socket, a decompressor, an
    /// in-memory buffer). Without an explicit format the content is sniffed.
    pub fn reader(reader: impl Read + 'static) -> Self {
        GraphSource {
            input: SourceInput::Reader(Box::new(reader)),
            format: None,
            use_extension: false,
        }
    }

    /// Fix the format explicitly, disabling detection.
    pub fn with_format(mut self, format: GraphFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// Open, detect and parse. Parse failures carry the offending 1-based
    /// line number ([`crate::GraphError::Parse`]); unreadable inputs surface
    /// as [`crate::GraphError::Io`].
    pub fn load(self) -> Result<ParsedEdgeList> {
        let explicit = self.format;
        let use_extension = self.use_extension;
        let (reader, extension_format): (Box<dyn BufRead>, Option<GraphFormat>) = match self.input {
            SourceInput::Path(path) => {
                let by_extension =
                    if use_extension { GraphFormat::from_extension(&path) } else { None };
                let file = std::fs::File::open(&path)?;
                (Box::new(BufReader::new(file)), by_extension)
            }
            SourceInput::Reader(reader) => (Box::new(BufReader::new(reader)), None),
        };

        match explicit.or(extension_format) {
            Some(format) => dispatch(format, reader),
            None => {
                // Sniff from an explicit probe, looping until the probe is
                // full or the input ends — a single `read` from a socket or
                // decompressor may legitimately return just a byte or two,
                // which must not decide the format. The consumed prefix is
                // chained back in front of the reader for the parser.
                let mut reader = reader;
                let mut probe = Vec::with_capacity(PROBE_LEN);
                let mut chunk = [0u8; 1024];
                while probe.len() < PROBE_LEN {
                    let n = reader.read(&mut chunk)?;
                    if n == 0 {
                        break;
                    }
                    probe.extend_from_slice(&chunk[..n]);
                }
                let format = GraphFormat::sniff(&probe);
                dispatch(format, std::io::Cursor::new(probe).chain(reader))
            }
        }
    }
}

/// How many leading bytes content sniffing may look at — far more than any
/// sniff rule needs, but enough that the first data line is in view even
/// behind a long comment header.
const PROBE_LEN: usize = 8 * 1024;

/// Hand an already-buffered input to the reader for `format`. Only the
/// binary snapshot (whose checksum trails the data) is slurped into memory;
/// every text dialect streams line by line.
fn dispatch<R: BufRead>(format: GraphFormat, mut reader: R) -> Result<ParsedEdgeList> {
    match format {
        GraphFormat::EdgeList => read_edge_list(reader),
        GraphFormat::Csv => read_csv(reader),
        GraphFormat::Metis => read_metis(reader),
        GraphFormat::JsonAdjacency => read_json_adjacency(reader),
        GraphFormat::Binary => {
            let mut bytes = Vec::new();
            reader.read_to_end(&mut bytes)?;
            decode_binary_auto(&bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{encode_binary, encode_binary_v2};
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::error::GraphError;

    fn triangle() -> crate::csr::CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (0, 2)]);
        b.build()
    }

    fn temp_file(name: &str, contents: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("ugraph_source_{}_{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn reader_sniffs_each_text_format() {
        let el = GraphSource::reader("0 1\n1 2\n0 2\n".as_bytes()).load().unwrap();
        assert_eq!(el.graph, triangle());
        let csv = GraphSource::reader("source,target\n0,1\n1,2\n0,2\n".as_bytes()).load().unwrap();
        assert_eq!(csv.graph, triangle());
        let json = GraphSource::reader(
            "{\"id\": 0, \"adj\": [1, 2]}\n{\"id\": 1, \"adj\": [2]}\n".as_bytes(),
        )
        .load()
        .unwrap();
        assert_eq!(json.graph, triangle());
    }

    #[test]
    fn reader_sniffs_both_binary_generations() {
        let g = triangle();
        let v2 = encode_binary_v2(&g, None).unwrap();
        assert_eq!(GraphSource::reader(std::io::Cursor::new(v2)).load().unwrap().graph, g);
        let v1 = encode_binary(&g);
        let v1_bytes: Vec<u8> = v1.as_ref().to_vec();
        assert_eq!(GraphSource::reader(std::io::Cursor::new(v1_bytes)).load().unwrap().graph, g);
    }

    #[test]
    fn path_prefers_extension_then_sniffs() {
        // A CSV body under a .csv name parses as CSV...
        let path = temp_file("by_ext.csv", b"source,target\n0,1\n1,2\n0,2\n");
        assert_eq!(GraphSource::path(&path).load().unwrap().graph, triangle());
        // ...while an unknown extension falls back to sniffing the content.
        let path = temp_file("unknown.dat", b"source,target\n0,1\n1,2\n0,2\n");
        assert_eq!(GraphSource::path(&path).load().unwrap().graph, triangle());
        // `auto` ignores a lying extension entirely.
        let path = temp_file("lies.csv", b"0 1\n1 2\n0 2\n");
        assert_eq!(GraphSource::auto(&path).load().unwrap().graph, triangle());
    }

    #[test]
    fn explicit_format_wins_over_everything() {
        // Metis content under a .txt name: only the explicit format saves it.
        let path = temp_file("explicit.txt", b"3 3\n2 3\n1 3\n1 2\n");
        let parsed = GraphSource::path(&path).with_format(GraphFormat::Metis).load().unwrap();
        assert_eq!(parsed.graph, triangle());
    }

    #[test]
    fn sniffing_survives_readers_that_return_short_chunks() {
        // Sockets and decompressors may return one byte per read; the probe
        // must keep reading until it has enough to decide, not judge the
        // first chunk alone (2 bytes of "GT" would sniff as an edge list).
        struct OneByteReader {
            data: Vec<u8>,
            pos: usize,
        }
        impl std::io::Read for OneByteReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let g = triangle();
        let blob = encode_binary_v2(&g, None).unwrap();
        let parsed = GraphSource::reader(OneByteReader { data: blob, pos: 0 }).load().unwrap();
        assert_eq!(parsed.graph, g);
        // Same for a text dialect: the whole prefix is probed, not one byte.
        let text = b"# header\nsource,target\n0,1\n1,2\n0,2\n".to_vec();
        let parsed = GraphSource::reader(OneByteReader { data: text, pos: 0 }).load().unwrap();
        assert_eq!(parsed.graph, g);
    }

    #[test]
    fn missing_files_surface_as_io_errors() {
        let err = GraphSource::path("/definitely/not/a/file.txt").load().unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "{err}");
    }
}
