//! The ingest boundary: streaming graph readers, graph writers and the
//! [`GraphSource`] builder.
//!
//! Four line-oriented text dialects and one binary snapshot format are
//! supported, all converging on the same [`ParsedEdgeList`] (a canonical
//! [`CsrGraph`] plus optional per-edge weights):
//!
//! | format                          | reader                   | writer                         |
//! |---------------------------------|--------------------------|--------------------------------|
//! | whitespace edge list (SNAP)     | [`read_edge_list`]       | [`write_edge_list`] / [`write_edge_list_weighted`] |
//! | CSV with header                 | [`read_csv`]             | —                              |
//! | METIS adjacency                 | [`read_metis`]           | —                              |
//! | JSON adjacency (one object/line)| [`read_json_adjacency`]  | —                              |
//! | binary snapshot v2/v3 (+ legacy v1) | [`decode_binary_auto`] | [`encode_binary_v2`] / [`encode_binary_v3`] |
//!
//! Callers rarely pick a reader by hand: [`GraphSource`] resolves the format
//! from an explicit [`GraphFormat`], the file extension, or content sniffing,
//! and streams the bytes through the right reader:
//!
//! ```no_run
//! use ugraph::io::GraphSource;
//!
//! let parsed = GraphSource::path("soc-wiki-vote.csv").load()?;
//! println!("{} vertices", parsed.graph.vertex_count());
//! # Ok::<(), ugraph::GraphError>(())
//! ```
//!
//! Every text reader skips blank lines and `#` / `%` comment lines, reports
//! malformed input as [`GraphError::Parse`] with the offending 1-based line
//! number, and enforces the same weight rules: the weight column is
//! all-or-nothing, weights must be finite, duplicate mentions of an edge keep
//! the **last** weight, and self loops are dropped (their endpoints are kept
//! as vertices).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use std::io::{BufRead, Write};
use std::path::Path;

mod binary;
mod checksum;
mod formats;
pub mod mmap;
mod source;
mod v3;

pub use binary::{
    decode_binary, decode_binary_auto, decode_binary_v2, encode_binary, encode_binary_v2,
    BINARY_V2_MAGIC,
};
pub use formats::{read_csv, read_json_adjacency, read_metis, GraphFormat};
pub use source::GraphSource;
#[doc(hidden)]
pub use v3::restamp_v3_checksum;
pub use v3::{
    decode_binary_v3, encode_binary_v3, write_binary_v3, write_binary_v3_file, MappedCsrGraph,
    BINARY_V3_VERSION,
};

/// An edge list parsed from any ingest format: the graph plus optional
/// per-edge weights.
#[derive(Clone, Debug)]
pub struct ParsedEdgeList {
    /// The parsed graph.
    pub graph: CsrGraph,
    /// Per-edge weights aligned with [`CsrGraph`] edge ids, if the input
    /// carried a weight for every edge.
    pub edge_weights: Option<Vec<f64>>,
}

impl ParsedEdgeList {
    /// Write the graph (and its weights, if any) back out as a whitespace
    /// edge list. Weights survive a write → read round trip bit-for-bit
    /// (see [`write_edge_list_weighted`]).
    pub fn write_edge_list<W: Write>(&self, writer: W) -> Result<()> {
        match &self.edge_weights {
            Some(weights) => write_edge_list_weighted(&self.graph, weights, writer),
            None => write_edge_list(&self.graph, writer),
        }
    }
}

/// Shared edge-collection core of every text reader: accumulates edges and
/// their optional weights, enforces the all-or-nothing weight column, the
/// finite-weight rule and the last-wins duplicate rule, and re-aligns weights
/// with canonical edge ids at the end.
pub(crate) struct EdgeAccumulator {
    builder: GraphBuilder,
    // (canonical endpoints) -> weight; insertion overwrites, implementing the
    // last-wins rule before weights are re-aligned with canonical edge ids.
    weights_by_edge: std::collections::HashMap<(u32, u32), f64>,
    // Line number of the first data line, and whether it carried a weight —
    // every later line must agree.
    first_edge_line: Option<(usize, bool)>,
}

impl EdgeAccumulator {
    pub(crate) fn new() -> Self {
        EdgeAccumulator {
            builder: GraphBuilder::new(),
            weights_by_edge: Default::default(),
            first_edge_line: None,
        }
    }

    /// Reserve vertex `v` even if no edge mentions it.
    pub(crate) fn ensure_vertex(&mut self, v: u32) {
        self.builder.ensure_vertex(v);
    }

    /// Record one `u — v` mention from 1-based source line `lineno`, with its
    /// optional (already parsed and validated-finite) weight.
    pub(crate) fn edge(
        &mut self,
        lineno: usize,
        u: u32,
        v: u32,
        weight: Option<f64>,
    ) -> Result<()> {
        match self.first_edge_line {
            None => self.first_edge_line = Some((lineno, weight.is_some())),
            Some((first_line, first_weighted)) => {
                if first_weighted != weight.is_some() {
                    let (with, without) =
                        if first_weighted { (first_line, lineno) } else { (lineno, first_line) };
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!(
                            "inconsistent weight column: line {with} has a weight but \
                             line {without} does not"
                        ),
                    });
                }
            }
        }
        if let Some(w) = weight {
            let key = if u <= v { (u, v) } else { (v, u) };
            self.weights_by_edge.insert(key, w);
        }
        // Keep every vertex the input mentions, even when its only edge is a
        // dropped self loop — the graph must not silently lose vertices.
        self.builder.ensure_vertex(u);
        self.builder.ensure_vertex(v);
        self.builder.add_edge(u, v);
        Ok(())
    }

    /// Number of (possibly duplicated, possibly self-loop) edge mentions
    /// recorded so far.
    pub(crate) fn mention_count(&self) -> usize {
        self.builder.staged_edge_count() + self.builder.dropped_self_loops()
    }

    pub(crate) fn finish(self) -> Result<ParsedEdgeList> {
        let graph = self.builder.build();
        let edge_weights = match self.first_edge_line {
            Some((_, true)) => {
                let weights = graph
                    .edges()
                    .map(|e| {
                        self.weights_by_edge.get(&(e.u.0, e.v.0)).copied().ok_or_else(|| {
                            GraphError::Parse {
                                line: 0,
                                message: format!("edge {} {} has no matched weight", e.u.0, e.v.0),
                            }
                        })
                    })
                    .collect::<Result<Vec<f64>>>()?;
                Some(weights)
            }
            _ => None,
        };
        Ok(ParsedEdgeList { graph, edge_weights })
    }
}

pub(crate) fn parse_weight(raw: &str, lineno: usize) -> Result<f64> {
    let w: f64 = raw.parse().map_err(|_| GraphError::Parse {
        line: lineno,
        message: format!("invalid weight `{raw}`"),
    })?;
    if !w.is_finite() {
        return Err(GraphError::Parse {
            line: lineno,
            message: format!("non-finite weight `{raw}`"),
        });
    }
    Ok(w)
}

/// Whether a trimmed line is skippable: blank, or a `#` / `%` comment (the
/// SNAP and Matrix-Market commenting conventions).
pub(crate) fn is_comment_or_blank(trimmed: &str) -> bool {
    trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%')
}

/// Read a whitespace-separated edge list from a reader.
///
/// Lines beginning with `#` or `%` (SNAP / Matrix-Market dumps) and blank
/// lines are skipped. Each data line must contain two vertex ids and may
/// contain a third floating-point weight. The weight column is
/// all-or-nothing: mixing weighted and unweighted edge lines is a
/// [`GraphError::Parse`] (the seed behavior of silently dropping every weight
/// hid exactly the kind of lossy input this guards against), and so is a
/// non-finite weight (`nan`/`inf`), which would poison every scalar
/// computation downstream.
///
/// Duplicate edges — including reversed orientation, since edges are
/// canonicalized to `u <= v` — are deduplicated with a **last-wins** rule for
/// their weight: the weight on the last line mentioning the edge is the one
/// returned. Self loops (`u u [w]`) are dropped along with their weight; their
/// lines still count towards the all-or-nothing weight-column rule.
///
/// Takes any [`BufRead`] (a `&[u8]`, or a `File` wrapped in
/// [`std::io::BufReader`]); [`GraphSource`] hands its already-buffered input
/// straight through.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<ParsedEdgeList> {
    let mut acc = EdgeAccumulator::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if is_comment_or_blank(trimmed) {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u32 = parse_field(it.next(), lineno, "source vertex")?;
        let v: u32 = parse_field(it.next(), lineno, "target vertex")?;
        let weight = it.next().map(|raw| parse_weight(raw, lineno)).transpose()?;
        acc.edge(lineno, u, v, weight)?;
    }
    acc.finish()
}

pub(crate) fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<u32> {
    let raw =
        field.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    raw.parse().map_err(|_| GraphError::Parse { line, message: format!("invalid {what} `{raw}`") })
}

/// Read an edge list from a file path.
#[deprecated(
    since = "0.3.0",
    note = "use `GraphSource::path(path).with_format(GraphFormat::EdgeList).load()` \
            (or `GraphSource::path(path).load()` to auto-detect the format)"
)]
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<ParsedEdgeList> {
    GraphSource::path(path.as_ref()).with_format(GraphFormat::EdgeList).load()
}

/// Write a graph as a plain edge list (`u v` per line, canonical order).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# graph-terrain edge list: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.u.0, e.v.0)?;
    }
    Ok(())
}

/// Write a graph as a weighted edge list (`u v w` per line, canonical order).
///
/// Weights are printed with Rust's shortest-round-trip `f64` formatting, so a
/// write → [`read_edge_list`] round trip reproduces every weight **exactly**
/// (bit-for-bit), not merely approximately. Non-finite weights and a weight
/// vector whose length does not match the edge count are rejected up front —
/// [`read_edge_list`] would refuse the file anyway.
pub fn write_edge_list_weighted<W: Write>(
    graph: &CsrGraph,
    weights: &[f64],
    mut writer: W,
) -> Result<()> {
    if weights.len() != graph.edge_count() {
        return Err(GraphError::LengthMismatch {
            what: "edge weights",
            expected: graph.edge_count(),
            actual: weights.len(),
        });
    }
    if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
        return Err(GraphError::NonFiniteScalar {
            what: "edge weights",
            index,
            value: weights[index],
        });
    }
    writeln!(
        writer,
        "# graph-terrain weighted edge list: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        // `{}` on f64 prints the shortest decimal that parses back to the
        // same bits — the round-trip-exactness contract of this writer.
        writeln!(writer, "{} {} {}", e.u.0, e.v.0, weights[e.id.index()])?;
    }
    Ok(())
}

/// Write a graph to a file as an edge list.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn parses_snap_style_edge_list() {
        let text = "# comment line\n% another comment\n\n0 1\n1 2\n2 0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.vertex_count(), 3);
        assert_eq!(parsed.graph.edge_count(), 3);
        assert!(parsed.edge_weights.is_none());
    }

    #[test]
    fn comments_and_blanks_are_allowed_anywhere() {
        // SNAP dumps put `#` headers first; Matrix-Market uses `%`; both may
        // recur mid-file, with blank (or whitespace-only) separator lines.
        let text = "# SNAP header\n0 1\n\n   \n% mid-file comment\n1 2\n# trailing comment\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.vertex_count(), 3);
        assert_eq!(parsed.graph.edge_count(), 2);
        // Indented comments count as comments too.
        let parsed = read_edge_list("  # indented\n0 1\n".as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
    }

    #[test]
    fn parses_weighted_edge_list() {
        let text = "0 1 0.5\n1 2 2.5\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        let weights = parsed.edge_weights.unwrap();
        assert_eq!(weights.len(), 2);
        let e = parsed.graph.find_edge(VertexId(1), VertexId(2)).unwrap();
        assert!((weights[e.index()] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_weight_columns_are_rejected() {
        // The seed code silently dropped every weight here; a half-weighted
        // file is corrupt input and must fail loudly with the offending line.
        let err = read_edge_list("0 1 0.5\n1 2\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("inconsistent weight column"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Same with the orientations flipped: weight appearing late.
        let err = read_edge_list("0 1\n1 2 0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        // Comments between the offending lines do not confuse the line count.
        let err = read_edge_list("0 1 0.5\n# note\n\n1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 4, .. }));
    }

    #[test]
    fn non_finite_weights_are_rejected() {
        for bad in ["nan", "inf", "-inf"] {
            let text = format!("0 1 {bad}\n");
            let err = read_edge_list(text.as_bytes()).unwrap_err();
            match err {
                GraphError::Parse { line, message } => {
                    assert_eq!(line, 1);
                    assert!(message.contains("non-finite"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_edges_keep_the_last_weight() {
        // The same canonical edge listed three times (once reversed): the
        // weight of the *last* line wins.
        let text = "0 1 1.0\n1 0 2.0\n0 1 3.5\n1 2 9.0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 2);
        let weights = parsed.edge_weights.unwrap();
        let e01 = parsed.graph.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert!((weights[e01.index()] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_self_loops_are_dropped_with_their_weight() {
        // The self loop vanishes (the builder drops it) and its weight with
        // it; remaining edges still get their weights, and the loop line
        // counts towards the all-or-nothing weight rule.
        let text = "2 2 5.0\n0 1 1.5\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
        assert_eq!(parsed.graph.vertex_count(), 3, "loop vertex still exists");
        let weights = parsed.edge_weights.unwrap();
        assert_eq!(weights.len(), 1);
        assert!((weights[0] - 1.5).abs() < 1e-12);
        // A weighted self loop in an otherwise unweighted file is still an
        // inconsistent weight column.
        let err = read_edge_list("2 2 5.0\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1\nbogus line here\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list("5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn text_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let parsed = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(parsed.graph, g);
    }

    #[test]
    fn weighted_write_round_trips_exact_bits() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        // Values with no short decimal representation: the shortest-repr
        // formatting must still reproduce them exactly.
        let weights = vec![0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE];
        let mut out = Vec::new();
        write_edge_list_weighted(&g, &weights, &mut out).unwrap();
        let parsed = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(parsed.graph, g);
        let round = parsed.edge_weights.unwrap();
        for (a, b) in weights.iter().zip(&round) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-tripped as {b}");
        }
    }

    #[test]
    fn weighted_write_rejects_bad_inputs() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let mut out = Vec::new();
        assert!(matches!(
            write_edge_list_weighted(&g, &[1.0, 2.0], &mut out),
            Err(GraphError::LengthMismatch { .. })
        ));
        assert!(matches!(
            write_edge_list_weighted(&g, &[f64::NAN], &mut out),
            Err(GraphError::NonFiniteScalar { .. })
        ));
    }

    #[test]
    fn parsed_edge_list_writes_itself_back() {
        let parsed = read_edge_list("0 1 1.5\n1 2 -2.25\n".as_bytes()).unwrap();
        let mut out = Vec::new();
        parsed.write_edge_list(&mut out).unwrap();
        let again = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(again.graph, parsed.graph);
        assert_eq!(again.edge_weights, parsed.edge_weights);
    }
}
