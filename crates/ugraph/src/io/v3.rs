//! Binary snapshot **v3**: the zero-copy generation.
//!
//! Where v2 serializes the *edge list* and rebuilds the CSR arrays on load,
//! v3 serializes the **CSR arrays themselves**, laid out so a memory-mapped
//! file can back a [`crate::GraphStorage`] directly — no parse, no sort, no
//! allocation proportional to the graph:
//!
//! ```text
//! offset 0   "GTSB"                                  magic (shared with v2)
//! offset 4   version: u32 = 3
//! offset 8   sections, each 8-byte aligned:
//!              { tag: u32, reserved: u32 = 0, len: u64 }   16-byte header
//!              payload[len], zero-padded to a multiple of 8
//! tail       checksum: u64 (two-level chunked word fold, see below)
//! ```
//!
//! The trailing checksum covers every preceding byte through a two-level
//! FNV-style word fold: the file body is cut into fixed 1 MiB chunks (the
//! final chunk may be short), each chunk is digested by folding its 8-byte
//! little-endian words (and finally its length) into an FNV-1a64-style
//! chain, and the stored checksum is the same fold over the per-chunk
//! digests. A plain byte-wise single-pass FNV is an inherently serial
//! multiply-per-byte chain (~0.7 GB/s); word folding costs one multiply per
//! 8 bytes, and the chunked form verifies several independent chains at once
//! — interleaved in one core's pipeline and spread across threads — so
//! open-time integrity checking runs at memory bandwidth instead of gating
//! the whole zero-copy design. The exact definition lives in the private
//! `checksum` module.
//!
//! All integers are little-endian. Sections (unknown tags are skipped for
//! forward compatibility):
//!
//! | tag | name      | payload                                      |
//! |-----|-----------|----------------------------------------------|
//! | 1   | header    | `vertex_count: u64`, `edge_count: u64`       |
//! | 2   | offsets   | `(V + 1) × u64` — CSR prefix sums            |
//! | 3   | targets   | `2E × u32` — neighbor vertex per half-edge   |
//! | 4   | edge ids  | `2E × u32` — edge id per half-edge           |
//! | 5   | endpoints | `E × [u32; 2]` — canonical `(u < v)` pairs   |
//! | 6   | weights   | `E × f64` — optional per-edge weights        |
//!
//! Because the first section starts at offset 8 and every header is 16 bytes
//! with payloads padded to 8, **every payload begins on an 8-byte boundary**
//! of the file. Combined with the ≥8-byte-aligned buffers of
//! [`MappedBytes`], each array can be reinterpreted in place on little-endian
//! 64-bit targets (the `#[repr(transparent)]` ids make `&[u32]` ↔
//! `&[VertexId]` free). Elsewhere, [`MappedCsrGraph`] transparently decodes
//! to owned arrays instead — same trait, same results, only residency
//! differs.
//!
//! [`MappedCsrGraph::open`] verifies the trailing checksum and every
//! structural property the accessors rely on (section framing, counts,
//! monotone offsets, in-bounds targets/edge ids, sorted neighbor blocks,
//! canonical endpoints, finite weights), so no later access can panic — let
//! alone hit undefined behavior — on a corrupt file. The one check deferred
//! to [`crate::GraphStorage::check_invariants`] is the random-access
//! cross-link between half-edges and endpoint pairs; the owned decoder
//! ([`decode_binary_v3`]) runs that too.

use super::binary::{corrupt, BINARY_V2_MAGIC};
use super::checksum::{chunked_checksum, ChunkedFnv};
use super::mmap::MappedBytes;
use super::ParsedEdgeList;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, VertexId};
use crate::storage::GraphStorage;
use std::io::Write;
use std::ops::Range;
use std::path::Path;

/// Version stamp of the zero-copy snapshot generation.
pub const BINARY_V3_VERSION: u32 = 3;

const SECTION_HEADER: u32 = 1;
const SECTION_OFFSETS: u32 = 2;
const SECTION_TARGETS: u32 = 3;
const SECTION_EDGE_IDS: u32 = 4;
const SECTION_ENDPOINTS: u32 = 5;
const SECTION_WEIGHTS: u32 = 6;

/// Reinterpretation is only sound where the in-memory layout matches the
/// file layout: little-endian integers and 8-byte `usize`.
const ZERO_COPY_SUPPORTED: bool = cfg!(all(target_endian = "little", target_pointer_width = "64"));

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Incremental writer that keeps the running two-level checksum of everything
/// written, so the trailing checksum never needs a second pass (or the whole
/// snapshot in memory).
struct ChecksumWriter<W: Write> {
    inner: W,
    fnv: ChunkedFnv,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter { inner, fnv: ChunkedFnv::new() }
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.fnv.update(bytes);
        self.inner.write_all(bytes).map_err(GraphError::Io)
    }

    fn finish(mut self) -> Result<()> {
        let checksum = self.fnv.finish();
        self.inner.write_all(&checksum.to_le_bytes()).map_err(GraphError::Io)?;
        self.inner.flush().map_err(GraphError::Io)
    }
}

fn validate_weights<G: GraphStorage + ?Sized>(graph: &G, weights: &[f64]) -> Result<()> {
    if weights.len() != graph.edge_count() {
        return Err(GraphError::LengthMismatch {
            what: "edge weights",
            expected: graph.edge_count(),
            actual: weights.len(),
        });
    }
    if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
        return Err(GraphError::NonFiniteScalar {
            what: "edge weights",
            index,
            value: weights[index],
        });
    }
    Ok(())
}

fn write_section<W: Write>(
    out: &mut ChecksumWriter<W>,
    tag: u32,
    len: usize,
    mut payload: impl FnMut(&mut ChecksumWriter<W>) -> Result<()>,
) -> Result<()> {
    out.write(&tag.to_le_bytes())?;
    out.write(&0u32.to_le_bytes())?;
    out.write(&(len as u64).to_le_bytes())?;
    payload(out)?;
    let pad = len.next_multiple_of(8) - len;
    out.write(&[0u8; 7][..pad])
}

/// Stream a v3 snapshot of `graph` (plus optional per-edge weights) into
/// `writer`. [`encode_binary_v3`] is the in-memory convenience wrapper.
pub fn write_binary_v3<G: GraphStorage + ?Sized, W: Write>(
    graph: &G,
    weights: Option<&[f64]>,
    writer: W,
) -> Result<()> {
    if let Some(weights) = weights {
        validate_weights(graph, weights)?;
    }
    let mut out = ChecksumWriter::new(writer);
    out.write(BINARY_V2_MAGIC)?;
    out.write(&BINARY_V3_VERSION.to_le_bytes())?;

    write_section(&mut out, SECTION_HEADER, 16, |out| {
        out.write(&(graph.vertex_count() as u64).to_le_bytes())?;
        out.write(&(graph.edge_count() as u64).to_le_bytes())
    })?;

    let offsets = graph.offsets();
    write_section(&mut out, SECTION_OFFSETS, offsets.len() * 8, |out| {
        // Chunked re-encoding keeps the writer portable (usize width,
        // endianness) without building one giant contiguous buffer.
        for chunk in offsets.chunks(8_192) {
            let mut buf = Vec::with_capacity(chunk.len() * 8);
            for &o in chunk {
                buf.extend_from_slice(&(o as u64).to_le_bytes());
            }
            out.write(&buf)?;
        }
        Ok(())
    })?;

    let targets = graph.targets();
    write_section(&mut out, SECTION_TARGETS, targets.len() * 4, |out| {
        for chunk in targets.chunks(16_384) {
            let mut buf = Vec::with_capacity(chunk.len() * 4);
            for &t in chunk {
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            out.write(&buf)?;
        }
        Ok(())
    })?;

    let edge_ids = graph.edge_ids();
    write_section(&mut out, SECTION_EDGE_IDS, edge_ids.len() * 4, |out| {
        for chunk in edge_ids.chunks(16_384) {
            let mut buf = Vec::with_capacity(chunk.len() * 4);
            for &e in chunk {
                buf.extend_from_slice(&e.0.to_le_bytes());
            }
            out.write(&buf)?;
        }
        Ok(())
    })?;

    let endpoints = graph.endpoint_pairs();
    write_section(&mut out, SECTION_ENDPOINTS, endpoints.len() * 8, |out| {
        for chunk in endpoints.chunks(8_192) {
            let mut buf = Vec::with_capacity(chunk.len() * 8);
            for &[u, v] in chunk {
                buf.extend_from_slice(&u.to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
            }
            out.write(&buf)?;
        }
        Ok(())
    })?;

    if let Some(weights) = weights {
        write_section(&mut out, SECTION_WEIGHTS, weights.len() * 8, |out| {
            for chunk in weights.chunks(8_192) {
                let mut buf = Vec::with_capacity(chunk.len() * 8);
                for &w in chunk {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
                out.write(&buf)?;
            }
            Ok(())
        })?;
    }

    out.finish()
}

/// Encode a v3 snapshot into a byte vector. See the module docs for the
/// layout; [`write_binary_v3_file`] streams straight to disk instead.
pub fn encode_binary_v3<G: GraphStorage + ?Sized>(
    graph: &G,
    weights: Option<&[f64]>,
) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_binary_v3(graph, weights, &mut out)?;
    Ok(out)
}

/// Write a v3 snapshot of `graph` to `path` through a buffered writer.
pub fn write_binary_v3_file<G: GraphStorage + ?Sized>(
    graph: &G,
    weights: Option<&[f64]>,
    path: impl AsRef<Path>,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_binary_v3(graph, weights, std::io::BufWriter::new(file))
}

/// Recompute and overwrite the checksum trailer of an encoded v3 snapshot.
///
/// Test support for corruption suites: doctoring bytes *and* re-stamping the
/// checksum lets a deliberately broken snapshot get past the integrity gate,
/// so the framing and structural validators can be exercised directly. Not
/// part of the stable API.
#[doc(hidden)]
pub fn restamp_v3_checksum(bytes: &mut [u8]) {
    assert!(bytes.len() >= 16, "not a v3 snapshot: shorter than magic + version + checksum");
    let body = bytes.len() - 8;
    let checksum = chunked_checksum(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&checksum);
}

// ---------------------------------------------------------------------------
// Layout parsing and validation
// ---------------------------------------------------------------------------

/// Byte ranges of the six sections inside a validated v3 snapshot.
#[derive(Clone, Debug)]
struct V3Layout {
    vertex_count: usize,
    edge_count: usize,
    offsets: Range<usize>,
    targets: Range<usize>,
    edge_ids: Range<usize>,
    endpoints: Range<usize>,
    weights: Option<Range<usize>>,
}

/// Parse and fully validate a v3 snapshot: magic, version, trailing checksum,
/// section framing, declared counts, and every structural array property
/// (monotone offsets, in-bounds sorted targets, in-bounds edge ids, canonical
/// endpoints, finite weights). After `Ok`, every accessor over the returned
/// ranges is panic-free.
fn parse_v3(bytes: &[u8]) -> Result<V3Layout> {
    let (body, _) = split_checksum(bytes)?;
    check_magic_version(bytes)?;
    verify_checksum(bytes, chunked_checksum(body))?;
    let layout = parse_v3_layout(bytes)?;
    validate_arrays(bytes, &layout)?;
    Ok(layout)
}

/// Reject snapshots whose magic or version stamp is not v3's.
fn check_magic_version(bytes: &[u8]) -> Result<()> {
    if &bytes[..4] != BINARY_V2_MAGIC {
        return Err(corrupt(format!(
            "bad magic {:02x?}: not a graph-terrain binary snapshot",
            &bytes[..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != BINARY_V3_VERSION {
        return Err(corrupt(format!(
            "unsupported binary snapshot version {version} (this reader supports {BINARY_V3_VERSION})"
        )));
    }
    Ok(())
}

/// Split a snapshot into its body and trailing checksum, rejecting inputs too
/// short to hold magic + version + checksum.
fn split_checksum(bytes: &[u8]) -> Result<(&[u8], u64)> {
    if bytes.len() < 4 + 4 + 8 {
        return Err(corrupt("binary snapshot truncated: shorter than magic + version + checksum"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    Ok((body, u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"))))
}

/// Compare a computed body checksum against the stored trailer.
fn verify_checksum(bytes: &[u8], computed: u64) -> Result<()> {
    let (_, stored) = split_checksum(bytes)?;
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x} — snapshot corrupt"
        )));
    }
    Ok(())
}

/// Framing half of [`parse_v3`]: magic, version, section framing and declared
/// counts — everything *except* the checksum and the structural array
/// validation, which the zero-copy open path fuses into a single sweep
/// ([`verify_open`]) instead.
fn parse_v3_layout(bytes: &[u8]) -> Result<V3Layout> {
    let (body, _) = split_checksum(bytes)?;
    check_magic_version(bytes)?;

    let mut counts: Option<(usize, usize)> = None;
    let mut sections: [Option<Range<usize>>; 5] = [None, None, None, None, None];
    let mut pos = 8usize;
    while pos < body.len() {
        if body.len() - pos < 16 {
            return Err(corrupt(format!(
                "section header truncated at offset {pos}: {} bytes remain, 16 needed",
                body.len() - pos
            )));
        }
        let tag = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(body[pos + 8..pos + 16].try_into().expect("8 bytes"));
        if len > (body.len() - pos - 16) as u64 {
            return Err(corrupt(format!(
                "section {tag} truncated: declares {len} bytes, {} remain",
                body.len() - pos - 16
            )));
        }
        let len = len as usize;
        let padded = len.next_multiple_of(8);
        let payload = pos + 16..pos + 16 + len;
        if padded > body.len() - pos - 16 {
            return Err(corrupt(format!(
                "section {tag} padding truncated: {len} payload bytes pad to {padded}, {} remain",
                body.len() - pos - 16
            )));
        }
        pos += 16 + padded;
        let slot = match tag {
            SECTION_HEADER => {
                if len != 16 {
                    return Err(corrupt(format!("header section has {len} bytes, expected 16")));
                }
                let v = u64::from_le_bytes(
                    body[payload.start..payload.start + 8].try_into().expect("8 bytes"),
                );
                let e = u64::from_le_bytes(
                    body[payload.start + 8..payload.end].try_into().expect("8 bytes"),
                );
                if counts.replace((v as usize, e as usize)).is_some() {
                    return Err(corrupt("duplicate header section"));
                }
                if v > u32::MAX as u64 || e > u32::MAX as u64 {
                    return Err(corrupt(format!(
                        "counts ({v} vertices, {e} edges) exceed the u32 id space"
                    )));
                }
                continue;
            }
            SECTION_OFFSETS => 0,
            SECTION_TARGETS => 1,
            SECTION_EDGE_IDS => 2,
            SECTION_ENDPOINTS => 3,
            SECTION_WEIGHTS => 4,
            // Unknown section: skip (forward compatibility).
            _ => continue,
        };
        if sections[slot].replace(payload).is_some() {
            return Err(corrupt(format!("duplicate section with tag {tag}")));
        }
    }

    let (vertex_count, edge_count) =
        counts.ok_or_else(|| corrupt("snapshot has no header section"))?;
    let [offsets, targets, edge_ids, endpoints, weights] = sections;
    let require = |section: Option<Range<usize>>, name: &str, expected: usize| {
        let range = section.ok_or_else(|| corrupt(format!("snapshot has no {name} section")))?;
        if range.len() != expected {
            return Err(corrupt(format!(
                "{name} section holds {} bytes, header counts require {expected}",
                range.len()
            )));
        }
        Ok(range)
    };
    let layout = V3Layout {
        vertex_count,
        edge_count,
        offsets: require(offsets, "offsets", (vertex_count + 1) * 8)?,
        targets: require(targets, "targets", edge_count * 2 * 4)?,
        edge_ids: require(edge_ids, "edge ids", edge_count * 2 * 4)?,
        endpoints: require(endpoints, "endpoints", edge_count * 8)?,
        weights: match weights {
            Some(range) => Some(require(Some(range), "weights", edge_count * 8)?),
            None => None,
        },
    };
    Ok(layout)
}

/// Little-endian readers over a section's raw bytes — used by validation and
/// by the portable (copying) decode path, so they work on any endianness.
fn read_u64(bytes: &[u8], range: &Range<usize>, i: usize) -> u64 {
    let at = range.start + i * 8;
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn read_u32(bytes: &[u8], range: &Range<usize>, i: usize) -> u32 {
    let at = range.start + i * 4;
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Split `0..count` into contiguous per-thread ranges and run `check` over
/// each concurrently, reporting the error of the earliest range that failed.
/// Each range is scanned front to back, so the reported error is exactly the
/// one a serial front-to-back scan would hit first — validation stays
/// deterministic at every thread count.
fn check_chunks<F>(count: usize, check: F) -> Result<()>
where
    F: Fn(Range<usize>) -> Result<()> + Sync,
{
    // Below this many items per worker the spawn overhead outweighs the scan.
    const MIN_PER_THREAD: usize = 1 << 17;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(count / MIN_PER_THREAD);
    if threads <= 1 {
        return check(0..count);
    }
    let per = count.div_ceil(threads);
    let check = &check;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let range = t * per..((t + 1) * per).min(count);
                scope.spawn(move || check(range))
            })
            .collect();
        // Joining in spawn order makes the earliest failing range win.
        workers.into_iter().try_for_each(|w| w.join().expect("validation worker panicked"))
    })
}

fn validate_arrays(bytes: &[u8], layout: &V3Layout) -> Result<()> {
    let broken =
        |what: &'static str, message: String| Err(GraphError::BrokenInvariant { what, message });
    let half_edges = layout.edge_count * 2;
    // Offsets are validated up front and serially: every later walk trusts
    // them as block boundaries, and at 8 bytes per vertex the scan is cheap.
    if read_u64(bytes, &layout.offsets, 0) != 0 {
        return broken("offsets", "offsets must start at 0".into());
    }
    let mut prev = 0u64;
    for v in 1..=layout.vertex_count {
        let next = read_u64(bytes, &layout.offsets, v);
        if next < prev {
            return broken("offsets", format!("offsets decrease at vertex {}", v - 1));
        }
        prev = next;
    }
    if prev != half_edges as u64 {
        return broken(
            "offsets",
            format!("offsets end at {prev} but the graph has {half_edges} half-edges"),
        );
    }
    // Walk targets per adjacency block: bounds plus strict neighbor order.
    // Chunked over vertices so each worker sees only whole blocks.
    check_chunks(layout.vertex_count, |vertices| {
        for v in vertices {
            let start = read_u64(bytes, &layout.offsets, v) as usize;
            let end = read_u64(bytes, &layout.offsets, v + 1) as usize;
            let mut prev_target = u32::MAX;
            for i in start..end {
                let t = read_u32(bytes, &layout.targets, i);
                if t as usize >= layout.vertex_count {
                    return broken(
                        "adjacency",
                        format!("target v{t} at half-edge {i} out of bounds"),
                    );
                }
                if prev_target != u32::MAX && t <= prev_target {
                    return broken(
                        "neighbor order",
                        format!("neighbors of v{v} are not strictly sorted at half-edge {i}"),
                    );
                }
                prev_target = t;
            }
        }
        Ok(())
    })?;
    check_chunks(half_edges, |range| {
        for i in range {
            let e = read_u32(bytes, &layout.edge_ids, i);
            if e as usize >= layout.edge_count {
                return broken("edge ids", format!("e{e} at half-edge {i} out of bounds"));
            }
        }
        Ok(())
    })?;
    check_chunks(layout.edge_count, |range| {
        for i in range {
            let u = read_u32(bytes, &layout.endpoints, 2 * i);
            let w = read_u32(bytes, &layout.endpoints, 2 * i + 1);
            if u >= w {
                return broken("endpoints", format!("edge {i} is not canonical: (v{u}, v{w})"));
            }
            if w as usize >= layout.vertex_count {
                return broken("endpoints", format!("edge {i} endpoint v{w} out of bounds"));
            }
        }
        Ok(())
    })?;
    if let Some(weights) = &layout.weights {
        check_chunks(layout.edge_count, |range| {
            for i in range {
                let w = f64::from_bits(read_u64(bytes, weights, i));
                if !w.is_finite() {
                    return Err(GraphError::NonFiniteScalar {
                        what: "edge weights",
                        index: i,
                        value: w,
                    });
                }
            }
            Ok(())
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Owned (copying) decode — the portable path, also used by decode_binary_auto
// ---------------------------------------------------------------------------

fn decode_owned(bytes: &[u8]) -> Result<(CsrGraph, Option<Vec<f64>>)> {
    let layout = parse_v3(bytes)?;
    let half_edges = layout.edge_count * 2;
    let offsets =
        (0..=layout.vertex_count).map(|v| read_u64(bytes, &layout.offsets, v) as usize).collect();
    let targets = (0..half_edges).map(|i| VertexId(read_u32(bytes, &layout.targets, i))).collect();
    let edge_ids = (0..half_edges).map(|i| EdgeId(read_u32(bytes, &layout.edge_ids, i))).collect();
    let endpoints = (0..layout.edge_count)
        .map(|i| {
            [
                read_u32(bytes, &layout.endpoints, 2 * i),
                read_u32(bytes, &layout.endpoints, 2 * i + 1),
            ]
        })
        .collect();
    let graph = CsrGraph::from_raw_parts(offsets, targets, edge_ids, endpoints);
    // `parse_v3` validated everything linear; the owned decoder also runs the
    // full cross-linking check, keeping parity with the v2 rebuild guarantee.
    graph.check_invariants()?;
    let weights = layout.weights.map(|range| {
        (0..layout.edge_count).map(|i| f64::from_bits(read_u64(bytes, &range, i))).collect()
    });
    Ok((graph, weights))
}

/// Decode a v3 snapshot into an owned [`ParsedEdgeList`] — the copying
/// counterpart of [`MappedCsrGraph::open`], and the path
/// [`super::decode_binary_auto`] takes for version-3 blobs.
pub fn decode_binary_v3(bytes: &[u8]) -> Result<ParsedEdgeList> {
    let (graph, edge_weights) = decode_owned(bytes)?;
    Ok(ParsedEdgeList { graph, edge_weights })
}

// ---------------------------------------------------------------------------
// MappedCsrGraph
// ---------------------------------------------------------------------------

/// Zero-copy reinterpretation of validated section bytes. Only compiled where
/// the in-memory representation matches the file format (little-endian,
/// 64-bit); [`ZERO_COPY_SUPPORTED`] gates every caller.
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
mod reinterpret {
    use crate::ids::{EdgeId, VertexId};

    fn check(bytes: &[u8], elem: usize) {
        debug_assert_eq!(bytes.len() % elem, 0);
        debug_assert_eq!(bytes.as_ptr() as usize % elem, 0, "section payload misaligned");
    }

    /// SAFETY (all four): the caller hands in a validated section payload —
    /// length checked against the header counts and start 8-byte aligned (the
    /// format places payloads on 8-byte file offsets inside an 8-byte-aligned
    /// buffer). Every target type is `#[repr(transparent)]` over `u32`, a
    /// plain `[u32; 2]`, or a primitive, and every bit pattern is a valid
    /// value, so reinterpreting read-only bytes is sound.
    pub fn usizes(bytes: &[u8]) -> &[usize] {
        check(bytes, 8);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const usize, bytes.len() / 8) }
    }

    pub fn vertex_ids(bytes: &[u8]) -> &[VertexId] {
        check(bytes, 4);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const VertexId, bytes.len() / 4) }
    }

    pub fn edge_ids(bytes: &[u8]) -> &[EdgeId] {
        check(bytes, 4);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const EdgeId, bytes.len() / 4) }
    }

    pub fn pairs(bytes: &[u8]) -> &[[u32; 2]] {
        check(bytes, 8);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const [u32; 2], bytes.len() / 8) }
    }

    pub fn floats(bytes: &[u8]) -> &[f64] {
        check(bytes, 8);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) }
    }
}

/// Carry state of the fused verify-and-validate sweep ([`verify_open`]):
/// per-array reductions that can consume a section in contiguous,
/// file-order portions, so structural validation runs on bytes the checksum
/// pass just pulled into cache.
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
struct SweepState {
    offsets_monotone: bool,
    offsets_prev: usize,
    target_max: u32,
    /// Non-increasing adjacent target pairs seen so far. Strict per-block
    /// sortedness is settled at the end by subtracting the violations that
    /// sit exactly on block boundaries (where order legitimately resets).
    target_violations: usize,
    target_prev: u32,
    target_seen: bool,
    edge_id_max: u32,
    endpoints_ok: bool,
    weights_finite: bool,
}

#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
impl SweepState {
    fn new() -> SweepState {
        SweepState {
            offsets_monotone: true,
            offsets_prev: 0,
            target_max: 0,
            target_violations: 0,
            target_prev: 0,
            target_seen: false,
            edge_id_max: 0,
            endpoints_ok: true,
            weights_finite: true,
        }
    }

    /// Fold the portions of every section that intersect `window` into the
    /// reductions. Windows arrive in ascending file order, so each array's
    /// portions arrive in element order and the cross-portion carries
    /// (`offsets_prev`, `target_prev`) stay exact.
    fn consume(&mut self, bytes: &[u8], layout: &V3Layout, window: &Range<usize>) {
        // Both section payloads and window edges sit on 8-byte file offsets,
        // so every portion keeps the alignment reinterpretation needs and
        // never splits an element.
        let portion =
            |section: &Range<usize>| section.start.max(window.start)..section.end.min(window.end);
        let offsets = portion(&layout.offsets);
        if !offsets.is_empty() {
            let part = reinterpret::usizes(&bytes[offsets]);
            self.offsets_monotone &= part[0] >= self.offsets_prev;
            for pair in part.windows(2) {
                self.offsets_monotone &= pair[1] >= pair[0];
            }
            self.offsets_prev = part[part.len() - 1];
        }
        let targets = portion(&layout.targets);
        if !targets.is_empty() {
            let part = reinterpret::vertex_ids(&bytes[targets]);
            if self.target_seen {
                self.target_violations += (part[0].0 <= self.target_prev) as usize;
            }
            let mut max = self.target_max.max(part[0].0);
            let mut violations = 0usize;
            for i in 1..part.len() {
                let t = part[i].0;
                max = max.max(t);
                violations += (t <= part[i - 1].0) as usize;
            }
            self.target_max = max;
            self.target_violations += violations;
            self.target_prev = part[part.len() - 1].0;
            self.target_seen = true;
        }
        let edge_ids = portion(&layout.edge_ids);
        if !edge_ids.is_empty() {
            let part = reinterpret::edge_ids(&bytes[edge_ids]);
            let mut max = self.edge_id_max;
            for e in part {
                max = max.max(e.0);
            }
            self.edge_id_max = max;
        }
        let endpoints = portion(&layout.endpoints);
        if !endpoints.is_empty() {
            let part = reinterpret::pairs(&bytes[endpoints]);
            let mut ok = true;
            for &[u, v] in part {
                ok &= u < v;
                ok &= (v as usize) < layout.vertex_count;
            }
            self.endpoints_ok &= ok;
        }
        if let Some(weights) = &layout.weights {
            let weights = portion(weights);
            if !weights.is_empty() {
                let part = reinterpret::floats(&bytes[weights]);
                let mut finite = true;
                for w in part {
                    finite &= w.is_finite();
                }
                self.weights_finite &= finite;
            }
        }
    }

    /// Settle the reductions into a verdict. `true` means every structural
    /// property [`validate_arrays`] checks holds.
    fn valid(&self, bytes: &[u8], layout: &V3Layout) -> bool {
        let half_edges = layout.edge_count * 2;
        let offsets = reinterpret::usizes(&bytes[layout.offsets.clone()]);
        let targets = reinterpret::vertex_ids(&bytes[layout.targets.clone()]);
        if offsets[0] != 0 || offsets[layout.vertex_count] != half_edges || !self.offsets_monotone {
            return false;
        }
        if half_edges > 0
            && (self.target_max as usize >= layout.vertex_count
                || self.edge_id_max as usize >= layout.edge_count)
        {
            return false;
        }
        if !self.endpoints_ok || !self.weights_finite {
            return false;
        }
        // Strict sortedness inside every adjacency block: every counted
        // violation must sit on a distinct block boundary. (Offsets are
        // already known monotone and capped by `half_edges` here, so the
        // `targets` indexing below cannot go out of bounds.)
        let mut boundary_violations = 0usize;
        let mut prev_boundary = 0usize;
        for &boundary in offsets.get(1..layout.vertex_count).unwrap_or(&[]) {
            if boundary != prev_boundary && boundary < half_edges {
                boundary_violations += (targets[boundary] <= targets[boundary - 1]) as usize;
            }
            prev_boundary = boundary;
        }
        self.target_violations == boundary_violations
    }
}

/// The zero-copy open path's single pass over the snapshot: digest a group of
/// checksum chunks, then immediately fold the section portions inside that
/// window into the structural reductions while the bytes are cache-hot —
/// instead of streaming the whole file once for the checksum and again for
/// validation. Reports a checksum mismatch first (matching [`parse_v3`]);
/// on a structural violation it re-runs the serial [`validate_arrays`], which
/// pinpoints the failure with the same deterministic error a serial-only
/// open would report.
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
fn verify_open(bytes: &[u8], layout: &V3Layout) -> Result<()> {
    use super::checksum::{combine, digest_range, CHECKSUM_CHUNK};
    // Digest x4-interleave width: 4 MiB of cache locality per window.
    const GROUP: usize = 4;
    let (body, _) = split_checksum(bytes)?;
    let chunk_count = body.len().div_ceil(CHECKSUM_CHUNK);
    let mut digests = vec![0u64; chunk_count];
    let mut state = SweepState::new();
    let mut chunk = 0usize;
    while chunk < chunk_count {
        let take = GROUP.min(chunk_count - chunk);
        digest_range(body, chunk, &mut digests[chunk..chunk + take]);
        let window = chunk * CHECKSUM_CHUNK..((chunk + take) * CHECKSUM_CHUNK).min(body.len());
        state.consume(bytes, layout, &window);
        chunk += take;
    }
    verify_checksum(bytes, combine(&digests))?;
    if state.valid(bytes, layout) {
        return Ok(());
    }
    // Serial rescan pinpoints the violation deterministically.
    validate_arrays(bytes, layout)?;
    Err(corrupt("snapshot failed structural validation"))
}

enum Repr {
    /// The CSR arrays live in the snapshot bytes; accessors reinterpret the
    /// validated section ranges in place.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    ZeroCopy { bytes: MappedBytes, layout: V3Layout },
    /// Owned arrays decoded from the snapshot — the portable fallback (and
    /// the only representation on big-endian or 32-bit targets).
    Owned { graph: CsrGraph, weights: Option<Vec<f64>> },
}

/// A [`GraphStorage`] backed by a binary v3 snapshot instead of owned `Vec`s.
///
/// On little-endian 64-bit targets the four CSR arrays are served straight
/// out of the (memory-mapped or heap-loaded) file bytes; elsewhere the
/// snapshot is decoded into owned arrays behind the same type. Either way the
/// storage is fully validated at open time and behaves identically to the
/// [`CsrGraph`] it was saved from — the determinism ledger holds bit-for-bit
/// across backends.
///
/// ```no_run
/// use ugraph::{GraphStorage, MappedCsrGraph};
///
/// let graph = MappedCsrGraph::open("snapshot.gtsb")?;
/// println!("{} vertices, {} edges", graph.vertex_count(), graph.edge_count());
/// # Ok::<(), ugraph::GraphError>(())
/// ```
pub struct MappedCsrGraph {
    repr: Repr,
    memory_mapped: bool,
}

impl MappedCsrGraph {
    /// Open a v3 snapshot by memory-mapping it read-only (falling back to an
    /// aligned heap read if mapping is unavailable). Validates the checksum
    /// and all structural invariants before returning.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedCsrGraph> {
        Self::from_mapped_bytes(MappedBytes::map_file(path.as_ref())?)
    }

    /// Open a v3 snapshot through the read-to-heap fallback, never mapping.
    /// Behaviorally identical to [`MappedCsrGraph::open`]; the bytes are a
    /// private RAM copy instead of a kernel mapping.
    pub fn open_heap(path: impl AsRef<Path>) -> Result<MappedCsrGraph> {
        Self::from_mapped_bytes(MappedBytes::read_file_to_heap(path.as_ref())?)
    }

    /// Open a v3 snapshot by decoding it into owned arrays — the portable
    /// path every platform supports (and the automatic representation where
    /// zero-copy reinterpretation is not).
    pub fn open_eager(path: impl AsRef<Path>) -> Result<MappedCsrGraph> {
        let bytes = std::fs::read(path.as_ref())?;
        let (graph, weights) = decode_owned(&bytes)?;
        Ok(MappedCsrGraph { repr: Repr::Owned { graph, weights }, memory_mapped: false })
    }

    /// Validate an in-memory snapshot and wrap it as a storage — used by
    /// tests and by callers that already hold the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<MappedCsrGraph> {
        Self::from_mapped_bytes(MappedBytes::from_bytes(bytes))
    }

    fn from_mapped_bytes(bytes: MappedBytes) -> Result<MappedCsrGraph> {
        let memory_mapped = bytes.is_memory_mapped();
        if ZERO_COPY_SUPPORTED {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            {
                let layout = parse_v3_layout(&bytes)?;
                verify_open(&bytes, &layout)?;
                return Ok(MappedCsrGraph {
                    repr: Repr::ZeroCopy { bytes, layout },
                    memory_mapped,
                });
            }
        }
        let (graph, weights) = decode_owned(&bytes)?;
        Ok(MappedCsrGraph { repr: Repr::Owned { graph, weights }, memory_mapped: false })
    }

    /// Whether the storage is served from a live kernel mapping (`false`:
    /// heap fallback or owned decode).
    pub fn is_memory_mapped(&self) -> bool {
        self.memory_mapped
    }

    /// Whether accessors reinterpret the snapshot bytes in place (`false`:
    /// the owned-decode representation).
    pub fn is_zero_copy(&self) -> bool {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { .. } => true,
            Repr::Owned { .. } => false,
        }
    }

    /// Per-edge weights stored in the snapshot, if any.
    pub fn edge_weights(&self) -> Option<&[f64]> {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { bytes, layout } => {
                layout.weights.as_ref().map(|r| reinterpret::floats(&bytes[r.clone()]))
            }
            Repr::Owned { weights, .. } => weights.as_deref(),
        }
    }
}

impl std::fmt::Debug for MappedCsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCsrGraph")
            .field("vertex_count", &self.vertex_count())
            .field("edge_count", &self.edge_count())
            .field("memory_mapped", &self.is_memory_mapped())
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

impl GraphStorage for MappedCsrGraph {
    #[inline]
    fn offsets(&self) -> &[usize] {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { bytes, layout } => reinterpret::usizes(&bytes[layout.offsets.clone()]),
            Repr::Owned { graph, .. } => graph.offsets(),
        }
    }

    #[inline]
    fn targets(&self) -> &[VertexId] {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { bytes, layout } => {
                reinterpret::vertex_ids(&bytes[layout.targets.clone()])
            }
            Repr::Owned { graph, .. } => graph.targets(),
        }
    }

    #[inline]
    fn edge_ids(&self) -> &[EdgeId] {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { bytes, layout } => {
                reinterpret::edge_ids(&bytes[layout.edge_ids.clone()])
            }
            Repr::Owned { graph, .. } => graph.edge_ids(),
        }
    }

    #[inline]
    fn endpoint_pairs(&self) -> &[[u32; 2]] {
        match &self.repr {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Repr::ZeroCopy { bytes, layout } => {
                reinterpret::pairs(&bytes[layout.endpoints.clone()])
            }
            Repr::Owned { graph, .. } => graph.endpoint_pairs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::rmat;

    fn sample_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5);
        b.add_edge(5, 9);
        b.add_edge(2, 3);
        b.ensure_vertex(12);
        b.build()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ugraph-v3-test-{}-{name}.gtsb", std::process::id()));
        p
    }

    #[test]
    fn v3_round_trips_through_owned_decode() {
        let g = sample_graph();
        let bytes = encode_binary_v3(&g, None).unwrap();
        assert!(bytes.starts_with(BINARY_V2_MAGIC));
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), BINARY_V3_VERSION);
        let decoded = decode_binary_v3(&bytes).unwrap();
        assert_eq!(decoded.graph, g);
        assert!(decoded.edge_weights.is_none());
    }

    #[test]
    fn v3_weights_round_trip_bit_exact() {
        let g = sample_graph();
        let weights = vec![0.1 + 0.2, -1.5, f64::MIN_POSITIVE];
        let bytes = encode_binary_v3(&g, Some(&weights)).unwrap();
        let decoded = decode_binary_v3(&bytes).unwrap();
        let round = decoded.edge_weights.unwrap();
        for (a, b) in weights.iter().zip(&round) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mapped = MappedCsrGraph::from_bytes(&bytes).unwrap();
        let mapped_weights = mapped.edge_weights().unwrap();
        for (a, b) in weights.iter().zip(mapped_weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn v3_rejects_invalid_weight_vectors_at_encode_time() {
        let g = sample_graph();
        assert!(matches!(
            encode_binary_v3(&g, Some(&[1.0])),
            Err(GraphError::LengthMismatch { .. })
        ));
        assert!(matches!(
            encode_binary_v3(&g, Some(&[1.0, f64::NAN, 2.0])),
            Err(GraphError::NonFiniteScalar { .. })
        ));
    }

    #[test]
    fn mapped_open_agrees_with_owned_graph() {
        let g = rmat(8, 600, 7);
        let path = temp_path("agree");
        write_binary_v3_file(&g, None, &path).unwrap();
        for mapped in [
            MappedCsrGraph::open(&path).unwrap(),
            MappedCsrGraph::open_heap(&path).unwrap(),
            MappedCsrGraph::open_eager(&path).unwrap(),
        ] {
            assert_eq!(mapped.vertex_count(), g.vertex_count());
            assert_eq!(mapped.edge_count(), g.edge_count());
            assert_eq!(mapped.offsets(), g.offsets());
            assert_eq!(mapped.targets(), g.targets());
            assert_eq!(mapped.edge_ids(), g.edge_ids());
            assert_eq!(mapped.endpoint_pairs(), g.endpoint_pairs());
            assert_eq!(mapped.to_csr_graph(), g);
            mapped.check_invariants().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_storage_is_shareable_across_threads() {
        let g = rmat(6, 120, 3);
        let bytes = encode_binary_v3(&g, None).unwrap();
        let mapped = MappedCsrGraph::from_bytes(&bytes).unwrap();
        let storage: &dyn GraphStorage = &mapped;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| scope.spawn(move || storage.edges().map(|e| e.id.index()).sum::<usize>()))
                .collect();
            let sums: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(sums[0], sums[1]);
        });
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let bytes = encode_binary_v3(&g, None).unwrap();
        let mapped = MappedCsrGraph::from_bytes(&bytes).unwrap();
        assert_eq!(mapped.vertex_count(), 0);
        assert_eq!(mapped.edge_count(), 0);
        assert_eq!(decode_binary_v3(&bytes).unwrap().graph, g);
    }

    #[test]
    fn corrupt_v3_snapshots_error_and_never_panic() {
        let g = sample_graph();
        let bytes = encode_binary_v3(&g, Some(&[1.0, 2.0, 3.0])).unwrap();
        // Every truncation prefix.
        for cut in 0..bytes.len() {
            assert!(decode_binary_v3(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
            assert!(
                MappedCsrGraph::from_bytes(&bytes[..cut]).is_err(),
                "mapped prefix of {cut} bytes accepted"
            );
        }
        // Any flipped bit trips the checksum or a structural check.
        for byte in [0, 4, 8, 12, 24, 40, bytes.len() - 9, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 0x10;
            assert!(decode_binary_v3(&corrupted).is_err(), "flip at byte {byte} accepted");
            assert!(
                MappedCsrGraph::from_bytes(&corrupted).is_err(),
                "mapped flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn structurally_broken_but_checksummed_snapshots_are_rejected() {
        let g = sample_graph();
        // Corrupt one payload byte, then re-stamp the checksum so only the
        // structural validation stands between the bytes and the accessors.
        let clean = encode_binary_v3(&g, None).unwrap();
        // offsets payload starts at 8 (magic+version) + 16 (header section
        // header) + 16 (header payload) + 16 (offsets section header) = 56.
        let mut broken = clean.clone();
        broken[56] = 0xff; // offsets[0] != 0
        restamp(&mut broken);
        let err = MappedCsrGraph::from_bytes(&broken).unwrap_err();
        assert!(matches!(err, GraphError::BrokenInvariant { .. }), "{err}");

        // A section length that disagrees with the header counts.
        let mut broken = clean.clone();
        let offsets_len_at = 56 - 8;
        broken[offsets_len_at] = broken[offsets_len_at].wrapping_add(4); // misaligned length
        restamp(&mut broken);
        assert!(MappedCsrGraph::from_bytes(&broken).is_err());

        // Non-finite weight.
        let with_weights = encode_binary_v3(&g, Some(&[1.0, 2.0, 3.0])).unwrap();
        let weights_payload = with_weights.len() - 8 - 3 * 8;
        let mut broken = with_weights.clone();
        broken[weights_payload..weights_payload + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        restamp(&mut broken);
        assert!(matches!(
            MappedCsrGraph::from_bytes(&broken).unwrap_err(),
            GraphError::NonFiniteScalar { .. }
        ));
    }

    fn restamp(bytes: &mut [u8]) {
        let body = bytes.len() - 8;
        let checksum = chunked_checksum(&bytes[..body]).to_le_bytes();
        bytes[body..].copy_from_slice(&checksum);
    }

    #[test]
    fn v2_snapshots_are_not_v3() {
        let g = sample_graph();
        let v2 = super::super::encode_binary_v2(&g, None).unwrap();
        let err = decode_binary_v3(&v2).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        assert!(MappedCsrGraph::from_bytes(&v2).is_err());
    }
}
