//! Binary graph snapshots.
//!
//! Two generations coexist:
//!
//! * **v1** ([`encode_binary`] / [`decode_binary`]) — the seed-era format:
//!   `u32` vertex count, `u32` edge count, then `u32` endpoint pairs, all
//!   little-endian, with no magic, no version and no integrity check. Kept so
//!   existing blobs stay readable.
//! * **v2** ([`encode_binary_v2`] / [`decode_binary_v2`]) — the versioned
//!   snapshot: an ASCII magic ([`BINARY_V2_MAGIC`]), a `u32` version, a
//!   sequence of length-prefixed sections (header, edges, optional per-edge
//!   weights; unknown section tags are skipped for forward compatibility)
//!   and a trailing FNV-1a 64-bit checksum over everything before it.
//!
//! [`decode_binary_auto`] sniffs the magic and dispatches, so callers (and
//! [`GraphSource`](super::GraphSource)) never need to know which generation
//! wrote a blob. Every corruption — truncation, a wrong magic, an unsupported
//! version, a flipped bit — is a [`GraphError::Parse`], never a panic.

use super::ParsedEdgeList;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes opening every v2 snapshot ("Graph Terrain Snapshot Binary").
pub const BINARY_V2_MAGIC: &[u8; 4] = b"GTSB";

const BINARY_VERSION: u32 = 2;

const SECTION_HEADER: u8 = 1;
const SECTION_EDGES: u8 = 2;
const SECTION_WEIGHTS: u8 = 3;

pub(crate) fn corrupt(message: impl Into<String>) -> GraphError {
    GraphError::Parse { line: 0, message: message.into() }
}

/// FNV-1a 64-bit over `bytes` — the integrity check of the v2 and v3
/// snapshots. Deliberately simple and dependency-free; it guards against
/// truncation and bit rot, not adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// v1 (legacy)
// ---------------------------------------------------------------------------

/// Encode a graph into the legacy v1 binary buffer: `u32` vertex count, `u32`
/// edge count, then `u32` endpoint pairs. Prefer [`encode_binary_v2`] for new
/// snapshots — v1 has no magic, no version and no checksum.
pub fn encode_binary(graph: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + graph.edge_count() * 8);
    buf.put_u32_le(graph.vertex_count() as u32);
    buf.put_u32_le(graph.edge_count() as u32);
    for e in graph.edges() {
        buf.put_u32_le(e.u.0);
        buf.put_u32_le(e.v.0);
    }
    buf.freeze()
}

/// Decode a graph from the legacy v1 encoding produced by [`encode_binary`].
/// Kept for pre-v2 blobs; [`decode_binary_auto`] dispatches here when the v2
/// magic is absent.
pub fn decode_binary(mut bytes: Bytes) -> Result<CsrGraph> {
    if bytes.remaining() < 8 {
        return Err(corrupt("binary header truncated"));
    }
    let vertex_count = bytes.get_u32_le() as usize;
    let edge_count = bytes.get_u32_le() as usize;
    if bytes.remaining() < edge_count * 8 {
        return Err(corrupt("binary edge data truncated"));
    }
    let mut builder = GraphBuilder::with_capacity(edge_count);
    if vertex_count > 0 {
        builder.ensure_vertex(vertex_count - 1);
    }
    for _ in 0..edge_count {
        let u = bytes.get_u32_le();
        let v = bytes.get_u32_le();
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

// ---------------------------------------------------------------------------
// v2
// ---------------------------------------------------------------------------

/// Encode a graph (and optionally one weight per edge) as a v2 snapshot:
///
/// ```text
/// "GTSB"  version:u32  { tag:u8  len:u64  payload[len] }*  checksum:u64
/// ```
///
/// All integers are little-endian. The header section carries the vertex and
/// edge counts, the edge section the `u32` endpoint pairs, the optional
/// weight section one `f64` per edge (validated finite and length-matched up
/// front). The checksum is FNV-1a 64 over every preceding byte.
pub fn encode_binary_v2(graph: &CsrGraph, weights: Option<&[f64]>) -> Result<Vec<u8>> {
    if let Some(weights) = weights {
        if weights.len() != graph.edge_count() {
            return Err(GraphError::LengthMismatch {
                what: "edge weights",
                expected: graph.edge_count(),
                actual: weights.len(),
            });
        }
        if let Some(index) = weights.iter().position(|w| !w.is_finite()) {
            return Err(GraphError::NonFiniteScalar {
                what: "edge weights",
                index,
                value: weights[index],
            });
        }
    }

    let mut out = Vec::with_capacity(4 + 4 + (1 + 8 + 16) + (1 + 8 + graph.edge_count() * 8) + 8);
    out.extend_from_slice(BINARY_V2_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());

    let section = |out: &mut Vec<u8>, tag: u8, payload: &[u8]| {
        out.push(tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    };

    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&(graph.vertex_count() as u64).to_le_bytes());
    header.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    section(&mut out, SECTION_HEADER, &header);

    let mut edges = Vec::with_capacity(graph.edge_count() * 8);
    for e in graph.edges() {
        edges.extend_from_slice(&e.u.0.to_le_bytes());
        edges.extend_from_slice(&e.v.0.to_le_bytes());
    }
    section(&mut out, SECTION_EDGES, &edges);

    if let Some(weights) = weights {
        let mut payload = Vec::with_capacity(weights.len() * 8);
        for w in weights {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        section(&mut out, SECTION_WEIGHTS, &payload);
    }

    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Decode a v2 snapshot produced by [`encode_binary_v2`].
///
/// The checksum is verified before any section is interpreted; a wrong magic,
/// an unsupported version, a truncated buffer or a corrupted byte all return
/// [`GraphError::Parse`]. Sections with unknown tags are skipped, so future
/// writers may append new sections without breaking this reader.
pub fn decode_binary_v2(bytes: &[u8]) -> Result<ParsedEdgeList> {
    if bytes.len() < BINARY_V2_MAGIC.len() + 4 + 8 {
        return Err(corrupt("binary snapshot truncated: shorter than magic + version + checksum"));
    }
    if &bytes[..4] != BINARY_V2_MAGIC {
        return Err(corrupt(format!(
            "bad magic {:02x?}: not a graph-terrain binary snapshot",
            &bytes[..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != BINARY_VERSION {
        return Err(corrupt(format!(
            "unsupported binary snapshot version {version} (this reader supports {BINARY_VERSION})"
        )));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x} — snapshot corrupt"
        )));
    }

    let mut cursor = &body[8..];
    let mut counts: Option<(usize, usize)> = None;
    let mut edges: Option<Vec<(u32, u32)>> = None;
    let mut weights: Option<Vec<f64>> = None;
    while !cursor.is_empty() {
        if cursor.len() < 9 {
            return Err(corrupt("section header truncated"));
        }
        let tag = cursor[0];
        let len = u64::from_le_bytes(cursor[1..9].try_into().expect("8 bytes")) as usize;
        cursor = &cursor[9..];
        if cursor.len() < len {
            return Err(corrupt(format!(
                "section {tag} truncated: declares {len} bytes, {} remain",
                cursor.len()
            )));
        }
        let (payload, rest) = cursor.split_at(len);
        cursor = rest;
        match tag {
            SECTION_HEADER => {
                if payload.len() != 16 {
                    return Err(corrupt(format!(
                        "header section has {} bytes, expected 16",
                        payload.len()
                    )));
                }
                let v = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                let e = u64::from_le_bytes(payload[8..].try_into().expect("8 bytes"));
                counts = Some((v as usize, e as usize));
            }
            SECTION_EDGES => {
                if payload.len() % 8 != 0 {
                    return Err(corrupt(format!(
                        "edge section length {} is not a multiple of 8",
                        payload.len()
                    )));
                }
                edges = Some(
                    payload
                        .chunks_exact(8)
                        .map(|pair| {
                            (
                                u32::from_le_bytes(pair[..4].try_into().expect("4 bytes")),
                                u32::from_le_bytes(pair[4..].try_into().expect("4 bytes")),
                            )
                        })
                        .collect(),
                );
            }
            SECTION_WEIGHTS => {
                if payload.len() % 8 != 0 {
                    return Err(corrupt(format!(
                        "weight section length {} is not a multiple of 8",
                        payload.len()
                    )));
                }
                weights = Some(
                    payload
                        .chunks_exact(8)
                        .map(|w| f64::from_le_bytes(w.try_into().expect("8 bytes")))
                        .collect(),
                );
            }
            // Unknown section: skip (forward compatibility).
            _ => {}
        }
    }

    let (vertex_count, edge_count) =
        counts.ok_or_else(|| corrupt("snapshot has no header section"))?;
    let edges = edges.ok_or_else(|| corrupt("snapshot has no edge section"))?;
    if edges.len() != edge_count {
        return Err(corrupt(format!(
            "header declares {edge_count} edges but the edge section holds {}",
            edges.len()
        )));
    }
    if let Some(w) = &weights {
        if w.len() != edge_count {
            return Err(corrupt(format!(
                "weight section holds {} weights for {edge_count} edges",
                w.len()
            )));
        }
        if let Some(bad) = w.iter().find(|w| !w.is_finite()) {
            return Err(corrupt(format!("snapshot carries non-finite edge weight {bad}")));
        }
    }

    let mut builder = GraphBuilder::with_capacity(edge_count);
    if vertex_count > 0 {
        builder.ensure_vertex((vertex_count - 1) as u32);
    }
    for &(u, v) in &edges {
        builder.add_edge(u, v);
    }
    let graph = builder.build();
    // The writer serializes canonical edges, so counts survive the rebuild;
    // a mismatch means the blob was hand-built with duplicates or loops.
    if graph.edge_count() != edge_count {
        return Err(corrupt(format!(
            "edge section collapses to {} canonical edges, header declares {edge_count}",
            graph.edge_count()
        )));
    }
    Ok(ParsedEdgeList { graph, edge_weights: weights })
}

/// Decode any binary generation: dispatches on the shared magic and the
/// version stamp behind it (2 → the edge-list snapshot, 3 → the zero-copy
/// CSR snapshot), falling back to the legacy v1 layout when the magic is
/// absent (v1, having no magic, cannot be told apart from corruption any
/// better than v1 itself allowed).
pub fn decode_binary_auto(bytes: &[u8]) -> Result<ParsedEdgeList> {
    if bytes.starts_with(BINARY_V2_MAGIC) {
        match bytes.get(4..8).map(|v| u32::from_le_bytes(v.try_into().expect("4 bytes"))) {
            Some(BINARY_VERSION) => decode_binary_v2(bytes),
            Some(super::v3::BINARY_V3_VERSION) => super::v3::decode_binary_v3(bytes),
            Some(version) => Err(corrupt(format!(
                "unsupported binary snapshot version {version} (this reader supports 2 and 3)"
            ))),
            None => Err(corrupt("binary snapshot truncated inside the version stamp")),
        }
    } else {
        let graph = decode_binary(Bytes::from(bytes.to_vec()))?;
        Ok(ParsedEdgeList { graph, edge_weights: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5);
        b.add_edge(5, 9);
        b.add_edge(2, 3);
        b.ensure_vertex(12);
        b.build()
    }

    #[test]
    fn v1_round_trip() {
        let g = sample_graph();
        let bytes = encode_binary(&g);
        let decoded = decode_binary(bytes).unwrap();
        assert_eq!(decoded, g);
    }

    #[test]
    fn v1_rejects_truncated_input() {
        assert!(decode_binary(Bytes::from_static(&[1, 2, 3])).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_u32_le(5); // claims 5 edges but provides none
        assert!(decode_binary(buf.freeze()).is_err());
    }

    #[test]
    fn v2_round_trip_without_weights() {
        let g = sample_graph();
        let bytes = encode_binary_v2(&g, None).unwrap();
        assert!(bytes.starts_with(BINARY_V2_MAGIC));
        let decoded = decode_binary_v2(&bytes).unwrap();
        assert_eq!(decoded.graph, g);
        assert!(decoded.edge_weights.is_none());
    }

    #[test]
    fn v2_round_trip_with_weights_is_bit_exact() {
        let g = sample_graph();
        let weights = vec![0.1 + 0.2, -1.5, f64::MIN_POSITIVE];
        let bytes = encode_binary_v2(&g, Some(&weights)).unwrap();
        let decoded = decode_binary_v2(&bytes).unwrap();
        assert_eq!(decoded.graph, g);
        let round = decoded.edge_weights.unwrap();
        for (a, b) in weights.iter().zip(&round) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn v2_rejects_invalid_weight_vectors_at_encode_time() {
        let g = sample_graph();
        assert!(matches!(
            encode_binary_v2(&g, Some(&[1.0])),
            Err(GraphError::LengthMismatch { .. })
        ));
        assert!(matches!(
            encode_binary_v2(&g, Some(&[1.0, f64::NAN, 2.0])),
            Err(GraphError::NonFiniteScalar { .. })
        ));
    }

    #[test]
    fn v2_rejects_bad_magic_and_version() {
        let g = sample_graph();
        let mut bytes = encode_binary_v2(&g, None).unwrap();
        let err = decode_binary_v2(b"NOPE....longer than the minimum length....").unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // Wrong version (checksum re-stamped so the version check is what
        // fires, not the integrity check).
        bytes[4] = 9;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&checksum);
        let err = decode_binary_v2(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported binary snapshot version 9"), "{err}");
    }

    #[test]
    fn v2_rejects_truncation_and_corruption_everywhere() {
        let g = sample_graph();
        let bytes = encode_binary_v2(&g, Some(&[1.0, 2.0, 3.0])).unwrap();
        // Every prefix short of the full snapshot must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_binary_v2(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        // Any single flipped bit past the magic trips the checksum (or a
        // structural check) — again an error, never a panic.
        for byte in [4, 8, 9, 17, bytes.len() - 9, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[byte] ^= 0x40;
            assert!(decode_binary_v2(&corrupted).is_err(), "flip at byte {byte} accepted");
        }
    }

    #[test]
    fn v2_skips_unknown_sections() {
        let g = sample_graph();
        let mut bytes = encode_binary_v2(&g, None).unwrap();
        // Splice an unknown section (tag 99, 3 payload bytes) before the
        // checksum and re-stamp it.
        bytes.truncate(bytes.len() - 8);
        bytes.push(99);
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let decoded = decode_binary_v2(&bytes).unwrap();
        assert_eq!(decoded.graph, g);
    }

    #[test]
    fn auto_dispatches_on_magic() {
        let g = sample_graph();
        let v1 = encode_binary(&g);
        let from_v1 = decode_binary_auto(v1.as_ref()).unwrap();
        assert_eq!(from_v1.graph, g);
        assert!(from_v1.edge_weights.is_none());
        let v2 = encode_binary_v2(&g, Some(&[1.0, 2.0, 3.0])).unwrap();
        let from_v2 = decode_binary_auto(&v2).unwrap();
        assert_eq!(from_v2.graph, g);
        assert_eq!(from_v2.edge_weights.as_deref(), Some(&[1.0, 2.0, 3.0][..]));
    }
}
