//! Ingest formats: the [`GraphFormat`] enum, format detection, and the
//! streaming CSV / METIS / JSON adjacency readers.
//!
//! Every reader is line-oriented — input is consumed through [`BufRead`] one
//! line at a time, never materialized whole — and reports malformed input as
//! [`GraphError::Parse`] with the 1-based line number. The weight rules are
//! shared with [`read_edge_list`](super::read_edge_list) through
//! [`EdgeAccumulator`](super::EdgeAccumulator): all-or-nothing weight
//! columns, finite weights only, last-wins duplicates, dropped self loops.

use super::{is_comment_or_blank, parse_field, parse_weight, EdgeAccumulator, ParsedEdgeList};
use crate::error::{GraphError, Result};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// The ingest formats [`GraphSource`](super::GraphSource) understands.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GraphFormat {
    /// Whitespace-separated `u v [w]` lines (SNAP-style edge lists).
    EdgeList,
    /// Comma-separated `u,v[,w]` rows under a mandatory header row.
    Csv,
    /// METIS adjacency: an `n m [fmt]` header, then one neighbor line per
    /// vertex (1-based ids; `fmt` ending in `1` adds per-edge weights).
    Metis,
    /// JSON adjacency: one `{"id": u, "adj": [..]}` object per line
    /// (optionally with a parallel `"w": [..]` weight array), with pure
    /// `[` / `]` / `,` framing lines ignored so a pretty-printed JSON array
    /// of records parses too.
    JsonAdjacency,
    /// Binary snapshot — v2 ([`encode_binary_v2`](super::encode_binary_v2))
    /// or the legacy v1 blob, told apart by the magic.
    Binary,
}

impl GraphFormat {
    /// All formats, in the order of the format matrix in ARCHITECTURE.md.
    /// Returns a slice so adding a format never changes the signature
    /// callers (error messages, CLI help, smoke tests) are built against.
    pub fn all() -> &'static [GraphFormat] {
        &[
            GraphFormat::EdgeList,
            GraphFormat::Csv,
            GraphFormat::Metis,
            GraphFormat::JsonAdjacency,
            GraphFormat::Binary,
        ]
    }

    /// Canonical lowercase name (what `--input-format` flags accept).
    pub fn name(&self) -> &'static str {
        match self {
            GraphFormat::EdgeList => "edgelist",
            GraphFormat::Csv => "csv",
            GraphFormat::Metis => "metis",
            GraphFormat::JsonAdjacency => "json",
            GraphFormat::Binary => "binary",
        }
    }

    /// Parse a format name (as accepted by `--input-format` flags).
    /// Recognizes the canonical names plus common aliases.
    pub fn from_name(name: &str) -> Option<GraphFormat> {
        match name.to_ascii_lowercase().as_str() {
            "edgelist" | "edge-list" | "el" | "txt" | "snap" => Some(GraphFormat::EdgeList),
            "csv" => Some(GraphFormat::Csv),
            "metis" | "graph" => Some(GraphFormat::Metis),
            "json" | "jsonl" | "json-adjacency" => Some(GraphFormat::JsonAdjacency),
            "binary" | "bin" | "gtsb" => Some(GraphFormat::Binary),
            _ => None,
        }
    }

    /// Infer a format from a file extension, if the extension is telling.
    pub fn from_extension(path: &Path) -> Option<GraphFormat> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "txt" | "edges" | "el" | "tsv" | "snap" => Some(GraphFormat::EdgeList),
            "csv" => Some(GraphFormat::Csv),
            "metis" | "graph" => Some(GraphFormat::Metis),
            "json" | "jsonl" => Some(GraphFormat::JsonAdjacency),
            "bin" | "gtsb" => Some(GraphFormat::Binary),
            _ => None,
        }
    }

    /// Sniff a format from the first bytes of the input.
    ///
    /// The rules, in order: the v2 magic (or any non-UTF-8 / NUL byte) means
    /// [`Binary`](GraphFormat::Binary); a first non-whitespace `{` or `[`
    /// means [`JsonAdjacency`](GraphFormat::JsonAdjacency); a comma in the
    /// first data line means [`Csv`](GraphFormat::Csv); everything else is an
    /// [`EdgeList`](GraphFormat::EdgeList). METIS is **not** sniffable — its
    /// `n m` header is indistinguishable from an edge-list line — so it must
    /// be chosen by extension (`.graph` / `.metis`) or explicitly.
    pub fn sniff(prefix: &[u8]) -> GraphFormat {
        if prefix.starts_with(super::BINARY_V2_MAGIC) {
            return GraphFormat::Binary;
        }
        // Text formats are ASCII-ish line protocols; embedded NULs or invalid
        // UTF-8 in the probe window mean a binary payload (e.g. a v1 blob).
        let text = match std::str::from_utf8(prefix) {
            Ok(text) => text,
            // A multi-byte code point cut at the window edge is still text.
            Err(e) if e.error_len().is_none() => {
                std::str::from_utf8(&prefix[..e.valid_up_to()]).expect("validated prefix")
            }
            Err(_) => return GraphFormat::Binary,
        };
        if text.bytes().any(|b| b == 0) {
            return GraphFormat::Binary;
        }
        match text.trim_start().bytes().next() {
            Some(b'{') | Some(b'[') => GraphFormat::JsonAdjacency,
            _ => {
                let first_data_line =
                    text.lines().map(str::trim).find(|line| !is_comment_or_blank(line));
                match first_data_line {
                    Some(line) if line.contains(',') => GraphFormat::Csv,
                    _ => GraphFormat::EdgeList,
                }
            }
        }
    }
}

impl fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse { line, message: message.into() }
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Read a CSV edge list with a mandatory header row.
///
/// The header must have two (`source,target`) or three
/// (`source,target,weight`) columns — names are free-form, the *arity*
/// decides whether the file is weighted, so a weighted header with missing
/// weights (or vice versa) fails on the offending row. Blank lines and `#` /
/// `%` comments are skipped; fields are trimmed, so `0, 1, 2.5` parses.
/// A numeric first row is rejected loudly: it means the header is missing.
pub fn read_csv<R: BufRead>(reader: R) -> Result<ParsedEdgeList> {
    let mut acc = EdgeAccumulator::new();
    let mut columns: Option<usize> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if is_comment_or_blank(trimmed) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        match columns {
            None => {
                if !(2..=3).contains(&fields.len()) {
                    return Err(parse_err(
                        lineno,
                        format!("CSV header must have 2 or 3 columns, found {}", fields.len()),
                    ));
                }
                if fields[0].parse::<f64>().is_ok() {
                    return Err(parse_err(
                        lineno,
                        "CSV input must start with a header row (first row is numeric)",
                    ));
                }
                columns = Some(fields.len());
            }
            Some(arity) => {
                if fields.len() != arity {
                    return Err(parse_err(
                        lineno,
                        format!("expected {arity} comma-separated fields, found {}", fields.len()),
                    ));
                }
                let u = parse_field(Some(fields[0]), lineno, "source vertex")?;
                let v = parse_field(Some(fields[1]), lineno, "target vertex")?;
                let weight = fields.get(2).map(|raw| parse_weight(raw, lineno)).transpose()?;
                acc.edge(lineno, u, v, weight)?;
            }
        }
    }
    if columns.is_none() {
        return Err(parse_err(0, "CSV input has no header row"));
    }
    acc.finish()
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

/// Read a METIS adjacency file.
///
/// The header line is `n m` or `n m fmt`: `n` vertices, `m` undirected edges,
/// and an optional format code whose **last** digit set to `1` announces
/// per-edge weights (neighbor lines then hold `neighbor weight` pairs).
/// Vertex weights/sizes (any other non-zero `fmt` digit) are not supported
/// and rejected. After the header come exactly `n` data lines; the `i`-th
/// lists the (1-based) neighbors of vertex `i` — a *blank* line is a vertex
/// with no neighbors, so only `%` / `#` comment lines are skipped. Every edge
/// appears in both endpoints' lines, which is validated against `2·m` total
/// mentions; the ids are shifted down so the parsed graph is 0-based like
/// every other reader.
pub fn read_metis<R: BufRead>(reader: R) -> Result<ParsedEdgeList> {
    let mut acc = EdgeAccumulator::new();
    let mut header: Option<(usize, bool)> = None; // (n, edge_weighted)
    let mut declared_edges = 0usize;
    let mut vertex = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        // METIS comments are `%`; accept `#` too for symmetry with the rest
        // of the boundary. A comment line does NOT count as a vertex line —
        // but an empty line after the header does (an isolated vertex).
        if trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let Some((n, weighted)) = header else {
            if trimmed.is_empty() {
                continue;
            }
            if !(2..=4).contains(&tokens.len()) {
                return Err(parse_err(
                    lineno,
                    format!("METIS header must be `n m [fmt]`, found {} fields", tokens.len()),
                ));
            }
            let n: usize = tokens[0].parse().map_err(|_| {
                parse_err(lineno, format!("invalid METIS vertex count `{}`", tokens[0]))
            })?;
            let m: usize = tokens[1].parse().map_err(|_| {
                parse_err(lineno, format!("invalid METIS edge count `{}`", tokens[1]))
            })?;
            let weighted = match tokens.get(2) {
                None => false,
                Some(fmt) => {
                    if fmt.is_empty() || fmt.bytes().any(|b| !b.is_ascii_digit()) {
                        return Err(parse_err(
                            lineno,
                            format!("invalid METIS format code `{fmt}`"),
                        ));
                    }
                    // fmt digits, right to left: edge weights, vertex
                    // weights, vertex sizes. Only edge weights are supported.
                    if fmt.bytes().rev().skip(1).any(|b| b != b'0') {
                        return Err(parse_err(
                            lineno,
                            format!(
                                "METIS format code `{fmt}` requests vertex weights/sizes, \
                                 which this reader does not support"
                            ),
                        ));
                    }
                    fmt.bytes().last() == Some(b'1')
                }
            };
            if n > 0 {
                acc.ensure_vertex((n - 1) as u32);
            }
            declared_edges = m;
            header = Some((n, weighted));
            continue;
        };

        vertex += 1;
        if vertex > n {
            return Err(parse_err(
                lineno,
                format!("more than the {n} vertex lines declared by the header"),
            ));
        }
        let u = (vertex - 1) as u32;
        let step = if weighted { 2 } else { 1 };
        if weighted && tokens.len() % 2 != 0 {
            return Err(parse_err(
                lineno,
                "edge-weighted METIS line must hold `neighbor weight` pairs",
            ));
        }
        for pair in tokens.chunks(step) {
            let neighbor: usize = pair[0].parse().map_err(|_| {
                parse_err(lineno, format!("invalid METIS neighbor id `{}`", pair[0]))
            })?;
            if neighbor < 1 || neighbor > n {
                return Err(parse_err(
                    lineno,
                    format!("METIS neighbor id {neighbor} out of range 1..={n}"),
                ));
            }
            let v = (neighbor - 1) as u32;
            let weight = pair.get(1).map(|raw| parse_weight(raw, lineno)).transpose()?;
            acc.edge(lineno, u, v, weight)?;
        }
    }

    let Some((n, _)) = header else {
        return Err(parse_err(0, "METIS input has no header line"));
    };
    if vertex != n {
        return Err(parse_err(
            0,
            format!("METIS header declares {n} vertices but the file has {vertex} vertex lines"),
        ));
    }
    if acc.mention_count() != 2 * declared_edges {
        return Err(parse_err(
            0,
            format!(
                "METIS header declares {declared_edges} edges ({} adjacency mentions) but the \
                 file holds {}",
                2 * declared_edges,
                acc.mention_count()
            ),
        ));
    }
    acc.finish()
}

// ---------------------------------------------------------------------------
// JSON adjacency
// ---------------------------------------------------------------------------

/// Read a line-oriented JSON adjacency file.
///
/// Each data line is one vertex record `{"id": u, "adj": [v, ...]}`, with an
/// optional `"w": [weight, ...]` array parallel to `"adj"`. Lines holding
/// only `[`, `]` or `,` are framing and skipped, and a trailing comma after a
/// record is tolerated — so both JSON-lines dumps and a pretty-printed JSON
/// array with one record per line parse. The first record decides whether the
/// file is weighted; later records must agree. A record with an empty `"adj"`
/// still reserves its vertex.
pub fn read_json_adjacency<R: BufRead>(reader: R) -> Result<ParsedEdgeList> {
    let mut acc = EdgeAccumulator::new();
    let mut saw_record = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if is_comment_or_blank(trimmed) || matches!(trimmed, "[" | "]" | ",") {
            continue;
        }
        let record = trimmed.strip_suffix(',').unwrap_or(trimmed).trim();
        let (id, adj, weights) = parse_json_record(record, lineno)?;
        saw_record = true;
        acc.ensure_vertex(id);
        if let Some(w) = &weights {
            if w.len() != adj.len() {
                return Err(parse_err(
                    lineno,
                    format!("`w` has {} entries for {} neighbors", w.len(), adj.len()),
                ));
            }
        }
        for (i, &v) in adj.iter().enumerate() {
            acc.edge(lineno, id, v, weights.as_ref().map(|w| w[i]))?;
        }
    }
    if !saw_record {
        return Err(parse_err(0, "JSON adjacency input has no vertex records"));
    }
    acc.finish()
}

/// Parse one `{"id": .., "adj": [..], "w": [..]}` record. A deliberately
/// small hand-rolled scanner — the dialect is a fixed three-key object, and
/// keeping it dependency-free preserves line-precise error reporting.
fn parse_json_record(record: &str, lineno: usize) -> Result<(u32, Vec<u32>, Option<Vec<f64>>)> {
    let inner = record
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| parse_err(lineno, format!("expected a JSON object, found `{record}`")))?;

    let mut id: Option<u32> = None;
    let mut adj: Option<Vec<u32>> = None;
    let mut weights: Option<Vec<f64>> = None;

    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        let (key, after_key) = take_json_string(rest, lineno)?;
        rest = after_key.trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| parse_err(lineno, format!("missing `:` after key \"{key}\"")))?
            .trim_start();
        // Value: a bare number for "id", an array for "adj" / "w".
        match key {
            "id" => {
                let end = rest.find([',', ' ', '\t']).unwrap_or(rest.len());
                let raw = &rest[..end];
                id = Some(raw.parse().map_err(|_| {
                    parse_err(lineno, format!("invalid vertex id `{raw}` in \"id\""))
                })?);
                rest = &rest[end..];
            }
            "adj" => {
                let (items, after) = take_json_array(rest, lineno)?;
                adj = Some(
                    items
                        .iter()
                        .map(|raw| {
                            raw.parse().map_err(|_| {
                                parse_err(lineno, format!("invalid neighbor id `{raw}` in \"adj\""))
                            })
                        })
                        .collect::<Result<Vec<u32>>>()?,
                );
                rest = after;
            }
            "w" => {
                let (items, after) = take_json_array(rest, lineno)?;
                weights = Some(
                    items
                        .iter()
                        .map(|raw| parse_weight(raw, lineno))
                        .collect::<Result<Vec<f64>>>()?,
                );
                rest = after;
            }
            other => {
                return Err(parse_err(
                    lineno,
                    format!("unknown key \"{other}\" (expected \"id\", \"adj\" or \"w\")"),
                ));
            }
        }
        rest = rest.trim_start();
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma.trim_start();
        } else if !rest.is_empty() {
            return Err(parse_err(lineno, format!("unexpected trailing content `{rest}`")));
        }
    }

    let id = id.ok_or_else(|| parse_err(lineno, "record is missing \"id\""))?;
    let adj = adj.ok_or_else(|| parse_err(lineno, "record is missing \"adj\""))?;
    Ok((id, adj, weights))
}

/// Consume a leading `"..."` string; returns (contents, rest).
fn take_json_string(input: &str, lineno: usize) -> Result<(&str, &str)> {
    let rest = input
        .strip_prefix('"')
        .ok_or_else(|| parse_err(lineno, format!("expected a quoted key at `{input}`")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| parse_err(lineno, format!("unterminated string at `{input}`")))?;
    Ok((&rest[..end], &rest[end + 1..]))
}

/// Consume a leading `[..]` array of comma-separated scalar tokens; returns
/// (tokens, rest).
fn take_json_array(input: &str, lineno: usize) -> Result<(Vec<&str>, &str)> {
    let rest = input
        .strip_prefix('[')
        .ok_or_else(|| parse_err(lineno, format!("expected an array at `{input}`")))?;
    let end = rest
        .find(']')
        .ok_or_else(|| parse_err(lineno, format!("unterminated array at `{input}`")))?;
    let body = &rest[..end];
    let items = body.split(',').map(str::trim).filter(|t| !t.is_empty()).collect::<Vec<&str>>();
    Ok((items, &rest[end + 1..]))
}

#[cfg(test)]
mod tests {
    use super::super::read_edge_list;
    use super::*;
    use crate::ids::VertexId;

    /// The reference graph every format fixture below encodes: a triangle
    /// `0-1-2` plus the pendant edge `2-3` and the isolated vertex `4`.
    fn reference() -> crate::csr::CsrGraph {
        read_edge_list("0 1\n1 2\n0 2\n2 3\n4 4\n".as_bytes()).unwrap().graph
    }

    #[test]
    fn csv_parses_the_reference_graph() {
        let csv = "# exported from somewhere\nsource,target\n0,1\n1,2\n0,2\n2,3\n4,4\n";
        let parsed = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(parsed.graph, reference());
        assert!(parsed.edge_weights.is_none());
    }

    #[test]
    fn csv_weighted_and_trimmed_fields() {
        let csv = "src, dst, weight\n0, 1, 0.5\n1, 2, 2.5\n";
        let parsed = read_csv(csv.as_bytes()).unwrap();
        let weights = parsed.edge_weights.unwrap();
        let e = parsed.graph.find_edge(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(weights[e.index()], 2.5);
    }

    #[test]
    fn csv_rejects_missing_header_wrong_arity_and_bad_rows() {
        let err = read_csv("0,1\n1,2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        let err = read_csv("source,target\n0,1,9.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = read_csv("source,target\n0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = read_csv("source,target\nx,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("source vertex"), "{err}");
        assert!(read_csv("".as_bytes()).is_err(), "empty CSV has no header");
    }

    #[test]
    fn metis_parses_the_reference_graph() {
        // 5 vertices, 4 edges; vertex 5 (id 4) is isolated. Ids are 1-based.
        let metis = "% reference graph\n5 4\n2 3\n1 3\n1 2 4\n3\n\n";
        let parsed = read_metis(metis.as_bytes()).unwrap();
        assert_eq!(parsed.graph, reference());
    }

    #[test]
    fn metis_edge_weights() {
        // fmt 001 = edge weights; line i holds `neighbor weight` pairs.
        let metis = "3 2 001\n2 1.5 3 9.0\n1 1.5\n1 9.0\n";
        let parsed = read_metis(metis.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 2);
        let weights = parsed.edge_weights.unwrap();
        let e = parsed.graph.find_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(weights[e.index()], 9.0);
    }

    #[test]
    fn metis_rejects_structural_corruption() {
        // Neighbor out of range.
        let err = read_metis("2 1\n3\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // Too few vertex lines.
        let err = read_metis("3 1\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("vertex lines"), "{err}");
        // Too many vertex lines.
        let err = read_metis("1 0\n\n2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }), "{err}");
        // Declared edge count does not match the adjacency mentions.
        let err = read_metis("2 5\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declares 5 edges"), "{err}");
        // Vertex weights are unsupported.
        let err = read_metis("2 1 011\n2\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not support"), "{err}");
        // No header at all.
        assert!(read_metis("% only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn metis_empty_neighbor_lines_are_isolated_vertices() {
        // A blank line would be skipped as a separator, so isolated METIS
        // vertices need the header count to reserve them — which it does.
        let parsed = read_metis("3 1\n2\n1\n\n".as_bytes()).unwrap();
        assert_eq!(parsed.graph.vertex_count(), 3);
        assert_eq!(parsed.graph.edge_count(), 1);
    }

    #[test]
    fn json_parses_the_reference_graph() {
        let json = r#"[
  {"id": 0, "adj": [1, 2]},
  {"id": 1, "adj": [0, 2]},
  {"id": 2, "adj": [0, 1, 3]},
  {"id": 3, "adj": [2]},
  {"id": 4, "adj": []}
]"#;
        let parsed = read_json_adjacency(json.as_bytes()).unwrap();
        assert_eq!(parsed.graph, reference());
    }

    #[test]
    fn json_lines_with_weights() {
        let json = "{\"id\": 0, \"adj\": [1, 2], \"w\": [0.5, 1.25]}\n\
                    {\"id\": 1, \"adj\": [0], \"w\": [0.5]}\n\
                    {\"id\": 2, \"adj\": [0], \"w\": [1.25]}\n";
        let parsed = read_json_adjacency(json.as_bytes()).unwrap();
        assert_eq!(parsed.graph.edge_count(), 2);
        let weights = parsed.edge_weights.unwrap();
        let e = parsed.graph.find_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(weights[e.index()], 1.25);
    }

    #[test]
    fn json_rejects_malformed_records_with_line_numbers() {
        let err = read_json_adjacency("{\"id\": 0}\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing \"adj\""), "{err}");
        let err = read_json_adjacency("{\"adj\": [1]}\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing \"id\""), "{err}");
        let err = read_json_adjacency("not json\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
        let err = read_json_adjacency(
            "{\"id\": 0, \"adj\": [1]}\n{\"id\": 1, \"adjx\": [0]}\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = read_json_adjacency("{\"id\": 0, \"adj\": [1, 2], \"w\": [0.5]}\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("1 entries for 2 neighbors"), "{err}");
        assert!(read_json_adjacency("[\n]\n".as_bytes()).is_err(), "no records");
    }

    #[test]
    fn format_names_round_trip() {
        for &format in GraphFormat::all() {
            assert_eq!(GraphFormat::from_name(format.name()), Some(format));
            assert_eq!(format.to_string(), format.name());
        }
        assert_eq!(GraphFormat::from_name("JSONL"), Some(GraphFormat::JsonAdjacency));
        assert_eq!(GraphFormat::from_name("nope"), None);
    }

    #[test]
    fn extension_detection() {
        let cases = [
            ("graph.txt", Some(GraphFormat::EdgeList)),
            ("graph.csv", Some(GraphFormat::Csv)),
            ("graph.metis", Some(GraphFormat::Metis)),
            ("graph.graph", Some(GraphFormat::Metis)),
            ("graph.jsonl", Some(GraphFormat::JsonAdjacency)),
            ("graph.gtsb", Some(GraphFormat::Binary)),
            ("graph.dat", None),
            ("graph", None),
        ];
        for (name, expected) in cases {
            assert_eq!(GraphFormat::from_extension(Path::new(name)), expected, "{name}");
        }
    }

    #[test]
    fn content_sniffing() {
        assert_eq!(GraphFormat::sniff(b"GTSB\x02\x00\x00\x00"), GraphFormat::Binary);
        assert_eq!(GraphFormat::sniff(&[5, 0, 0, 0, 3, 0, 0, 0]), GraphFormat::Binary);
        assert_eq!(GraphFormat::sniff(b"  {\"id\": 0, \"adj\": []}"), GraphFormat::JsonAdjacency);
        assert_eq!(GraphFormat::sniff(b"[\n{\"id\": 0"), GraphFormat::JsonAdjacency);
        assert_eq!(GraphFormat::sniff(b"# comment\nsource,target\n0,1\n"), GraphFormat::Csv);
        assert_eq!(GraphFormat::sniff(b"# comment\n0 1\n1 2\n"), GraphFormat::EdgeList);
        assert_eq!(GraphFormat::sniff(b""), GraphFormat::EdgeList);
    }
}
