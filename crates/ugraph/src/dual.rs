//! Line graphs (the "dual graph" of Section II-C).
//!
//! The paper's naive edge-scalar-tree method converts an edge-based scalar
//! graph `G(V, E)` into its dual `Gd(Vd, Ed)`: every edge of `G` becomes a
//! vertex of `Gd`, and two such vertices are adjacent whenever the original
//! edges share an endpoint. The vertex-scalar-tree algorithm (Algorithm 1) is
//! then run on `Gd`. The dual has `|Vd| = |E|` vertices and
//! `|Ed| = O(Σ_v deg(v)²)` edges, which is why the paper develops the
//! optimized Algorithm 3; we keep the naive path both as a baseline for the
//! Table II `te` column and as a correctness oracle in tests.

use crate::csr::CsrGraph;
use crate::ids::{EdgeId, VertexId};
use crate::storage::GraphStorage;
use crate::GraphBuilder;

/// The line graph of an undirected graph, with the mapping back to the
/// original edges.
#[derive(Clone, Debug)]
pub struct LineGraph {
    /// The dual graph: one vertex per original edge.
    pub graph: CsrGraph,
    /// `original_edge[w]` is the edge of the source graph represented by the
    /// dual vertex `w`. Because dual vertex `w` is created for original edge
    /// with id `w`, this is the identity mapping, stored explicitly for
    /// clarity at call sites.
    pub original_edge: Vec<EdgeId>,
}

/// Build the line (dual) graph of `graph`.
///
/// Dual vertex `i` corresponds to the original edge with [`EdgeId`] `i`. Two
/// dual vertices are connected iff the corresponding original edges share an
/// endpoint. The construction cost is `O(Σ_v deg(v)²)`, matching the bound
/// discussed in the paper.
pub fn line_graph<G: GraphStorage + ?Sized>(graph: &G) -> LineGraph {
    let mut builder = GraphBuilder::with_capacity(estimated_dual_edges(graph));
    if graph.edge_count() > 0 {
        builder.ensure_vertex(graph.edge_count() - 1);
    }
    // For every vertex, all pairs of incident edges become dual edges.
    for v in graph.vertices() {
        let incident = graph.incident_edge_slice(v);
        for i in 0..incident.len() {
            for j in (i + 1)..incident.len() {
                builder.add_edge(incident[i].0, incident[j].0);
            }
        }
    }
    let dual = builder.build();
    let original_edge = (0..graph.edge_count()).map(EdgeId::from_index).collect();
    LineGraph { graph: dual, original_edge }
}

/// Number of dual edges before deduplication: `Σ_v C(deg(v), 2)`.
///
/// Edges that form a triangle in the source graph are counted once per shared
/// endpoint pair, so the deduplicated dual can be slightly smaller.
pub fn estimated_dual_edges<G: GraphStorage + ?Sized>(graph: &G) -> usize {
    graph
        .vertices()
        .map(|v| {
            let d = graph.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Map a dual vertex back to the original edge's endpoints.
pub fn dual_vertex_endpoints<G: GraphStorage + ?Sized>(
    graph: &G,
    dual_vertex: VertexId,
) -> (VertexId, VertexId) {
    graph.endpoints(EdgeId(dual_vertex.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_graph_dual_is_path() {
        // Path 0-1-2-3 has edges e0={0,1}, e1={1,2}, e2={2,3}; its line graph
        // is the path e0-e1-e2.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let dual = line_graph(&g);
        assert_eq!(dual.graph.vertex_count(), 3);
        assert_eq!(dual.graph.edge_count(), 2);
        assert!(dual.graph.has_edge(VertexId(0), VertexId(1)));
        assert!(dual.graph.has_edge(VertexId(1), VertexId(2)));
        assert!(!dual.graph.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn triangle_dual_is_triangle() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let dual = line_graph(&g);
        assert_eq!(dual.graph.vertex_count(), 3);
        assert_eq!(dual.graph.edge_count(), 3);
    }

    #[test]
    fn star_dual_is_complete() {
        // Star K_{1,4}: center 0 connected to 1..=4. Line graph is K_4.
        let mut b = GraphBuilder::new();
        for leaf in 1..=4u32 {
            b.add_edge(0u32, leaf);
        }
        let g = b.build();
        let dual = line_graph(&g);
        assert_eq!(dual.graph.vertex_count(), 4);
        assert_eq!(dual.graph.edge_count(), 6);
        assert_eq!(estimated_dual_edges(&g), 6);
    }

    #[test]
    fn dual_vertices_map_back_to_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let dual = line_graph(&g);
        for (i, &e) in dual.original_edge.iter().enumerate() {
            assert_eq!(e.index(), i);
            let endpoints = dual_vertex_endpoints(&g, VertexId::from_index(i));
            assert_eq!(endpoints, g.endpoints(e));
        }
    }

    #[test]
    fn empty_and_single_edge_duals() {
        let g = GraphBuilder::new().build();
        let dual = line_graph(&g);
        assert_eq!(dual.graph.vertex_count(), 0);

        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build();
        let dual = line_graph(&g);
        assert_eq!(dual.graph.vertex_count(), 1);
        assert_eq!(dual.graph.edge_count(), 0);
    }
}
