//! Mutable builder producing canonical [`CsrGraph`]s.
//!
//! The builder accepts edges in any order, with duplicates, reversed
//! orientation and self loops; `build()` canonicalizes (`u < v`),
//! deduplicates, drops self loops and produces a [`CsrGraph`]. The number of
//! vertices is `max endpoint + 1`, or larger if [`GraphBuilder::ensure_vertex`]
//! was used to reserve isolated vertices.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// Incremental builder for [`CsrGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertex_count: usize,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            min_vertex_count: 0,
            dropped_self_loops: 0,
        }
    }

    /// Add an undirected edge between `u` and `v`.
    ///
    /// Self loops are silently dropped (and counted, see
    /// [`GraphBuilder::dropped_self_loops`]); duplicates are removed at build
    /// time.
    pub fn add_edge(&mut self, u: impl Into<VertexId>, v: impl Into<VertexId>) -> &mut Self {
        let u = u.into();
        let v = v.into();
        if u == v {
            self.dropped_self_loops += 1;
            return self;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self
    }

    /// Add every edge of an iterator of `(u, v)` pairs.
    pub fn extend_edges<I, U, V>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (U, V)>,
        U: Into<VertexId>,
        V: Into<VertexId>,
    {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Guarantee that vertex `v` exists in the built graph even if no edge
    /// touches it.
    pub fn ensure_vertex(&mut self, v: impl Into<VertexId>) -> &mut Self {
        let v = v.into();
        self.min_vertex_count = self.min_vertex_count.max(v.index() + 1);
        self
    }

    /// Number of self loops that were passed to `add_edge` and dropped.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (possibly duplicated) edges currently staged.
    pub fn staged_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finish building: canonicalize, deduplicate and freeze into a
    /// [`CsrGraph`].
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let max_endpoint = self.edges.iter().map(|&(_, v)| v.index() + 1).max().unwrap_or(0);
        let vertex_count = max_endpoint.max(self.min_vertex_count);
        CsrGraph::from_canonical_edges(vertex_count, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_canonicalizes() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(1u32, 0u32);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        let edges: Vec<_> = g.edges().map(|e| (e.u.0, e.v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0);
        b.add_edge(3, 3);
        b.add_edge(0, 1);
        assert_eq!(b.dropped_self_loops(), 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn ensure_vertex_grows_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(9);
        let g = b.build();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.degree(VertexId(9)), 0);
    }

    #[test]
    fn extend_edges_and_capacity() {
        let mut b = GraphBuilder::with_capacity(8);
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(b.staged_edge_count(), 4);
        let g = b.build();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }
}
