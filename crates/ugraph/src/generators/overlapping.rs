//! Overlapping (soft) community graphs with ground-truth affiliation scores.
//!
//! Figure 8 and Figure 1(b) of the paper visualize a DBLP subset through the
//! *community score vector* `(c0, c1, c2, c3)` produced by an overlapping
//! community detection algorithm. This generator plants exactly that
//! structure: each community has a few **core** members with affiliation close
//! to 1, a middle tier, and peripheral members with low scores; some vertices
//! belong to two communities (the overlap), and each community is itself split
//! into a small number of sub-groups that only interact through their cores —
//! which is what produces the separate sub-peaks inside one major peak in
//! Figure 8.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Configuration for [`overlapping_communities`].
#[derive(Clone, Debug)]
pub struct OverlappingCommunityConfig {
    /// Number of communities.
    pub communities: usize,
    /// Number of vertices per community (before overlap).
    pub community_size: usize,
    /// Number of sub-groups within each community (the sub-peaks of Fig. 8).
    pub subgroups_per_community: usize,
    /// Fraction of each community's vertices that also join the next community.
    pub overlap_fraction: f64,
    /// Edge probability between two vertices of the same sub-group.
    pub p_subgroup: f64,
    /// Edge probability between two vertices of the same community but
    /// different sub-groups (mostly mediated by core members).
    pub p_community: f64,
    /// Edge probability between vertices of different communities.
    pub p_background: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for OverlappingCommunityConfig {
    fn default() -> Self {
        OverlappingCommunityConfig {
            communities: 4,
            community_size: 120,
            subgroups_per_community: 2,
            overlap_fraction: 0.05,
            p_subgroup: 0.25,
            p_community: 0.02,
            p_background: 0.001,
            seed: 0x5ca1ab1e,
        }
    }
}

/// A generated overlapping-community graph with ground-truth scores.
#[derive(Clone, Debug)]
pub struct OverlappingCommunityGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `scores[c][v]` is the affiliation of vertex `v` with community `c`,
    /// in `[0, 1]`. This is the scalar field Figure 8 draws terrains from.
    pub scores: Vec<Vec<f64>>,
    /// `primary[v]` is the community with the largest affiliation for `v`.
    pub primary: Vec<usize>,
    /// `subgroup[v]` is the sub-group index of `v` inside its primary
    /// community (used to verify the sub-peak structure).
    pub subgroup: Vec<usize>,
}

/// Generate an overlapping-community graph per `config`.
pub fn overlapping_communities(config: &OverlappingCommunityConfig) -> OverlappingCommunityGraph {
    assert!(config.communities >= 1 && config.community_size >= 4);
    assert!(config.subgroups_per_community >= 1);
    let n = config.communities * config.community_size;
    let mut rng = super::rng(config.seed);

    // Membership tiers inside a community, by position within the community:
    // the first 10% are core (score ~0.9-1.0), next 40% mid (0.5-0.8), rest
    // peripheral (0.1-0.4).
    let mut scores = vec![vec![0.0f64; n]; config.communities];
    let mut primary = vec![0usize; n];
    let mut subgroup = vec![0usize; n];

    for (c, community_scores) in scores.iter_mut().enumerate() {
        for i in 0..config.community_size {
            let v = c * config.community_size + i;
            primary[v] = c;
            subgroup[v] = i % config.subgroups_per_community;
            let tier = i as f64 / config.community_size as f64;
            let score = if tier < 0.1 {
                0.9 + 0.1 * rng.gen::<f64>()
            } else if tier < 0.5 {
                0.5 + 0.3 * rng.gen::<f64>()
            } else {
                0.1 + 0.3 * rng.gen::<f64>()
            };
            community_scores[v] = score;
        }
    }

    // Overlap: the last `overlap_fraction` of each community also gets a
    // moderate affiliation with the next community.
    let overlap_count = ((config.community_size as f64) * config.overlap_fraction).round() as usize;
    for c in 0..config.communities {
        let next = (c + 1) % config.communities;
        for k in 0..overlap_count {
            let v = c * config.community_size + config.community_size - 1 - k;
            scores[next][v] = 0.3 + 0.2 * rng.gen::<f64>();
        }
    }

    // Edges. Sub-group members are densely connected among themselves; the
    // sub-groups of one community are bridged through their *peripheral*
    // members (low scores), so the community is connected at low affiliation
    // thresholds but splits into separate sub-peaks at high thresholds —
    // exactly the sub-community structure of the paper's Figure 8.
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(n - 1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if primary[u] == primary[v] {
                let u_peripheral = scores[primary[u]][u] < 0.5;
                let v_peripheral = scores[primary[v]][v] < 0.5;
                if subgroup[u] == subgroup[v] {
                    let affinity = scores[primary[u]][u].min(scores[primary[v]][v]);
                    (config.p_subgroup * (0.5 + affinity)).min(1.0)
                } else if u_peripheral && v_peripheral {
                    // Cross-sub-group bridges live at the community periphery.
                    (config.p_subgroup * 0.4).min(1.0)
                } else {
                    config.p_community
                }
            } else if scores[primary[v]][u] > 0.0 || scores[primary[u]][v] > 0.0 {
                // Overlapping member connecting its two communities.
                config.p_subgroup * 0.3
            } else {
                config.p_background
            };
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                builder.add_edge(u as u32, v as u32);
            }
        }
    }

    OverlappingCommunityGraph { graph: builder.build(), scores, primary, subgroup }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> OverlappingCommunityConfig {
        OverlappingCommunityConfig {
            communities: 3,
            community_size: 40,
            subgroups_per_community: 2,
            overlap_fraction: 0.1,
            seed: 99,
            ..Default::default()
        }
    }

    #[test]
    fn scores_are_probabilities_and_cover_all_vertices() {
        let g = overlapping_communities(&small_config());
        assert_eq!(g.graph.vertex_count(), 120);
        assert_eq!(g.scores.len(), 3);
        for field in &g.scores {
            assert_eq!(field.len(), 120);
            assert!(field.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
        // Every vertex has a positive score in its primary community.
        for v in 0..120 {
            assert!(g.scores[g.primary[v]][v] > 0.0);
        }
    }

    #[test]
    fn communities_are_denser_inside_than_outside() {
        let g = overlapping_communities(&small_config());
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.graph.edges() {
            if g.primary[e.u.index()] == g.primary[e.v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 3 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn overlap_vertices_have_two_affiliations() {
        let g = overlapping_communities(&small_config());
        let doubly_affiliated = (0..g.graph.vertex_count())
            .filter(|&v| g.scores.iter().filter(|f| f[v] > 0.0).count() >= 2)
            .count();
        assert!(doubly_affiliated >= 3, "expected overlapping members, got {doubly_affiliated}");
    }

    #[test]
    fn core_members_have_highest_scores() {
        let g = overlapping_communities(&small_config());
        // Vertex 0 is the first (core) member of community 0.
        assert!(g.scores[0][0] >= 0.9);
        // The last member of community 0 is peripheral.
        assert!(g.scores[0][39] < 0.5);
    }
}
