//! Recursive-matrix (RMAT / Graph500-style) random graphs.
//!
//! The RMAT model samples each edge by recursively descending into one
//! quadrant of the adjacency matrix: starting from the full `2^scale ×
//! 2^scale` matrix, the generator picks a quadrant with probabilities
//! `(a, b, c, d)` and recurses `scale` times until a single cell — one
//! `(u, v)` pair — remains. Skewed quadrant probabilities (Graph500 uses
//! `a = 0.57`) yield the heavy-tailed degree distributions and community-like
//! blocks of real web/social graphs, which is why it is the standard
//! scale-ladder workload: the same model generates a 1k-edge smoke graph and
//! a 10M+-edge stress graph, with the skew held constant.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Parameters of the RMAT recursive-matrix sampler (see [`rmat_with`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RmatConfig {
    /// The graph has `2^scale` vertices (`1 ≤ scale ≤ 31`).
    pub scale: u32,
    /// Number of edge *samples* drawn. Self loops and duplicate pairs are
    /// discarded during CSR canonicalization, so the resulting
    /// [`CsrGraph::edge_count`] is at most (and on skewed graphs noticeably
    /// below) this number — record the realized count, not the target.
    pub edges: usize,
    /// Probability of the top-left quadrant (both endpoint prefixes 0).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
    /// PRNG seed (ChaCha8; the same config always yields the same graph).
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500 reference parameters `(a, b, c, d) = (0.57, 0.19, 0.19,
    /// 0.05)` at the given scale, edge count and seed.
    pub fn graph500(scale: u32, edges: usize, seed: u64) -> Self {
        RmatConfig { scale, edges, a: 0.57, b: 0.19, c: 0.19, d: 0.05, seed }
    }
}

/// Sample an RMAT graph with the Graph500 reference skew
/// (`a=0.57, b=0.19, c=0.19, d=0.05`).
///
/// * `scale` — the graph has `2^scale` vertices.
/// * `edges` — number of edge samples (the realized edge count is lower; see
///   [`RmatConfig::edges`]).
/// * `seed` — PRNG seed.
///
/// Determinism: the same `(scale, edges, seed)` always produces the same
/// graph, on every platform and at every thread count — generation is
/// single-threaded ChaCha8 and CSR construction canonicalizes edge order.
///
/// ```
/// use ugraph::generators::rmat;
///
/// let a = rmat(10, 5_000, 42);
/// let b = rmat(10, 5_000, 42);
/// assert_eq!(a, b);                       // same seed ⇒ identical graph
/// assert_eq!(a.vertex_count(), 1 << 10);
/// assert!(a.edge_count() <= 5_000);       // duplicates/self-loops discarded
/// assert_ne!(a, rmat(10, 5_000, 43));     // different seed ⇒ different graph
/// ```
pub fn rmat(scale: u32, edges: usize, seed: u64) -> CsrGraph {
    rmat_with(&RmatConfig::graph500(scale, edges, seed))
}

/// Sample an RMAT graph with explicit quadrant probabilities.
///
/// The probabilities must be non-negative with a positive sum; they are
/// normalized internally, so `(57.0, 19.0, 19.0, 5.0)` means the same as the
/// Graph500 fractions.
///
/// # Panics
///
/// Panics if `scale` is 0 or exceeds 31, or if any probability is negative,
/// non-finite, or all four are zero.
pub fn rmat_with(config: &RmatConfig) -> CsrGraph {
    let &RmatConfig { scale, edges, a, b, c, d, seed } = config;
    assert!((1..=31).contains(&scale), "scale must be in 1..=31, got {scale}");
    for (name, p) in [("a", a), ("b", b), ("c", c), ("d", d)] {
        assert!(p.is_finite() && p >= 0.0, "quadrant probability {name} must be ≥ 0, got {p}");
    }
    let total = a + b + c + d;
    assert!(total > 0.0, "at least one quadrant probability must be positive");
    // Cumulative quadrant thresholds over [0, 1).
    let t_a = a / total;
    let t_ab = t_a + b / total;
    let t_abc = t_ab + c / total;

    let n: u32 = 1u32.checked_shl(scale).expect("scale ≤ 31");
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::with_capacity(edges);
    builder.ensure_vertex(n - 1);
    for _ in 0..edges {
        let mut u = 0u32;
        let mut v = 0u32;
        for level in (0..scale).rev() {
            let r: f64 = rng.gen_range(0.0..1.0);
            let (row, col) = if r < t_a {
                (0u32, 0u32)
            } else if r < t_ab {
                (0, 1)
            } else if r < t_abc {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= row << level;
            v |= col << level;
        }
        // Self loops are dropped by the builder; duplicates are deduplicated
        // during canonicalization. Both are expected under the model.
        builder.add_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_two_to_the_scale() {
        for scale in [1u32, 4, 10] {
            let g = rmat(scale, 100, 7);
            assert_eq!(g.vertex_count(), 1usize << scale);
        }
    }

    #[test]
    fn skewed_quadrants_produce_heavy_hubs() {
        // With a = 0.57 the low-id corner of the matrix is hit most often, so
        // the maximum degree should far exceed the average.
        let g = rmat(12, 40_000, 3);
        let avg = g.average_degree();
        assert!(
            g.max_degree() as f64 > 8.0 * avg,
            "max degree {} vs average {avg}: RMAT should be heavy-tailed",
            g.max_degree()
        );
    }

    #[test]
    fn uniform_quadrants_approximate_erdos_renyi() {
        // Equal probabilities remove the skew; degrees concentrate near the
        // mean instead of forming hubs.
        let config = RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            ..RmatConfig::graph500(12, 40_000, 3)
        };
        let g = rmat_with(&config);
        assert!((g.max_degree() as f64) < 4.0 * g.average_degree().max(1.0));
    }

    #[test]
    fn probabilities_are_normalized() {
        let reference = rmat(8, 2_000, 11);
        let scaled = rmat_with(&RmatConfig {
            a: 5.7,
            b: 1.9,
            c: 1.9,
            d: 0.5,
            ..RmatConfig::graph500(8, 2_000, 11)
        });
        assert_eq!(reference, scaled);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_scale() {
        rmat(0, 10, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_probability() {
        rmat_with(&RmatConfig { a: -0.1, ..RmatConfig::graph500(4, 10, 1) });
    }
}
