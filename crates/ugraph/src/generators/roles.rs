//! Hub / dense-community / periphery / whisker role-structured community
//! generator (the Amazon co-purchase community of Figure 9).
//!
//! The paper's Figure 9 colors one community's terrain by each vertex's
//! dominant *role*: a hub book at the very top of the peak, densely connected
//! community books below it, and loosely attached peripheral books at the
//! bottom. This generator plants exactly that structure, with ground-truth
//! roles and a ground-truth community score that decays from hub to periphery.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Ground-truth structural role of a planted vertex.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlantedRole {
    /// The single highest-affiliation vertex, connected to most of the dense core.
    Hub,
    /// Densely inter-connected core members.
    DenseCommunity,
    /// Members attached to a few core members only.
    Periphery,
    /// Degree-one whiskers hanging off peripheral members.
    Whisker,
}

/// A planted hub/dense/periphery/whisker community.
#[derive(Clone, Debug)]
pub struct HubPeripheryGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Ground-truth role per vertex.
    pub roles: Vec<PlantedRole>,
    /// Ground-truth community affiliation score per vertex, decreasing from
    /// the hub (≈1.0) to whiskers (≈0.05).
    pub community_score: Vec<f64>,
}

/// Generate a hub/dense/periphery/whisker community.
///
/// * `dense` — number of dense-core vertices (one of them is upgraded to the hub).
/// * `periphery` — number of peripheral vertices.
/// * `whiskers` — number of degree-one whisker vertices.
/// * `seed` — PRNG seed.
pub fn hub_periphery_community(
    dense: usize,
    periphery: usize,
    whiskers: usize,
    seed: u64,
) -> HubPeripheryGraph {
    assert!(dense >= 3, "need at least a small dense core");
    let mut rng = super::rng(seed);
    let n = dense + periphery + whiskers;
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(n - 1);
    let mut roles = Vec::with_capacity(n);
    let mut score = Vec::with_capacity(n);

    // Vertex 0 is the hub; 1..dense are dense community members.
    roles.push(PlantedRole::Hub);
    score.push(1.0);
    for i in 1..dense {
        roles.push(PlantedRole::DenseCommunity);
        score.push(0.75 + 0.15 * rng.gen::<f64>() - 0.0005 * i as f64);
    }
    for _ in 0..periphery {
        roles.push(PlantedRole::Periphery);
        score.push(0.25 + 0.2 * rng.gen::<f64>());
    }
    for _ in 0..whiskers {
        roles.push(PlantedRole::Whisker);
        score.push(0.05 + 0.05 * rng.gen::<f64>());
    }

    // Hub connects to (almost) every dense member.
    for i in 1..dense {
        if rng.gen_bool(0.95) {
            builder.add_edge(0u32, i as u32);
        }
    }
    // Dense members are heavily inter-connected.
    for i in 1..dense {
        for j in (i + 1)..dense {
            if rng.gen_bool(0.5) {
                builder.add_edge(i as u32, j as u32);
            }
        }
    }
    // Periphery members attach to 1-3 dense members (possibly the hub).
    for p in 0..periphery {
        let v = dense + p;
        let attachments = rng.gen_range(1..=3usize);
        for _ in 0..attachments {
            let target = rng.gen_range(0..dense);
            builder.add_edge(v as u32, target as u32);
        }
    }
    // Whiskers hang off a random peripheral member (or a dense member when
    // there is no periphery).
    for w in 0..whiskers {
        let v = dense + periphery + w;
        let target = if periphery > 0 {
            dense + rng.gen_range(0..periphery)
        } else {
            rng.gen_range(0..dense)
        };
        builder.add_edge(v as u32, target as u32);
    }

    HubPeripheryGraph { graph: builder.build(), roles, community_score: score }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_scores_are_aligned() {
        let g = hub_periphery_community(20, 30, 10, 3);
        assert_eq!(g.graph.vertex_count(), 60);
        assert_eq!(g.roles.len(), 60);
        assert_eq!(g.community_score.len(), 60);
        assert_eq!(g.roles[0], PlantedRole::Hub);
        assert!((g.community_score[0] - 1.0).abs() < 1e-12);
        // Score ordering hub > dense > periphery > whisker on average.
        let avg = |role: PlantedRole| {
            let (sum, count) = g
                .roles
                .iter()
                .zip(&g.community_score)
                .filter(|(r, _)| **r == role)
                .fold((0.0, 0usize), |(s, c), (_, v)| (s + v, c + 1));
            sum / count as f64
        };
        assert!(avg(PlantedRole::DenseCommunity) > avg(PlantedRole::Periphery));
        assert!(avg(PlantedRole::Periphery) > avg(PlantedRole::Whisker));
    }

    #[test]
    fn hub_has_high_degree_and_whiskers_have_degree_one() {
        let g = hub_periphery_community(25, 40, 15, 11);
        let hub_degree = g.graph.degree(crate::ids::VertexId(0));
        assert!(hub_degree >= 15, "hub should touch most of the dense core");
        for (v, role) in g.roles.iter().enumerate() {
            if *role == PlantedRole::Whisker {
                assert_eq!(g.graph.degree(crate::ids::VertexId::from_index(v)), 1);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = hub_periphery_community(10, 10, 5, 2);
        let b = hub_periphery_community(10, 10, 5, 2);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.roles, b.roles);
    }
}
