//! Barabási–Albert preferential-attachment graphs.
//!
//! Preferential attachment yields a heavy-tailed degree distribution with a
//! single densely connected core into which the highest-degree vertices are
//! recursively embedded. This reproduces the "one dominant peak" K-Core
//! landscape the paper reports for WikiVote and Wikipedia (Figure 6(d),
//! Figure 7(a)).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Generate a preferential-attachment graph where each new vertex attaches to
/// a *random* number of existing vertices drawn uniformly from
/// `[m_min, m_max]`, chosen proportionally to degree.
///
/// Fixed-`m` Barabási–Albert graphs have a flat K-Core landscape (every vertex
/// ends up with core number exactly `m`); real vote/web graphs instead show a
/// single dominant core with a long gradient of lower shells. Varying the
/// attachment count reproduces that gradient, which is what the WikiVote and
/// Wikipedia analogs need (Figures 6(d), 7(a)).
pub fn preferential_attachment(n: usize, m_min: usize, m_max: usize, seed: u64) -> CsrGraph {
    assert!(m_min >= 1 && m_max >= m_min, "need 1 <= m_min <= m_max");
    assert!(n > m_max, "need more vertices than the largest attachment count");
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::with_capacity(n * (m_min + m_max) / 2);
    builder.ensure_vertex(n - 1);
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(n * (m_min + m_max));

    // Seed clique on vertices 0..=m_max.
    for u in 0..=(m_max as u32) {
        for v in (u + 1)..=(m_max as u32) {
            builder.add_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    let mut chosen = Vec::with_capacity(m_max);
    for new_vertex in (m_max + 1)..n {
        let m = rng.gen_range(m_min..=m_max);
        chosen.clear();
        let mut guard = 0usize;
        while chosen.len() < m && guard < 60 * m {
            let candidate = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
        }
        for &t in &chosen {
            builder.add_edge(new_vertex as u32, t);
            endpoint_pool.push(new_vertex as u32);
            endpoint_pool.push(t);
        }
    }
    builder.build()
}

/// Generate a Barabási–Albert graph with `n` vertices where each new vertex
/// attaches to `m` existing vertices chosen proportionally to degree.
///
/// The first `m + 1` vertices form a seed clique so early attachments are well
/// defined. Requires `n > m` and `m >= 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be at least 1");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::with_capacity(n * m);
    builder.ensure_vertex(n - 1);

    // `targets` holds one entry per half-edge endpoint, so sampling a uniform
    // element of it is sampling proportionally to degree.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * n * m);

    // Seed clique on vertices 0..=m.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            builder.add_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    let mut chosen = Vec::with_capacity(m);
    for new_vertex in (m + 1)..n {
        chosen.clear();
        // Rejection-sample m distinct targets by degree.
        let mut guard = 0usize;
        while chosen.len() < m {
            let idx = rng.gen_range(0..endpoint_pool.len());
            let candidate = endpoint_pool[idx];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
            if guard > 50 * m {
                // Extremely unlikely; fall back to the lowest ids not yet chosen.
                for fallback in 0..new_vertex as u32 {
                    if chosen.len() >= m {
                        break;
                    }
                    if !chosen.contains(&fallback) {
                        chosen.push(fallback);
                    }
                }
            }
        }
        for &t in &chosen {
            builder.add_edge(new_vertex as u32, t);
            endpoint_pool.push(new_vertex as u32);
            endpoint_pool.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn edge_count_is_deterministic_function_of_parameters() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 9);
        // Seed clique has C(m+1, 2) edges, then (n - m - 1) vertices add m each.
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        assert_eq!(g.vertex_count(), n);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(2000, 2, 17);
        let max_deg = g.max_degree();
        let avg = g.average_degree();
        // Preferential attachment should produce hubs far above the mean.
        assert!(
            max_deg as f64 > 5.0 * avg,
            "max degree {max_deg} not much larger than average {avg}"
        );
    }

    #[test]
    fn minimum_degree_is_m() {
        let m = 4;
        let g = barabasi_albert(300, m, 23);
        let min_deg = g.vertices().map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg >= m, "every attached vertex has at least m = {m} edges");
        // Early vertices should be among the best connected.
        assert!(g.degree(VertexId(0)) >= m);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_parameters() {
        barabasi_albert(3, 3, 0);
    }

    #[test]
    fn varied_attachment_produces_a_core_gradient() {
        let g = preferential_attachment(1_500, 1, 12, 9);
        assert_eq!(g.vertex_count(), 1_500);
        // Degrees range from ~1 up to hub sizes, and — unlike fixed-m BA —
        // the minimum degree is small, which yields a spread of K-Core shells.
        let min_deg = g.vertices().map(|v| g.degree(v)).min().unwrap();
        assert!(min_deg <= 2);
        assert!(g.max_degree() > 30);
        assert_eq!(preferential_attachment(1_500, 1, 12, 9), g, "deterministic");
    }

    #[test]
    #[should_panic]
    fn varied_attachment_rejects_bad_range() {
        preferential_attachment(100, 5, 2, 0);
    }
}
