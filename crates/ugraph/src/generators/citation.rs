//! Layered citation-network generator (Cit-Patent analog).
//!
//! Patent citation graphs are (nearly) DAG-like when directed: a patent cites
//! earlier patents, with a preference for recent and already well-cited work.
//! Treated as undirected graphs (as the paper does for its scalar-field
//! analysis), they are sparse, have modest maximum coreness compared to web
//! graphs, and their dense regions are spread across many technology areas —
//! matching the broad multi-plateau terrain of Figure 7(c).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Generate a layered citation graph.
///
/// * `n` — number of patents (vertices), created in temporal order.
/// * `layers` — number of technology areas; a patent cites within its area
///   with high probability.
/// * `citations_per_node` — average number of citations each new patent makes.
/// * `recency_bias` — in `(0, 1]`; smaller values concentrate citations on
///   recent patents.
/// * `seed` — PRNG seed.
pub fn layered_citation(
    n: usize,
    layers: usize,
    citations_per_node: usize,
    recency_bias: f64,
    seed: u64,
) -> CsrGraph {
    assert!(layers >= 1);
    assert!(recency_bias > 0.0 && recency_bias <= 1.0);
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::new();
    if n > 0 {
        builder.ensure_vertex(n - 1);
    }
    let area_of = |v: usize| v % layers;

    for v in 1..n {
        let cites = rng.gen_range((citations_per_node / 2).max(1)..=citations_per_node * 3 / 2);
        for _ in 0..cites {
            // Sample an earlier patent with a recency bias: the exponent pulls
            // samples toward the most recent indices.
            let r: f64 = rng.gen::<f64>();
            let back = (r.powf(1.0 / recency_bias) * v as f64) as usize;
            let mut target = v - 1 - back.min(v - 1);
            // Prefer the same technology area: if areas differ, retry once
            // within the area by snapping to the nearest same-area index.
            if area_of(target) != area_of(v) && rng.gen_bool(0.8) {
                let offset = (area_of(v) + layers - area_of(target)) % layers;
                target = (target + offset).min(v - 1);
                if area_of(target) != area_of(v) {
                    continue;
                }
            }
            if target != v {
                builder.add_edge(v as u32, target as u32);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citation_graph_is_sparse_and_covers_all_layers() {
        let n = 2000;
        let g = layered_citation(n, 8, 4, 0.3, 13);
        assert_eq!(g.vertex_count(), n);
        // Average degree around 2 * citations_per_node, well below dense.
        assert!(g.average_degree() < 16.0);
        assert!(g.edge_count() > n, "each patent makes several citations");
    }

    #[test]
    fn recency_bias_concentrates_on_recent_targets() {
        let n = 3000;
        let g = layered_citation(n, 4, 3, 0.2, 5);
        // Count edges whose endpoints are close in time (within 10% of n).
        let close = g
            .edges()
            .filter(|e| (e.v.index() as i64 - e.u.index() as i64).unsigned_abs() < (n / 10) as u64)
            .count();
        assert!(
            close as f64 > 0.5 * g.edge_count() as f64,
            "recency bias should make most citations temporally local"
        );
    }

    #[test]
    fn determinism() {
        assert_eq!(layered_citation(500, 4, 3, 0.3, 9), layered_citation(500, 4, 3, 0.3, 9));
    }
}
