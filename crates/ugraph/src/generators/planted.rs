//! Planted-partition (stochastic block model) graphs with ground-truth
//! community labels.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// A planted-partition graph with its ground-truth labelling.
#[derive(Clone, Debug)]
pub struct PlantedPartitionGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `community[v]` is the planted community index of vertex `v`.
    pub community: Vec<usize>,
    /// Number of planted communities.
    pub community_count: usize,
}

/// Generate a planted-partition graph.
///
/// `sizes[i]` vertices belong to community `i`; an intra-community pair is an
/// edge with probability `p_in` and an inter-community pair with probability
/// `p_out`. With `p_in >> p_out` the planted blocks are the dense
/// components-of-interest the paper's community figures rely on.
pub fn planted_partition(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartitionGraph {
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = sizes.iter().sum();
    let mut community = Vec::with_capacity(n);
    for (c, &size) in sizes.iter().enumerate() {
        community.extend(std::iter::repeat(c).take(size));
    }
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::new();
    if n > 0 {
        builder.ensure_vertex(n - 1);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community[u] == community[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                builder.add_edge(u as u32, v as u32);
            }
        }
    }
    PlantedPartitionGraph { graph: builder.build(), community, community_count: sizes.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_sizes() {
        let g = planted_partition(&[10, 20, 5], 0.5, 0.01, 3);
        assert_eq!(g.graph.vertex_count(), 35);
        assert_eq!(g.community_count, 3);
        assert_eq!(g.community.iter().filter(|&&c| c == 1).count(), 20);
    }

    #[test]
    fn intra_density_exceeds_inter_density() {
        let g = planted_partition(&[40, 40], 0.3, 0.01, 11);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.graph.edges() {
            if g.community[e.u.index()] == g.community[e.v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // 0.3 vs 0.01 with equal pair counts: intra should dominate clearly.
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn zero_probabilities_give_empty_graph() {
        let g = planted_partition(&[5, 5], 0.0, 0.0, 1);
        assert_eq!(g.graph.edge_count(), 0);
        assert_eq!(g.graph.vertex_count(), 10);
    }
}
