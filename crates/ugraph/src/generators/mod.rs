//! Deterministic random-graph generators.
//!
//! These generators stand in for the SNAP datasets of the paper's Table I
//! (see `DESIGN.md` §4). Every generator is parameterized by an explicit seed
//! and uses the ChaCha PRNG, so the same call always returns the same graph on
//! every platform — a requirement for reproducible figures and benchmarks.
//!
//! | Generator | Models | Stands in for |
//! |-----------|--------|----------------|
//! | [`erdos_renyi`] | homogeneous sparse noise | background edges |
//! | [`barabasi_albert`] | fixed-m preferential attachment | hub-heavy background graphs |
//! | [`preferential_attachment`] | varied-m preferential attachment, one dominant core with a shell gradient | WikiVote, Wikipedia |
//! | [`watts_strogatz`] | ring lattice + rewiring, high clustering | PPI-like graphs |
//! | [`planted_partition`] | non-overlapping communities (SBM) | Amazon-style communities |
//! | [`overlapping_communities`] | soft community affiliations with per-vertex scores | DBLP(sub) of Fig. 8 |
//! | [`collaboration_graph`] | unions of small cliques around repeated co-authorships | GrQc, Astro, DBLP |
//! | [`layered_citation`] | time-layered sparse citations | Cit-Patent |
//! | [`hub_periphery_community`] | one community with hub / dense / periphery roles | Amazon community of Fig. 9 |
//! | [`rmat`] | Graph500 recursive-matrix skew, heavy-tailed hubs | scale-ladder stress graphs (1k–10M+ edges) |
//! | [`lfr`] | power-law degrees + power-law communities, tunable mixing | large labelled community benchmarks |

mod barabasi_albert;
mod citation;
mod collaboration;
mod erdos_renyi;
mod lfr;
mod overlapping;
mod planted;
mod rmat;
mod roles;
mod watts_strogatz;

pub use barabasi_albert::{barabasi_albert, preferential_attachment};
pub use citation::layered_citation;
pub use collaboration::{collaboration_graph, CollaborationConfig};
pub use erdos_renyi::erdos_renyi;
pub use lfr::{lfr, lfr_with, LfrConfig, LfrGraph};
pub use overlapping::{
    overlapping_communities, OverlappingCommunityConfig, OverlappingCommunityGraph,
};
pub use planted::{planted_partition, PlantedPartitionGraph};
pub use rmat::{rmat, rmat_with, RmatConfig};
pub use roles::{hub_periphery_community, HubPeripheryGraph, PlantedRole};
pub use watts_strogatz::watts_strogatz;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Create the deterministic PRNG used by all generators in this module.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi(200, 0.02, 7);
        let b = erdos_renyi(200, 0.02, 7);
        assert_eq!(a, b);
        let a = barabasi_albert(300, 3, 11);
        let b = barabasi_albert(300, 3, 11);
        assert_eq!(a, b);
        let a = watts_strogatz(100, 6, 0.1, 3);
        let b = watts_strogatz(100, 6, 0.1, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(200, 0.05, 1);
        let b = erdos_renyi(200, 0.05, 2);
        assert_ne!(a, b);
    }
}
