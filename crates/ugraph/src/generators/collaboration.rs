//! Collaboration-network generator: unions of small cliques.
//!
//! Co-authorship graphs (the paper's GrQc, Astro and DBLP datasets) are
//! naturally unions of cliques — every paper contributes a clique over its
//! authors — with heavy-tailed author productivity. That construction creates
//! *several disconnected dense K-Cores* (research groups that never co-author
//! across groups), which is exactly the multi-peak K-Core landscape the paper
//! shows for GrQc in Figure 6(c), as opposed to the single dominant core of a
//! preferential-attachment graph.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Configuration for [`collaboration_graph`].
#[derive(Clone, Debug)]
pub struct CollaborationConfig {
    /// Total number of authors (vertices).
    pub authors: usize,
    /// Number of papers (cliques) to generate.
    pub papers: usize,
    /// Minimum authors per paper.
    pub min_authors_per_paper: usize,
    /// Maximum authors per paper.
    pub max_authors_per_paper: usize,
    /// Number of research groups. Authors are split into groups and papers are
    /// written within a group with probability `intra_group_prob`, otherwise
    /// across two groups.
    pub groups: usize,
    /// Probability that a paper's authors all come from one group.
    pub intra_group_prob: f64,
    /// Groups are chunked into blocks of this many groups; cross-group papers
    /// only ever pair groups of the same block, so distinct blocks remain
    /// disconnected components (real co-authorship graphs such as GrQc have
    /// many nontrivial connected components).
    pub groups_per_component: usize,
    /// Number of "prolific hub" groups that receive extra dense paper series
    /// (these become the tall peaks of the K-Core terrain).
    pub dense_groups: usize,
    /// Extra papers per dense group, written among that group's most prolific
    /// authors.
    pub dense_group_extra_papers: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CollaborationConfig {
    fn default() -> Self {
        CollaborationConfig {
            authors: 5_000,
            papers: 4_000,
            min_authors_per_paper: 2,
            max_authors_per_paper: 6,
            groups: 50,
            intra_group_prob: 0.9,
            groups_per_component: 8,
            dense_groups: 5,
            dense_group_extra_papers: 60,
            seed: 0xc0ffee,
        }
    }
}

/// Generate a collaboration (co-authorship) graph per `config`.
pub fn collaboration_graph(config: &CollaborationConfig) -> CsrGraph {
    assert!(config.groups >= 1 && config.authors >= config.groups);
    assert!(config.min_authors_per_paper >= 2);
    assert!(config.max_authors_per_paper >= config.min_authors_per_paper);
    let mut rng = super::rng(config.seed);
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(config.authors - 1);

    let group_size = config.authors / config.groups;
    let block_size = config.groups_per_component.max(1);
    let group_members = |g: usize| -> std::ops::Range<usize> {
        let start = g * group_size;
        let end = if g == config.groups - 1 { config.authors } else { (g + 1) * group_size };
        start..end
    };

    let add_clique = |builder: &mut GraphBuilder, members: &[usize]| {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                builder.add_edge(members[i] as u32, members[j] as u32);
            }
        }
    };

    let pick_from_group = |rng: &mut rand_chacha::ChaCha8Rng, g: usize, count: usize| {
        let range = group_members(g);
        let len = range.end - range.start;
        let mut members = Vec::with_capacity(count);
        let mut guard = 0usize;
        while members.len() < count.min(len) && guard < 100 * count {
            // Productivity is skewed: prefer low offsets within the group
            // (quadratic bias), modelling a few prolific authors per group.
            let r: f64 = rng.gen::<f64>();
            let offset = ((r * r) * len as f64) as usize;
            let author = range.start + offset.min(len - 1);
            if !members.contains(&author) {
                members.push(author);
            }
            guard += 1;
        }
        members
    };

    for _ in 0..config.papers {
        let count = rng.gen_range(config.min_authors_per_paper..=config.max_authors_per_paper);
        let g1 = rng.gen_range(0..config.groups);
        let members = if rng.gen_bool(config.intra_group_prob) {
            pick_from_group(&mut rng, g1, count)
        } else {
            // Cross-group paper: split authors between two groups of the same
            // block, so different blocks stay disconnected.
            let block_start = (g1 / block_size) * block_size;
            let block_end = (block_start + block_size).min(config.groups);
            let g2 = rng.gen_range(block_start..block_end);
            let half = count / 2;
            let mut m = pick_from_group(&mut rng, g1, count - half);
            m.extend(pick_from_group(&mut rng, g2, half));
            m.sort_unstable();
            m.dedup();
            m
        };
        if members.len() >= 2 {
            add_clique(&mut builder, &members);
        }
    }

    // Dense groups: an extra series of papers among each dense group's most
    // prolific authors, producing high-K cores.
    for dense in 0..config.dense_groups.min(config.groups) {
        let g = dense * (config.groups / config.dense_groups.max(1)).max(1);
        let range = group_members(g.min(config.groups - 1));
        let prolific: Vec<usize> =
            range.clone().take(((range.end - range.start) / 3).max(4)).collect();
        for _ in 0..config.dense_group_extra_papers {
            let count =
                rng.gen_range(config.min_authors_per_paper..=config.max_authors_per_paper.max(4));
            let mut members = Vec::with_capacity(count);
            let mut guard = 0;
            while members.len() < count.min(prolific.len()) && guard < 100 * count {
                let author = prolific[rng.gen_range(0..prolific.len())];
                if !members.contains(&author) {
                    members.push(author);
                }
                guard += 1;
            }
            if members.len() >= 2 {
                add_clique(&mut builder, &members);
            }
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    fn small_config() -> CollaborationConfig {
        CollaborationConfig {
            authors: 600,
            papers: 500,
            groups: 12,
            groups_per_component: 4,
            dense_groups: 3,
            dense_group_extra_papers: 30,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn produces_clustered_sparse_graph() {
        let g = collaboration_graph(&small_config());
        assert_eq!(g.vertex_count(), 600);
        assert!(g.edge_count() > 500, "papers should contribute cliques");
        // Co-authorship graphs are sparse overall.
        assert!(g.average_degree() < 40.0);
    }

    #[test]
    fn graph_has_multiple_nontrivial_components() {
        // With 12 groups and 90% intra-group papers, several groups stay
        // disconnected from each other — the multi-peak structure of GrQc.
        let g = collaboration_graph(&small_config());
        let cc = connected_components(&g);
        let nontrivial = cc.sizes.iter().filter(|&&s| s >= 10).count();
        assert!(nontrivial >= 2, "expected several sizable components, got {nontrivial}");
    }

    #[test]
    fn determinism() {
        let a = collaboration_graph(&small_config());
        let b = collaboration_graph(&small_config());
        assert_eq!(a, b);
    }
}
