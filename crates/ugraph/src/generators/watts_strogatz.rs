//! Watts–Strogatz small-world graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Generate a Watts–Strogatz small-world graph.
///
/// Vertices are placed on a ring, each connected to its `k` nearest neighbors
/// (`k` must be even), and every lattice edge is rewired to a uniformly random
/// target with probability `beta`. Low `beta` keeps the high clustering of the
/// lattice while the rewired shortcuts shrink path lengths — a reasonable
/// analog for biological interaction networks such as the paper's PPI dataset.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k % 2 == 0, "lattice degree k must be even");
    assert!(k < n, "lattice degree must be smaller than the vertex count");
    assert!((0.0..=1.0).contains(&beta), "rewiring probability must be in [0, 1]");
    let mut rng = super::rng(seed);
    let mut builder = GraphBuilder::with_capacity(n * k / 2);
    if n > 0 {
        builder.ensure_vertex(n - 1);
    }
    if n == 0 || k == 0 {
        return builder.build();
    }

    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            let (mut a, mut b) = (u as u32, v as u32);
            if rng.gen_bool(beta) {
                // Rewire the far endpoint to a random vertex distinct from `u`.
                let mut target = rng.gen_range(0..n) as u32;
                let mut guard = 0;
                while target == a && guard < 32 {
                    target = rng.gen_range(0..n) as u32;
                    guard += 1;
                }
                b = target;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            builder.add_edge(a, b);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let n = 30;
        let k = 4;
        let g = watts_strogatz(n, k, 0.0, 5);
        assert_eq!(g.vertex_count(), n);
        assert_eq!(g.edge_count(), n * k / 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), k);
        }
    }

    #[test]
    fn rewiring_keeps_edge_count_close() {
        let n = 200;
        let k = 6;
        let g = watts_strogatz(n, k, 0.2, 8);
        // Rewiring can create duplicates which are deduplicated, so the edge
        // count can only shrink, and not by much.
        assert!(g.edge_count() <= n * k / 2);
        assert!(g.edge_count() as f64 > 0.9 * (n * k / 2) as f64);
    }

    #[test]
    fn small_world_stays_mostly_connected() {
        let g = watts_strogatz(500, 6, 0.1, 21);
        let cc = connected_components(&g);
        let largest = cc.sizes.iter().copied().max().unwrap();
        assert!(largest as f64 > 0.95 * 500.0);
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }
}
