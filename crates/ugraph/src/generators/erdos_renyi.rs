//! Erdős–Rényi `G(n, p)` random graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::Rng;

/// Sample a `G(n, p)` graph with the geometric skipping method, which runs in
/// `O(n + |E|)` expected time instead of `O(n²)`.
///
/// * `n` — number of vertices.
/// * `p` — independent probability of each of the `C(n, 2)` edges.
/// * `seed` — PRNG seed.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1]");
    let mut builder = GraphBuilder::new();
    if n > 0 {
        builder.ensure_vertex(n - 1);
    }
    if n < 2 || p == 0.0 {
        return builder.build();
    }
    let mut rng = super::rng(seed);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                builder.add_edge(u, v);
            }
        }
        return builder.build();
    }

    // Geometric skipping over the virtual list of all C(n,2) pairs.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            builder.add_edge(w as u32, v as u32);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_probability() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        // Allow 15% relative slack: variance of a binomial with ~4000 trials.
        assert!(
            (actual - expected).abs() < 0.15 * expected,
            "edge count {actual} too far from expectation {expected}"
        );
        assert_eq!(g.vertex_count(), n);
    }

    #[test]
    fn extreme_probabilities() {
        let g = erdos_renyi(50, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 50);
        let g = erdos_renyi(10, 1.0, 1);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(erdos_renyi(0, 0.5, 1).vertex_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).vertex_count(), 1);
        assert_eq!(erdos_renyi(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        erdos_renyi(10, 1.5, 1);
    }
}
