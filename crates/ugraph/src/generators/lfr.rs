//! LFR-style benchmark graphs: power-law degrees, power-law community sizes,
//! and a tunable mixing parameter.
//!
//! This is the configuration-model variant of the Lancichinetti–Fortunato–
//! Radicchi benchmark. Degrees and community sizes are drawn from bounded
//! power laws; each vertex spends a `1 - mu` fraction of its degree on stubs
//! paired *inside* its community and the remaining `mu` fraction on stubs
//! paired globally. Low `mu` yields crisp planted communities, `mu → 1`
//! dissolves them into noise — which is exactly the knob the paper's
//! community-quality figures sweep. Unlike [`planted_partition`], which is
//! `O(n²)`, stub pairing is linear in the number of edges, so LFR graphs
//! scale to the multi-million-edge rungs of the benchmark ladder.
//!
//! [`planted_partition`]: super::planted_partition

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the LFR-style generator (see [`lfr_with`]).
#[derive(Clone, Debug, PartialEq)]
pub struct LfrConfig {
    /// Number of vertices.
    pub n: usize,
    /// Mixing parameter in `[0, 1]`: the expected fraction of each vertex's
    /// degree that leaves its community. `0.0` is fully intra-community.
    pub mu: f64,
    /// Exponent of the degree power law (typical LFR settings use 2–3).
    pub tau1: f64,
    /// Exponent of the community-size power law (typically 1–2).
    pub tau2: f64,
    /// Smallest sampled degree (`≥ 1`).
    pub min_degree: usize,
    /// Largest sampled degree (`≥ min_degree`, `< n`).
    pub max_degree: usize,
    /// Smallest community size (`> max intra-degree` is enforced per vertex
    /// by capping, not by resampling).
    pub min_community: usize,
    /// Largest community size (`≥ min_community`, `≤ n`).
    pub max_community: usize,
    /// PRNG seed (ChaCha8; the same config always yields the same graph).
    pub seed: u64,
}

impl LfrConfig {
    /// A reasonable default parameterization at `n` vertices: `tau1 = 2.5`,
    /// `tau2 = 1.5`, degrees in `[8, √n·4]`, community sizes in
    /// `[max_degree, 4·max_degree]`.
    pub fn standard(n: usize, mu: f64, seed: u64) -> Self {
        let max_degree = ((n as f64).sqrt() as usize * 4).clamp(8, n.saturating_sub(1).max(1));
        let min_community = max_degree.min(n);
        LfrConfig {
            n,
            mu,
            tau1: 2.5,
            tau2: 1.5,
            min_degree: 8.min(max_degree),
            max_degree,
            min_community,
            max_community: (min_community * 4).min(n),
            seed,
        }
    }
}

/// An LFR-style graph with its ground-truth community labelling.
#[derive(Clone, Debug)]
pub struct LfrGraph {
    /// The generated graph.
    pub graph: CsrGraph,
    /// `community[v]` is the planted community index of vertex `v`.
    pub community: Vec<usize>,
    /// Number of planted communities.
    pub community_count: usize,
}

/// Sample an LFR-style graph with [`LfrConfig::standard`] parameters.
///
/// * `n` — number of vertices.
/// * `mu` — mixing parameter in `[0, 1]` (fraction of inter-community stubs).
/// * `seed` — PRNG seed.
///
/// Determinism: the same `(n, mu, seed)` always produces the same graph and
/// labelling on every platform — generation is single-threaded ChaCha8 and
/// CSR construction canonicalizes edge order.
///
/// ```
/// use ugraph::generators::lfr;
///
/// let a = lfr(1_000, 0.1, 42);
/// let b = lfr(1_000, 0.1, 42);
/// assert_eq!(a.graph, b.graph);            // same seed ⇒ identical graph
/// assert_eq!(a.community, b.community);    // ... and identical labelling
/// assert_eq!(a.graph.vertex_count(), 1_000);
/// assert!(a.community_count > 1);
/// assert_ne!(a.graph, lfr(1_000, 0.1, 43).graph);
/// ```
pub fn lfr(n: usize, mu: f64, seed: u64) -> LfrGraph {
    lfr_with(&LfrConfig::standard(n, mu, seed))
}

/// Sample an LFR-style graph with explicit parameters.
///
/// # Panics
///
/// Panics if `n == 0`, `mu` is outside `[0, 1]`, a power-law exponent is not
/// finite, or a degree/community bound is inverted or out of range.
pub fn lfr_with(config: &LfrConfig) -> LfrGraph {
    let &LfrConfig {
        n,
        mu,
        tau1,
        tau2,
        min_degree,
        max_degree,
        min_community,
        max_community,
        seed,
    } = config;
    assert!(n > 0, "n must be positive");
    assert!((0.0..=1.0).contains(&mu), "mu must be in [0, 1], got {mu}");
    assert!(tau1.is_finite() && tau2.is_finite(), "power-law exponents must be finite");
    assert!(
        (1..=max_degree).contains(&min_degree) && max_degree < n.max(2),
        "need 1 ≤ min_degree ≤ max_degree < n"
    );
    assert!(
        (1..=max_community).contains(&min_community) && max_community <= n,
        "need 1 ≤ min_community ≤ max_community ≤ n"
    );

    let mut rng = super::rng(seed);

    // 1. Power-law degree sequence.
    let degrees: Vec<usize> =
        (0..n).map(|_| power_law(&mut rng, min_degree, max_degree, tau1)).collect();

    // 2. Power-law community sizes covering all n vertices (the last
    //    community absorbs the remainder so sizes sum to exactly n).
    let mut sizes: Vec<usize> = Vec::new();
    let mut covered = 0usize;
    while covered < n {
        let mut size = power_law(&mut rng, min_community, max_community, tau2);
        if covered + size > n {
            size = n - covered;
        }
        covered += size;
        sizes.push(size);
    }
    let community_count = sizes.len();

    // 3. Assign vertices to communities by shuffling one slot per seat.
    let mut slots: Vec<usize> = Vec::with_capacity(n);
    for (c, &size) in sizes.iter().enumerate() {
        slots.extend(std::iter::repeat(c).take(size));
    }
    slots.shuffle(&mut rng);
    let community = slots;

    // 4. Split each degree into intra- and inter-community stubs. The intra
    //    share is capped at `community size - 1` (a vertex cannot have more
    //    distinct intra neighbours than its community has other members).
    let mut intra_stubs: Vec<Vec<u32>> = vec![Vec::new(); community_count];
    let mut inter_stubs: Vec<u32> = Vec::new();
    for v in 0..n {
        let c = community[v];
        let intra =
            (((1.0 - mu) * degrees[v] as f64).round() as usize).min(sizes[c].saturating_sub(1));
        let inter = degrees[v] - intra.min(degrees[v]);
        intra_stubs[c].extend(std::iter::repeat(v as u32).take(intra));
        inter_stubs.extend(std::iter::repeat(v as u32).take(inter));
    }

    // 5. Pair stubs. Odd leftovers are dropped; self loops and duplicate
    //    pairs are removed during CSR canonicalization, so realized degrees
    //    track — but do not exactly equal — the sampled sequence, as in every
    //    configuration-model sampler.
    let total_stubs: usize = intra_stubs.iter().map(Vec::len).sum::<usize>() + inter_stubs.len();
    let mut builder = GraphBuilder::with_capacity(total_stubs / 2);
    builder.ensure_vertex((n - 1) as u32);
    for stubs in &mut intra_stubs {
        pair_stubs(&mut rng, stubs, &mut builder);
    }
    pair_stubs(&mut rng, &mut inter_stubs, &mut builder);

    LfrGraph { graph: builder.build(), community, community_count }
}

/// Draw from a bounded continuous power law `p(x) ∝ x^(-tau)` on
/// `[min, max]` by inverse-CDF sampling, rounded to the nearest integer.
fn power_law(rng: &mut ChaCha8Rng, min: usize, max: usize, tau: f64) -> usize {
    if min == max {
        return min;
    }
    let r: f64 = rng.gen_range(0.0..1.0);
    let (lo, hi) = (min as f64, max as f64 + 1.0);
    let x = if (tau - 1.0).abs() < 1e-9 {
        // tau = 1 degenerates to a log-uniform draw.
        (lo.ln() + r * (hi.ln() - lo.ln())).exp()
    } else {
        let e = 1.0 - tau;
        (lo.powf(e) + r * (hi.powf(e) - lo.powf(e))).powf(1.0 / e)
    };
    (x.floor() as usize).clamp(min, max)
}

/// Shuffle `stubs` and connect consecutive pairs.
fn pair_stubs(rng: &mut ChaCha8Rng, stubs: &mut [u32], builder: &mut GraphBuilder) {
    stubs.shuffle(rng);
    for pair in stubs.chunks_exact(2) {
        builder.add_edge(pair[0], pair[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_with_labels() {
        let g = lfr(500, 0.2, 9);
        assert_eq!(g.graph.vertex_count(), 500);
        assert_eq!(g.community.len(), 500);
        assert!(g.community.iter().all(|&c| c < g.community_count));
        // Every community index is actually used.
        let mut seen = vec![false; g.community_count];
        for &c in &g.community {
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn low_mu_keeps_edges_inside_communities() {
        let g = lfr(2_000, 0.05, 4);
        let intra = g
            .graph
            .edges()
            .filter(|e| g.community[e.u.index()] == g.community[e.v.index()])
            .count();
        let frac = intra as f64 / g.graph.edge_count() as f64;
        assert!(frac > 0.8, "mu=0.05 should keep most edges intra, got {frac}");
    }

    #[test]
    fn high_mu_mixes_communities() {
        let g = lfr(2_000, 0.9, 4);
        let intra = g
            .graph
            .edges()
            .filter(|e| g.community[e.u.index()] == g.community[e.v.index()])
            .count();
        let frac = intra as f64 / g.graph.edge_count() as f64;
        assert!(frac < 0.5, "mu=0.9 should send most edges across, got {frac}");
    }

    #[test]
    fn degrees_follow_the_requested_range() {
        let config = LfrConfig {
            n: 1_000,
            mu: 0.1,
            tau1: 2.5,
            tau2: 1.5,
            min_degree: 4,
            max_degree: 60,
            min_community: 60,
            max_community: 240,
            seed: 17,
        };
        let g = lfr_with(&config);
        // Dedup and odd-stub drops erode degrees slightly; the ceiling holds.
        assert!(g.graph.max_degree() <= 60);
        assert!(g.graph.average_degree() > 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_mu_out_of_range() {
        lfr(100, 1.5, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_degree_bounds() {
        lfr_with(&LfrConfig { min_degree: 10, max_degree: 5, ..LfrConfig::standard(100, 0.1, 1) });
    }
}
