//! Union–find (disjoint set union) with path halving and union by size.
//!
//! This is the data structure behind Algorithm 1 and Algorithm 3 of the paper:
//! vertices (or edges) are processed in decreasing scalar order and merged
//! into growing components; the amortized `α(n)` cost per operation gives the
//! `O(|E|·α(n) + |V| log |V|)` bound quoted in Section II-B.
//!
//! In addition to the classic `find`/`union` API, the structure can track an
//! arbitrary *representative payload* per set — the scalar-tree algorithms use
//! it to remember the current tree root of each subtree, which is not
//! necessarily the union–find root.

/// Disjoint-set-union over `0..len` with an optional per-set payload.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Arbitrary payload attached to the set representative (e.g. the current
    /// scalar-tree root of the component). Indexed by union-find root.
    payload: Vec<u32>,
    set_count: usize,
}

impl UnionFind {
    /// Create `len` singleton sets. Each set's payload is initialized to its
    /// own element index.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "union-find domain too large for u32");
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            payload: (0..len as u32).collect(),
            set_count: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Find the representative of `x`'s set, with path halving.
    #[inline]
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Non-mutating find (no path compression); useful in tight read-only loops.
    #[inline]
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merge the sets of `a` and `b` (union by size).
    ///
    /// Returns the representative of the merged set, or `None` if they were
    /// already in the same set. The payload of the merged set is the payload
    /// of the larger constituent (callers that care set it explicitly with
    /// [`UnionFind::set_payload`] afterwards).
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.set_count -= 1;
        Some(big)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Payload currently attached to the set containing `x`.
    pub fn payload(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.payload[r] as usize
    }

    /// Attach payload `value` to the set containing `x`.
    pub fn set_payload(&mut self, x: usize, value: usize) {
        let r = self.find(x);
        self.payload[r] = value as u32;
    }

    /// Group all elements by their set representative.
    ///
    /// Returns a vector of groups; each group is sorted and groups are sorted
    /// by their smallest element, so the output is canonical.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.set_count(), 5);
        assert!(!uf.same_set(0, 1));
        assert!(uf.union(0, 1).is_some());
        assert!(uf.same_set(0, 1));
        assert_eq!(uf.set_count(), 4);
        assert_eq!(uf.set_size(1), 2);
        // Union within the same set is a no-op.
        assert!(uf.union(1, 0).is_none());
        assert_eq!(uf.set_count(), 4);
    }

    #[test]
    fn payload_tracks_merged_sets() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.payload(2), 2);
        uf.set_payload(2, 99);
        assert_eq!(uf.payload(2), 99);
        uf.union(2, 3);
        uf.set_payload(3, 7);
        assert_eq!(uf.payload(2), 7);
        assert_eq!(uf.payload(3), 7);
    }

    #[test]
    fn groups_are_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        for i in 0..10 {
            let r = uf.find_immutable(i);
            assert_eq!(r, uf.find(i));
        }
        assert_eq!(uf.set_count(), 1);
        assert_eq!(uf.set_size(0), 10);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
