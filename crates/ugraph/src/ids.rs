//! Strongly-typed vertex and edge identifiers.
//!
//! Both identifiers are thin wrappers around `u32` indices into the CSR
//! arrays. The paper's experiments go up to a few million vertices / tens of
//! millions of edges, comfortably within `u32`, and halving the index width
//! keeps the adjacency arrays (the hot data of Algorithms 1 and 3) denser in
//! cache.

use std::fmt;

/// Identifier of a vertex: an index in `0..graph.vertex_count()`.
///
/// `#[repr(transparent)]` guarantees the same layout as a bare `u32`, so a
/// `&[u32]` borrowed from a binary snapshot can be reinterpreted as
/// `&[VertexId]` without copying (the zero-copy contract of
/// [`crate::MappedCsrGraph`]).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of an undirected edge: an index in `0..graph.edge_count()`.
///
/// Each undirected edge has exactly one [`EdgeId`], regardless of direction;
/// the CSR structure maps both half-edges of an edge to the same id.
///
/// Like [`VertexId`], `#[repr(transparent)]` over `u32` makes the type safe to
/// reinterpret from snapshot bytes.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(i as u32)
    }
}

impl EdgeId {
    /// The index as a `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    fn from(v: usize) -> Self {
        VertexId::from_index(v)
    }
}

impl From<i32> for VertexId {
    /// Convenience conversion so integer literals work at call sites.
    ///
    /// # Panics
    /// Panics if `v` is negative.
    fn from(v: i32) -> Self {
        assert!(v >= 0, "vertex index must be non-negative");
        VertexId(v as u32)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId::from_index(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn conversions_from_integers() {
        assert_eq!(VertexId::from(3u32), VertexId(3));
        assert_eq!(VertexId::from(3usize), VertexId(3));
        assert_eq!(EdgeId::from(9u32), EdgeId(9));
        assert_eq!(EdgeId::from(9usize), EdgeId(9));
    }
}
