//! Dynamic-graph deltas: batched edge mutations over an immutable base.
//!
//! Every structure in this crate is frozen once built; this module is the
//! mutation boundary. A [`GraphDelta`] is a *validated batch* of edge
//! operations (insert / delete / reweight) with the same intake semantics as
//! [`crate::io::read_edge_list`]: endpoints are canonicalized to `u < v`,
//! self loops are dropped (but their vertices are kept), duplicate mentions
//! of the same edge are deduplicated **last-wins**, and non-finite weights
//! are rejected up front.
//!
//! A [`DeltaOverlay`] layers one or more batches over any
//! [`GraphStorage`] backend without touching it — the base may be an owned
//! [`CsrGraph`] or a read-only memory-mapped snapshot; the overlay records
//! per-edge deletion marks and a sorted set of inserted edges, plus the set
//! of *dirty* vertices (endpoints of every effective structural change),
//! which seeds the incremental-recompute paths downstream.
//!
//! [`DeltaOverlay::compact`] merges the overlay into a fresh canonical
//! [`CsrGraph`] **without a full edge re-sort**: the surviving base edges
//! (iterated in CSR order) and the inserted edges (kept sorted by the
//! overlay) are two already-sorted streams, so one linear merge produces the
//! canonical edge list directly. The result is bit-identical to building the
//! final edge list from scratch with [`crate::GraphBuilder`], and comes with
//! a new-edge-id → base-edge-id remap so per-edge results (triangle counts,
//! truss numbers) can be copied instead of recomputed for untouched edges.
//!
//! Vertices are never removed: like the builder's `ensure_vertex`, every
//! vertex *mentioned* by a delta (including by dropped self loops and
//! deletes of absent edges) exists in the compacted graph.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, VertexId};
use crate::storage::GraphStorage;

/// One kind of edge mutation carried by a [`GraphDelta`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add the edge if absent (a no-op, counted, when it already exists).
    Insert,
    /// Remove the edge if present (a no-op, counted, when it is absent).
    Delete,
    /// Re-weight the edge. The CSR stores no weights, so this is a tracked
    /// structural no-op: it is validated and counted but changes nothing.
    Reweight,
}

impl DeltaOp {
    /// Stable lower-case name (`insert` / `delete` / `reweight`).
    pub fn name(self) -> &'static str {
        match self {
            DeltaOp::Insert => "insert",
            DeltaOp::Delete => "delete",
            DeltaOp::Reweight => "reweight",
        }
    }

    /// Parse a name as produced by [`DeltaOp::name`]. Case-insensitive.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "insert" => Some(DeltaOp::Insert),
            "delete" => Some(DeltaOp::Delete),
            "reweight" => Some(DeltaOp::Reweight),
            _ => None,
        }
    }
}

/// One deduplicated, canonical (`u < v`) edge change.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeChange {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// The operation that *last* mentioned this edge in the batch.
    pub op: DeltaOp,
}

/// A validated, deduplicated batch of edge mutations.
///
/// Intake mirrors [`crate::io::read_edge_list`]: endpoints canonicalize to
/// `u < v`, self loops are dropped (their vertices still count as
/// mentioned), duplicate mentions of one edge keep only the **last**
/// operation, and weights must be finite (they are validated, counted, then
/// discarded — the graph is unweighted).
///
/// ```
/// use ugraph::delta::{DeltaOp, GraphDelta};
///
/// let mut d = GraphDelta::new();
/// d.push(DeltaOp::Insert, 0, 1);
/// d.push(DeltaOp::Delete, 1, 0); // same edge, reversed: last wins
/// d.push(DeltaOp::Insert, 2, 2); // self loop: dropped, vertex 2 kept
/// assert_eq!(d.len(), 1);
/// assert_eq!(d.changes()[0].op, DeltaOp::Delete);
/// assert_eq!(d.min_vertex_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    // Canonical (u, v) -> last op. BTreeMap keeps `changes()` sorted, which
    // keeps every downstream consumer deterministic.
    ops: BTreeMap<(VertexId, VertexId), DeltaOp>,
    min_vertex_count: usize,
    dropped_self_loops: usize,
    superseded: usize,
    reweights: usize,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// A batch applying one operation to every edge of `graph`, also
    /// claiming all of the graph's vertices as mentioned (so isolated
    /// vertices of a parsed batch survive into the compacted result).
    pub fn from_graph<G: GraphStorage + ?Sized>(op: DeltaOp, graph: &G) -> Self {
        let mut delta = GraphDelta::new();
        for e in graph.edges() {
            delta.push(op, e.u, e.v);
        }
        delta.min_vertex_count = delta.min_vertex_count.max(graph.vertex_count());
        delta
    }

    /// Record one edge mention. Self loops are dropped (and counted); a
    /// repeat mention of an edge supersedes the earlier operation.
    pub fn push(&mut self, op: DeltaOp, u: impl Into<VertexId>, v: impl Into<VertexId>) {
        let (u, v) = (u.into(), v.into());
        self.min_vertex_count = self.min_vertex_count.max(u.index() + 1).max(v.index() + 1);
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        if op == DeltaOp::Reweight {
            self.reweights += 1;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if self.ops.insert(key, op).is_some() {
            self.superseded += 1;
        }
    }

    /// Record one weighted edge mention. The weight must be finite; it is
    /// then discarded (the CSR stores no weights).
    pub fn push_weighted(
        &mut self,
        op: DeltaOp,
        u: impl Into<VertexId>,
        v: impl Into<VertexId>,
        weight: f64,
    ) -> Result<()> {
        if !weight.is_finite() {
            return Err(GraphError::NonFiniteScalar {
                what: "delta edge weight",
                index: self.len(),
                value: weight,
            });
        }
        self.push(op, u, v);
        Ok(())
    }

    /// The deduplicated changes, sorted by canonical endpoints.
    pub fn changes(&self) -> Vec<EdgeChange> {
        self.ops.iter().map(|(&(u, v), &op)| EdgeChange { u, v, op }).collect()
    }

    /// Number of deduplicated changes in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch carries no changes (it may still mention
    /// vertices, via dropped self loops).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// One more than the largest vertex id mentioned anywhere in the batch
    /// (including by dropped self loops), or 0 for an untouched batch.
    /// Mentioned vertices always exist in the compacted graph.
    pub fn min_vertex_count(&self) -> usize {
        self.min_vertex_count
    }

    /// Self-loop mentions dropped at intake.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Mentions superseded by a later mention of the same edge (last-wins).
    pub fn superseded(&self) -> usize {
        self.superseded
    }

    /// Reweight mentions recorded (tracked structural no-ops).
    pub fn reweights(&self) -> usize {
        self.reweights
    }
}

/// Counters describing what applying one or more batches actually did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaApplyStats {
    /// Edges inserted that were absent from the base and overlay.
    pub inserted: usize,
    /// Base edges newly marked deleted, plus overlay-inserted edges
    /// removed again.
    pub deleted: usize,
    /// Base edges whose deletion mark was cleared by a later insert.
    pub reinserted: usize,
    /// Inserts of edges that already existed (no-ops).
    pub redundant_inserts: usize,
    /// Deletes of edges that did not exist (no-ops).
    pub absent_deletes: usize,
    /// Reweight operations applied (structural no-ops; the CSR stores no
    /// weights).
    pub reweights: usize,
    /// Self-loop mentions dropped at batch intake.
    pub dropped_self_loops: usize,
    /// Batch mentions superseded by last-wins deduplication.
    pub superseded: usize,
}

impl DeltaApplyStats {
    /// Number of effective structural changes (edges whose presence
    /// changed). Zero means the compacted graph equals the base graph.
    pub fn structural_changes(&self) -> usize {
        self.inserted + self.deleted + self.reinserted
    }
}

/// The product of [`DeltaOverlay::compact`]: the new canonical graph plus
/// the provenance needed by incremental recomputation.
#[derive(Clone, Debug)]
pub struct CompactedDelta {
    /// The merged graph, bit-identical to a from-scratch
    /// [`crate::GraphBuilder`] build of the final edge list (with every
    /// mentioned vertex ensured).
    pub graph: CsrGraph,
    /// For each new edge id, the base edge id it survives from
    /// (`None` = freshly inserted). Length `graph.edge_count()`.
    pub base_edge: Vec<Option<EdgeId>>,
    /// Per-vertex dirty flags: `true` for endpoints of every effective
    /// structural change. Length `graph.vertex_count()`.
    pub dirty: Vec<bool>,
    /// What the applied batches actually did.
    pub stats: DeltaApplyStats,
}

impl CompactedDelta {
    /// Vertex ids flagged dirty, ascending.
    pub fn dirty_vertices(&self) -> Vec<VertexId> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| VertexId::from_index(i))
            .collect()
    }
}

/// Pending edge mutations layered over an immutable [`GraphStorage`] base.
///
/// The base is never modified — deletion marks and inserted edges live in
/// the overlay — so the same overlay shape works over an owned
/// [`CsrGraph`] (whose holder may then swap in the compacted result,
/// copy-on-write) and over a read-only [`crate::MappedCsrGraph`] (where the
/// compacted result becomes a new owned graph).
///
/// ```
/// use ugraph::delta::{DeltaOp, DeltaOverlay, GraphDelta};
/// use ugraph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new();
/// for (u, v) in [(0, 1), (1, 2), (2, 0)] {
///     b.add_edge(u, v);
/// }
/// let base = b.build();
///
/// let mut delta = GraphDelta::new();
/// delta.push(DeltaOp::Delete, 0, 1);
/// delta.push(DeltaOp::Insert, 1, 3);
///
/// let mut overlay = DeltaOverlay::new(&base);
/// overlay.apply(&delta);
/// assert_eq!(overlay.edge_count(), 3);
/// assert!(!overlay.has_edge(VertexId(0), VertexId(1)));
/// assert!(overlay.has_edge(VertexId(1), VertexId(3)));
///
/// let compacted = overlay.compact();
/// assert_eq!(compacted.graph.vertex_count(), 4);
/// assert_eq!(compacted.graph.edge_count(), 3);
/// ```
pub struct DeltaOverlay<'g, G: GraphStorage + ?Sized> {
    base: &'g G,
    /// Current vertex count: base count, grown by mentioned vertices.
    vertex_count: usize,
    /// Symmetric half-edge set of overlay-inserted edges. Sorted, which is
    /// what lets [`DeltaOverlay::compact`] merge instead of re-sort.
    inserts: BTreeSet<(VertexId, VertexId)>,
    /// Deletion marks, indexed by base edge id.
    deleted: Vec<bool>,
    deleted_count: usize,
    /// Dirty flags, indexed by (current) vertex id.
    dirty: Vec<bool>,
    stats: DeltaApplyStats,
}

impl<'g, G: GraphStorage + ?Sized> DeltaOverlay<'g, G> {
    /// An overlay with no pending changes over `base`.
    pub fn new(base: &'g G) -> Self {
        DeltaOverlay {
            base,
            vertex_count: base.vertex_count(),
            inserts: BTreeSet::new(),
            deleted: vec![false; base.edge_count()],
            deleted_count: 0,
            dirty: vec![false; base.vertex_count()],
            stats: DeltaApplyStats::default(),
        }
    }

    /// Apply one batch on top of whatever is already pending.
    pub fn apply(&mut self, delta: &GraphDelta) {
        self.grow_to(delta.min_vertex_count());
        self.stats.dropped_self_loops += delta.dropped_self_loops();
        self.stats.superseded += delta.superseded();
        for change in delta.changes() {
            let (u, v) = (change.u, change.v);
            match change.op {
                DeltaOp::Insert => match self.base_edge_between(u, v) {
                    Some(e) if self.deleted[e.index()] => {
                        self.deleted[e.index()] = false;
                        self.deleted_count -= 1;
                        self.stats.reinserted += 1;
                        self.mark_dirty(u, v);
                    }
                    Some(_) => self.stats.redundant_inserts += 1,
                    None => {
                        if self.inserts.insert((u, v)) {
                            self.inserts.insert((v, u));
                            self.stats.inserted += 1;
                            self.mark_dirty(u, v);
                        } else {
                            self.stats.redundant_inserts += 1;
                        }
                    }
                },
                DeltaOp::Delete => match self.base_edge_between(u, v) {
                    Some(e) if !self.deleted[e.index()] => {
                        self.deleted[e.index()] = true;
                        self.deleted_count += 1;
                        self.stats.deleted += 1;
                        self.mark_dirty(u, v);
                    }
                    Some(_) => self.stats.absent_deletes += 1,
                    None => {
                        if self.inserts.remove(&(u, v)) {
                            self.inserts.remove(&(v, u));
                            self.stats.deleted += 1;
                            self.mark_dirty(u, v);
                        } else {
                            self.stats.absent_deletes += 1;
                        }
                    }
                },
                DeltaOp::Reweight => self.stats.reweights += 1,
            }
        }
    }

    /// Current vertex count (base vertices plus newly mentioned ones).
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Current edge count (base edges minus deletions plus insertions).
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() - self.deleted_count + self.inserts.len() / 2
    }

    /// Whether the merged view contains edge `{u, v}`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        match self.base_edge_between(u, v) {
            Some(e) => !self.deleted[e.index()],
            None => {
                let key = if u < v { (u, v) } else { (v, u) };
                self.inserts.contains(&key)
            }
        }
    }

    /// Degree of `v` in the merged view. `O(degree)` (scans the base
    /// incident edges for deletion marks).
    pub fn degree(&self, v: VertexId) -> usize {
        let base = if v.index() < self.base.vertex_count() {
            self.base.incident_edge_slice(v).iter().filter(|e| !self.deleted[e.index()]).count()
        } else {
            0
        };
        base + self.insert_range(v).count()
    }

    /// Merged sorted neighbor list of `v` (allocates).
    pub fn neighbor_vec(&self, v: VertexId) -> Vec<VertexId> {
        let base: Vec<VertexId> = if v.index() < self.base.vertex_count() {
            self.base
                .neighbors(v)
                .filter(|(_, e)| !self.deleted[e.index()])
                .map(|(t, _)| t)
                .collect()
        } else {
            Vec::new()
        };
        let ins: Vec<VertexId> = self.insert_range(v).collect();
        // Both inputs are sorted and disjoint: a linear merge keeps order.
        let mut merged = Vec::with_capacity(base.len() + ins.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < ins.len() {
            if base[i] < ins[j] {
                merged.push(base[i]);
                i += 1;
            } else {
                merged.push(ins[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&base[i..]);
        merged.extend_from_slice(&ins[j..]);
        merged
    }

    /// True when `v` is an endpoint of an effective structural change.
    pub fn is_dirty(&self, v: VertexId) -> bool {
        self.dirty.get(v.index()).copied().unwrap_or(false)
    }

    /// Vertex ids flagged dirty, ascending.
    pub fn dirty_vertices(&self) -> Vec<VertexId> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| VertexId::from_index(i))
            .collect()
    }

    /// Counters for everything applied so far.
    pub fn stats(&self) -> DeltaApplyStats {
        self.stats
    }

    /// True when no pending change survives (the compacted graph would
    /// equal the base graph with [`DeltaOverlay::vertex_count`] vertices).
    pub fn is_structurally_unchanged(&self) -> bool {
        self.deleted_count == 0 && self.inserts.is_empty()
    }

    /// Merge the overlay into a fresh canonical [`CsrGraph`].
    ///
    /// Surviving base edges arrive in CSR (canonical) order and the insert
    /// set is kept sorted, so a single linear merge of the two streams
    /// yields the globally sorted edge list — no re-sort of the full edge
    /// set. The output is bit-identical to a from-scratch build of the
    /// final edge list.
    pub fn compact(&self) -> CompactedDelta {
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edge_count());
        let mut base_edge: Vec<Option<EdgeId>> = Vec::with_capacity(self.edge_count());
        let mut ins = self.inserts.iter().filter(|&&(a, b)| a < b).copied().peekable();
        for u in 0..self.base.vertex_count() {
            let u = VertexId::from_index(u);
            for (t, e) in self.base.neighbors(u) {
                if t < u || self.deleted[e.index()] {
                    continue;
                }
                while let Some(&(a, b)) = ins.peek() {
                    if (a, b) < (u, t) {
                        edges.push((a, b));
                        base_edge.push(None);
                        ins.next();
                    } else {
                        break;
                    }
                }
                edges.push((u, t));
                base_edge.push(Some(e));
            }
        }
        for (a, b) in ins {
            edges.push((a, b));
            base_edge.push(None);
        }
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "merge output must be canonical");
        let graph = CsrGraph::from_canonical_edges(self.vertex_count, edges);
        CompactedDelta { graph, base_edge, dirty: self.dirty.clone(), stats: self.stats }
    }

    fn grow_to(&mut self, vertex_count: usize) {
        if vertex_count > self.vertex_count {
            self.vertex_count = vertex_count;
            self.dirty.resize(vertex_count, false);
        }
    }

    fn mark_dirty(&mut self, u: VertexId, v: VertexId) {
        self.dirty[u.index()] = true;
        self.dirty[v.index()] = true;
    }

    /// The base edge between `u` and `v`, deleted or not, if the base has
    /// one. Out-of-base vertices have no base edges.
    fn base_edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let n = self.base.vertex_count();
        if u.index() >= n || v.index() >= n {
            return None;
        }
        self.base.find_edge(u, v)
    }

    /// Inserted neighbors of `v`, ascending (a range scan of the symmetric
    /// insert set).
    fn insert_range(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.inserts.range((v, VertexId(0))..=(v, VertexId(u32::MAX))).map(|&(_, t)| t)
    }
}

impl<'g, G: GraphStorage + ?Sized> std::fmt::Debug for DeltaOverlay<'g, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaOverlay")
            .field("vertex_count", &self.vertex_count)
            .field("edge_count", &self.edge_count())
            .field("inserted", &(self.inserts.len() / 2))
            .field("deleted", &self.deleted_count)
            .field("dirty", &self.dirty.iter().filter(|&&d| d).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::rmat;

    fn base_graph() -> CsrGraph {
        // Triangle 0-1-2 with a tail 2-3 and an island edge 4-5.
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// From-scratch oracle: builder build of the final edge list with all
    /// mentioned vertices ensured.
    fn rebuild(vertex_count: usize, edges: &BTreeSet<(u32, u32)>) -> CsrGraph {
        let mut b = GraphBuilder::new();
        if vertex_count > 0 {
            b.ensure_vertex(vertex_count as u32 - 1);
        }
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn intake_dedups_last_wins_and_drops_self_loops() {
        let mut d = GraphDelta::new();
        d.push(DeltaOp::Insert, 0, 1);
        d.push(DeltaOp::Delete, 1, 0);
        d.push(DeltaOp::Insert, 7, 7);
        d.push(DeltaOp::Reweight, 2, 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d.superseded(), 1);
        assert_eq!(d.dropped_self_loops(), 1);
        assert_eq!(d.reweights(), 1);
        assert_eq!(d.min_vertex_count(), 8);
        let changes = d.changes();
        assert_eq!(changes[0], EdgeChange { u: VertexId(0), v: VertexId(1), op: DeltaOp::Delete });
        assert_eq!(
            changes[1],
            EdgeChange { u: VertexId(2), v: VertexId(3), op: DeltaOp::Reweight }
        );
    }

    #[test]
    fn weights_must_be_finite() {
        let mut d = GraphDelta::new();
        d.push_weighted(DeltaOp::Insert, 0, 1, 2.5).unwrap();
        let err = d.push_weighted(DeltaOp::Insert, 1, 2, f64::NAN).unwrap_err();
        assert!(matches!(err, GraphError::NonFiniteScalar { .. }));
        assert_eq!(d.len(), 1, "the rejected mention must not be recorded");
    }

    #[test]
    fn overlay_merged_view_reflects_inserts_and_deletes() {
        let base = base_graph();
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Delete, 0, 1);
        delta.push(DeltaOp::Insert, 3, 5);
        delta.push(DeltaOp::Insert, 0, 6);
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&delta);

        assert_eq!(overlay.vertex_count(), 7);
        assert_eq!(overlay.edge_count(), 6);
        assert!(!overlay.has_edge(VertexId(0), VertexId(1)));
        assert!(overlay.has_edge(VertexId(3), VertexId(5)));
        assert!(overlay.has_edge(VertexId(6), VertexId(0)));
        assert_eq!(overlay.degree(VertexId(0)), 2); // lost 1, gained 6
        assert_eq!(overlay.neighbor_vec(VertexId(0)), vec![VertexId(2), VertexId(6)]);
        assert_eq!(overlay.neighbor_vec(VertexId(6)), vec![VertexId(0)]);
        assert_eq!(
            overlay.dirty_vertices(),
            vec![VertexId(0), VertexId(1), VertexId(3), VertexId(5), VertexId(6)]
        );
        let stats = overlay.stats();
        assert_eq!((stats.inserted, stats.deleted), (2, 1));
        assert_eq!(stats.structural_changes(), 3);
    }

    #[test]
    fn redundant_and_absent_operations_are_counted_no_ops() {
        let base = base_graph();
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Insert, 0, 1); // already present
        delta.push(DeltaOp::Delete, 0, 3); // absent
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&delta);
        assert!(overlay.is_structurally_unchanged());
        assert!(overlay.dirty_vertices().is_empty());
        let stats = overlay.stats();
        assert_eq!((stats.redundant_inserts, stats.absent_deletes), (1, 1));
        assert_eq!(overlay.compact().graph, base);
    }

    #[test]
    fn reinsert_clears_the_deletion_mark() {
        let base = base_graph();
        let mut overlay = DeltaOverlay::new(&base);
        let mut del = GraphDelta::new();
        del.push(DeltaOp::Delete, 0, 1);
        overlay.apply(&del);
        let mut ins = GraphDelta::new();
        ins.push(DeltaOp::Insert, 0, 1);
        overlay.apply(&ins);
        assert!(overlay.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(overlay.stats().reinserted, 1);
        assert_eq!(overlay.compact().graph, base);
        // The edge's presence toggled twice: its endpoints stay dirty.
        assert!(overlay.is_dirty(VertexId(0)) && overlay.is_dirty(VertexId(1)));
    }

    #[test]
    fn compact_matches_from_scratch_build_and_remaps_edges() {
        let base = base_graph();
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Delete, 1, 2);
        delta.push(DeltaOp::Insert, 1, 3);
        delta.push(DeltaOp::Insert, 6, 2);
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&delta);
        let compacted = overlay.compact();

        let mut final_edges: BTreeSet<(u32, u32)> = base.edges().map(|e| (e.u.0, e.v.0)).collect();
        final_edges.remove(&(1, 2));
        final_edges.insert((1, 3));
        final_edges.insert((2, 6));
        assert_eq!(compacted.graph, rebuild(7, &final_edges));
        compacted.graph.check_invariants().unwrap();

        // Every surviving edge maps back to the base edge with the same
        // endpoints; inserted edges map to None.
        assert_eq!(compacted.base_edge.len(), compacted.graph.edge_count());
        for e in compacted.graph.edges() {
            match compacted.base_edge[e.id.index()] {
                Some(old) => assert_eq!(base.endpoints(old), (e.u, e.v)),
                None => assert!([(1, 3), (2, 6)].contains(&(e.u.0, e.v.0))),
            }
        }
        assert_eq!(
            compacted.dirty_vertices(),
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(6)]
        );
    }

    #[test]
    fn mentioned_vertices_survive_even_without_edges() {
        let base = base_graph();
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Insert, 9, 9); // dropped self loop, vertex kept
        let mut overlay = DeltaOverlay::new(&base);
        overlay.apply(&delta);
        assert!(overlay.is_structurally_unchanged());
        let compacted = overlay.compact();
        assert_eq!(compacted.graph.vertex_count(), 10);
        assert_eq!(compacted.graph.edge_count(), base.edge_count());
        assert_eq!(compacted.stats.dropped_self_loops, 1);
    }

    #[test]
    fn from_graph_claims_every_vertex_of_the_batch() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(4);
        let batch = b.build();
        let delta = GraphDelta::from_graph(DeltaOp::Insert, &batch);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.min_vertex_count(), 5);
    }

    #[test]
    fn random_delta_sequences_compact_to_the_from_scratch_build() {
        // Deterministic pseudo-random op stream over a generated base;
        // the oracle is a plain edge-set rebuild.
        let base = rmat(6, 120, 99);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edges: BTreeSet<(u32, u32)> = base.edges().map(|e| (e.u.0, e.v.0)).collect();
        let mut vertex_count = base.vertex_count();
        let mut overlay = DeltaOverlay::new(&base);
        for _ in 0..20 {
            let mut delta = GraphDelta::new();
            for _ in 0..15 {
                let r = step();
                let u = (r >> 8) as u32 % 80;
                let v = (r >> 40) as u32 % 80;
                let op = if r % 3 == 0 {
                    DeltaOp::Delete
                } else if r % 3 == 1 {
                    DeltaOp::Insert
                } else {
                    DeltaOp::Reweight
                };
                delta.push(op, u, v);
                vertex_count = vertex_count.max(u as usize + 1).max(v as usize + 1);
            }
            for change in delta.changes() {
                let key = (change.u.0, change.v.0);
                match change.op {
                    DeltaOp::Insert => {
                        edges.insert(key);
                    }
                    DeltaOp::Delete => {
                        edges.remove(&key);
                    }
                    DeltaOp::Reweight => {}
                }
            }
            overlay.apply(&delta);
        }
        let compacted = overlay.compact();
        assert_eq!(compacted.graph, rebuild(vertex_count, &edges));
        compacted.graph.check_invariants().unwrap();
        assert_eq!(compacted.graph.edge_count(), overlay.edge_count());
        for e in compacted.graph.edges() {
            if let Some(old) = compacted.base_edge[e.id.index()] {
                assert_eq!(base.endpoints(old), (e.u, e.v));
            }
        }
    }
}
