//! Traversals and connectivity: BFS orderings, connected components,
//! shortest-path distances (unweighted) and k-hop neighborhoods.

use crate::ids::VertexId;
use crate::storage::GraphStorage;
use std::collections::VecDeque;

/// Breadth-first visit order from `source`, restricted to `source`'s
/// connected component.
pub fn bfs_order<G: GraphStorage + ?Sized>(graph: &G, source: VertexId) -> Vec<VertexId> {
    let mut visited = vec![false; graph.vertex_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &n in graph.neighbor_slice(v) {
            if !visited[n.index()] {
                visited[n.index()] = true;
                queue.push_back(n);
            }
        }
    }
    order
}

/// Unweighted single-source shortest-path distances (hop counts).
///
/// Unreachable vertices get `usize::MAX`.
pub fn bfs_distances<G: GraphStorage + ?Sized>(graph: &G, source: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &n in graph.neighbor_slice(v) {
            if dist[n.index()] == usize::MAX {
                dist[n.index()] = d + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// All vertices within `k` hops of `center`, including `center` itself.
///
/// This is the "k-hop neighborhood" `N(v)` used by the paper's Local
/// Correlation Index (Section II-F); the paper fixes `k = 1` in experiments
/// but we keep it general.
pub fn k_hop_neighborhood<G: GraphStorage + ?Sized>(
    graph: &G,
    center: VertexId,
    k: usize,
) -> Vec<VertexId> {
    let mut dist = vec![usize::MAX; graph.vertex_count()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[center.index()] = 0;
    queue.push_back(center);
    out.push(center);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d == k {
            continue;
        }
        for &n in graph.neighbor_slice(v) {
            if dist[n.index()] == usize::MAX {
                dist[n.index()] = d + 1;
                out.push(n);
                queue.push_back(n);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The result of a connected-components labelling.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// `label[v]` is the component index of vertex `v`, in `0..count`.
    pub label: Vec<usize>,
    /// Number of connected components.
    pub count: usize,
    /// Size (vertex count) of each component.
    pub sizes: Vec<usize>,
}

impl ConnectedComponents {
    /// Indices of vertices in the largest component (ties broken by smallest
    /// label). Empty for the empty graph.
    pub fn largest_component(&self) -> Vec<VertexId> {
        if self.count == 0 {
            return Vec::new();
        }
        let best = self
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap();
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == best)
            .map(|(v, _)| VertexId::from_index(v))
            .collect()
    }

    /// Whether vertices `a` and `b` are in the same component.
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.label[a.index()] == self.label[b.index()]
    }
}

/// Label the connected components of `graph`.
///
/// Components are numbered in order of their smallest vertex, so the labelling
/// is canonical.
pub fn connected_components<G: GraphStorage + ?Sized>(graph: &G) -> ConnectedComponents {
    let n = graph.vertex_count();
    let mut label = vec![usize::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let comp = sizes.len();
        sizes.push(0usize);
        label[start] = comp;
        queue.push_back(VertexId::from_index(start));
        while let Some(v) = queue.pop_front() {
            sizes[comp] += 1;
            for &nb in graph.neighbor_slice(v) {
                if label[nb.index()] == usize::MAX {
                    label[nb.index()] = comp;
                    queue.push_back(nb);
                }
            }
        }
    }
    ConnectedComponents { count: sizes.len(), label, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_components() -> crate::csr::CsrGraph {
        // Component A: 0-1-2 path; component B: 3-4 edge; vertex 5 isolated.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.ensure_vertex(5);
        b.build()
    }

    #[test]
    fn bfs_order_covers_component() {
        let g = two_components();
        let order = bfs_order(&g, VertexId(0));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], VertexId(0));
        assert!(order.contains(&VertexId(2)));
        assert!(!order.contains(&VertexId(3)));
    }

    #[test]
    fn bfs_distances_hop_counts() {
        let g = two_components();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], usize::MAX);
        assert_eq!(d[5], usize::MAX);
    }

    #[test]
    fn k_hop_neighborhoods() {
        let g = two_components();
        assert_eq!(k_hop_neighborhood(&g, VertexId(0), 0), vec![VertexId(0)]);
        assert_eq!(k_hop_neighborhood(&g, VertexId(0), 1), vec![VertexId(0), VertexId(1)]);
        assert_eq!(
            k_hop_neighborhood(&g, VertexId(0), 2),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(k_hop_neighborhood(&g, VertexId(5), 3), vec![VertexId(5)]);
    }

    #[test]
    fn connected_components_labels_and_sizes() {
        let g = two_components();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        assert_eq!(cc.sizes, vec![3, 2, 1]);
        assert!(cc.same_component(VertexId(0), VertexId(2)));
        assert!(!cc.same_component(VertexId(0), VertexId(3)));
        let largest = cc.largest_component();
        assert_eq!(largest, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn empty_graph_components() {
        let g = GraphBuilder::new().build();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 0);
        assert!(cc.largest_component().is_empty());
    }
}
