//! Error types for the graph substrate.

use std::fmt;
use std::io;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction, validation and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex index referenced a vertex that does not exist.
    VertexOutOfBounds {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// An edge index referenced an edge that does not exist.
    EdgeOutOfBounds {
        /// The offending edge index.
        edge: u32,
        /// Number of edges in the graph.
        edge_count: usize,
    },
    /// A scalar field or attribute vector had the wrong length.
    LengthMismatch {
        /// What the value was supposed to annotate ("vertices", "edges", ...).
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A scalar field contained a NaN or infinite value, which would break
    /// the total ordering every scalar-tree algorithm relies on.
    NonFiniteScalar {
        /// What the value was supposed to annotate ("vertex scalar field",
        /// "edge scalar field", ...).
        what: &'static str,
        /// Index of the first offending entry.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// A configuration parameter was outside its valid range (e.g. a
    /// simplification level count of zero).
    InvalidConfig {
        /// The parameter that was rejected.
        what: &'static str,
        /// Human readable description of the constraint that was violated.
        message: String,
    },
    /// A structural invariant of the CSR representation does not hold (see
    /// [`crate::CsrGraph::check_invariants`]). Safe code cannot construct such
    /// a graph; this signals corruption from an external source (a mmap'd or
    /// deserialized structure, a future unsafe fast path).
    BrokenInvariant {
        /// The invariant that was violated ("offsets", "neighbor order", ...).
        what: &'static str,
        /// Human readable description of the violation.
        message: String,
    },
    /// A line in an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human readable description.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, vertex_count } => {
                write!(f, "vertex {vertex} out of bounds for graph with {vertex_count} vertices")
            }
            GraphError::EdgeOutOfBounds { edge, edge_count } => {
                write!(f, "edge {edge} out of bounds for graph with {edge_count} edges")
            }
            GraphError::LengthMismatch { what, expected, actual } => {
                write!(f, "length mismatch for {what}: expected {expected}, got {actual}")
            }
            GraphError::NonFiniteScalar { what, index, value } => {
                write!(f, "{what} contains non-finite value {value} at index {index}")
            }
            GraphError::InvalidConfig { what, message } => {
                write!(f, "invalid configuration for {what}: {message}")
            }
            GraphError::BrokenInvariant { what, message } => {
                write!(f, "broken CSR invariant ({what}): {message}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfBounds { vertex: 10, vertex_count: 5 };
        assert!(e.to_string().contains("vertex 10"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::LengthMismatch { what: "vertices", expected: 3, actual: 4 };
        assert!(e.to_string().contains("expected 3"));

        let e = GraphError::Parse { line: 7, message: "bad token".into() };
        assert!(e.to_string().contains("line 7"));

        let e =
            GraphError::NonFiniteScalar { what: "vertex scalar field", index: 3, value: f64::NAN };
        assert!(e.to_string().contains("index 3"));
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn io_error_converts() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e: GraphError = io_err.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
