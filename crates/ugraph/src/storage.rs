//! The storage abstraction behind every graph consumer.
//!
//! [`GraphStorage`] exposes the four CSR arrays as borrowed slices — where
//! the bytes live (owned `Vec`s in [`CsrGraph`], a memory-mapped snapshot in
//! [`crate::MappedCsrGraph`]) is the implementor's business — and derives the
//! whole accessor surface (`neighbors`, `degree`, `find_edge`, …) from them
//! as default methods. Algorithms written against `G: GraphStorage + ?Sized`
//! therefore run unchanged, and bit-identically, over both backends.
//!
//! The trait is deliberately dyn-compatible: iterator-returning methods use
//! the concrete [`NeighborIter`], [`VertexIds`] and [`EdgeIter`] types rather
//! than `impl Trait`, and the generic length-check helpers live on the
//! blanket extension trait [`GraphStorageExt`]. The `Sync` supertrait lets a
//! shared `&G` cross the scoped threads of [`crate::par`].

use crate::csr::{CsrGraph, EdgeRef, NeighborIter};
use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, VertexId};

/// Read-only access to a simple undirected graph in canonical CSR form.
///
/// Implementors provide the four arrays; everything else is derived. The
/// arrays must satisfy the invariants listed under
/// [`GraphStorage::check_invariants`] — accessors assume them (the snapshot
/// decoders validate before handing out a storage, and [`crate::GraphBuilder`]
/// guarantees them by construction).
pub trait GraphStorage: Sync {
    /// Prefix-sum array: `offsets()[v]..offsets()[v + 1]` is the slice of
    /// [`GraphStorage::targets`] / [`GraphStorage::edge_ids`] holding the
    /// neighbors of vertex `v`. Length `vertex_count() + 1`.
    fn offsets(&self) -> &[usize];

    /// Neighbor vertex for each half-edge, sorted within each vertex block.
    /// Length `2 * edge_count()`.
    fn targets(&self) -> &[VertexId];

    /// Edge id for each half-edge, aligned with [`GraphStorage::targets`].
    fn edge_ids(&self) -> &[EdgeId];

    /// Endpoints `[u, v]` with `u < v` for each edge id, as plain `u32`
    /// pairs (fixed layout, so snapshot bytes can back this slice directly).
    fn endpoint_pairs(&self) -> &[[u32; 2]];

    /// Number of vertices.
    #[inline]
    fn vertex_count(&self) -> usize {
        self.offsets().len().saturating_sub(1)
    }

    /// Number of undirected edges.
    #[inline]
    fn edge_count(&self) -> usize {
        self.endpoint_pairs().len()
    }

    /// Degree of vertex `v` (number of incident edges).
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let offsets = self.offsets();
        offsets[v.index() + 1] - offsets[v.index()]
    }

    /// Largest degree over all vertices, or 0 for an empty graph.
    fn max_degree(&self) -> usize {
        self.offsets().windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`, or 0 for the empty graph.
    fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Iterator over all vertex ids in increasing order.
    #[inline]
    fn vertices(&self) -> VertexIds {
        VertexIds { range: 0..self.vertex_count() as u32 }
    }

    /// Iterator over all edges in increasing [`EdgeId`] order.
    #[inline]
    fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { pairs: self.endpoint_pairs(), pos: 0 }
    }

    /// Endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let [u, v] = self.endpoint_pairs()[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// Checked variant of [`GraphStorage::endpoints`].
    fn try_endpoints(&self, e: EdgeId) -> Result<(VertexId, VertexId)> {
        self.endpoint_pairs()
            .get(e.index())
            .map(|&[u, v]| (VertexId(u), VertexId(v)))
            .ok_or(GraphError::EdgeOutOfBounds { edge: e.0, edge_count: self.edge_count() })
    }

    /// Iterator over the neighbors of `v` as `(neighbor, edge id)` pairs,
    /// sorted by neighbor id.
    #[inline]
    fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        let offsets = self.offsets();
        let (start, end) = (offsets[v.index()], offsets[v.index() + 1]);
        NeighborIter::new(&self.targets()[start..end], &self.edge_ids()[start..end])
    }

    /// Iterator over just the neighbor vertices of `v`, sorted by id.
    #[inline]
    fn neighbor_vertices(&self, v: VertexId) -> std::iter::Copied<std::slice::Iter<'_, VertexId>> {
        self.neighbor_slice(v).iter().copied()
    }

    /// Slice of neighbor vertices of `v` (sorted by id).
    #[inline]
    fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        let offsets = self.offsets();
        &self.targets()[offsets[v.index()]..offsets[v.index() + 1]]
    }

    /// Incident edge ids of `v`, aligned with [`GraphStorage::neighbor_slice`].
    #[inline]
    fn incident_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        let offsets = self.offsets();
        &self.edge_ids()[offsets[v.index()]..offsets[v.index() + 1]]
    }

    /// Whether an edge between `u` and `v` exists. `O(log degree)`.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The id of the edge between `u` and `v`, if present. `O(log degree)`.
    ///
    /// The search runs over the smaller of the two adjacency lists.
    fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let slice = self.neighbor_slice(a);
        let idx = slice.binary_search(&b).ok()?;
        Some(self.incident_edge_slice(a)[idx])
    }

    /// Validate that `v` is a vertex of this graph.
    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v.index() < self.vertex_count() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfBounds { vertex: v.0, vertex_count: self.vertex_count() })
        }
    }

    /// Copy this storage into an owned [`CsrGraph`] (same canonical arrays).
    fn to_csr_graph(&self) -> CsrGraph {
        CsrGraph::from_raw_parts(
            self.offsets().to_vec(),
            self.targets().to_vec(),
            self.edge_ids().to_vec(),
            self.endpoint_pairs().to_vec(),
        )
    }

    /// Extract the subgraph induced by `keep` (vertices with
    /// `keep[v] == true`), as an owned graph plus the mapping from new vertex
    /// ids back to original ones.
    fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<VertexId>) {
        assert_eq!(keep.len(), self.vertex_count(), "mask length mismatch");
        let mut new_id = vec![u32::MAX; self.vertex_count()];
        let mut back = Vec::new();
        for v in 0..self.vertex_count() {
            if keep[v] {
                new_id[v] = back.len() as u32;
                back.push(VertexId::from_index(v));
            }
        }
        let mut edges = Vec::new();
        for e in self.edges() {
            if keep[e.u.index()] && keep[e.v.index()] {
                let a = VertexId(new_id[e.u.index()]);
                let b = VertexId(new_id[e.v.index()]);
                let (a, b) = if a < b { (a, b) } else { (b, a) };
                edges.push((a, b));
            }
        }
        edges.sort_unstable();
        (CsrGraph::from_canonical_edges(back.len(), edges), back)
    }

    /// Verify every structural invariant of the CSR representation.
    ///
    /// Safe construction through [`crate::GraphBuilder`] guarantees all of
    /// these by design, so the check exists for the boundaries where that
    /// guarantee ends: graphs arriving from deserialization or mmap, fuzzing
    /// harnesses, and the generator property tests. `O(|V| + |E|)`.
    ///
    /// Checked invariants:
    /// 1. `offsets` starts at 0, is non-decreasing, ends at `2|E|`, and
    ///    `targets`/`edge_ids` have exactly that length.
    /// 2. Every endpoint pair is canonical (`u < v`) and in bounds.
    /// 3. Each neighbor list is strictly sorted (sorted + no duplicates, which
    ///    also rules out self loops since a loop would duplicate `v` itself).
    /// 4. Every half-edge's edge id points back at an endpoint pair containing
    ///    both the owning vertex and the stored target, and each edge id
    ///    appears exactly twice.
    fn check_invariants(&self) -> Result<()> {
        let broken = |what: &'static str, message: String| {
            Err(GraphError::BrokenInvariant { what, message })
        };
        let offsets = self.offsets();
        if offsets.is_empty() {
            return broken("offsets", "offsets array is empty".into());
        }
        let n = self.vertex_count();
        let half_edges = 2 * self.edge_count();
        if offsets.first() != Some(&0) {
            return broken("offsets", "offsets must start at 0".into());
        }
        if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return broken("offsets", format!("offsets decrease at vertex {w}"));
        }
        if offsets[n] != half_edges {
            return broken(
                "offsets",
                format!("offsets end at {} but the graph has {half_edges} half-edges", offsets[n]),
            );
        }
        if self.targets().len() != half_edges || self.edge_ids().len() != half_edges {
            return broken(
                "adjacency",
                format!(
                    "targets/edge_ids have lengths {}/{}, expected {half_edges}",
                    self.targets().len(),
                    self.edge_ids().len()
                ),
            );
        }
        for (i, &[u, v]) in self.endpoint_pairs().iter().enumerate() {
            if u >= v {
                return broken("endpoints", format!("edge {i} is not canonical: (v{u}, v{v})"));
            }
            if (v as usize) >= n {
                return broken("endpoints", format!("edge {i} endpoint v{v} out of bounds"));
            }
        }
        let mut seen = vec![0u8; self.edge_count()];
        for v in self.vertices() {
            let nbrs = self.neighbor_slice(v);
            if let Some(w) = nbrs.windows(2).position(|w| w[0] >= w[1]) {
                return broken(
                    "neighbor order",
                    format!("neighbors of {v:?} are not strictly sorted at position {w}"),
                );
            }
            for (t, e) in self.neighbors(v) {
                if e.index() >= self.edge_count() {
                    return broken("edge ids", format!("{v:?} references {e:?} out of bounds"));
                }
                let [a, b] = self.endpoint_pairs()[e.index()];
                if (a, b) != (v.0.min(t.0), v.0.max(t.0)) {
                    return broken(
                        "edge ids",
                        format!(
                            "{e:?} stored at half-edge {v:?}→{t:?} but has endpoints (v{a}, v{b})"
                        ),
                    );
                }
                seen[e.index()] += 1;
            }
        }
        if let Some(i) = seen.iter().position(|&c| c != 2) {
            return broken(
                "edge ids",
                format!("edge {i} appears {} times in the adjacency arrays, expected 2", seen[i]),
            );
        }
        Ok(())
    }
}

/// Generic helpers that would make [`GraphStorage`] non-dyn-compatible if
/// declared on the trait itself. Blanket-implemented for every storage, so
/// `graph.check_vertex_values(..)` works on `&dyn GraphStorage` too.
pub trait GraphStorageExt: GraphStorage {
    /// Validate that a per-vertex attribute vector has the right length.
    fn check_vertex_values<T>(&self, values: &[T]) -> Result<()> {
        if values.len() == self.vertex_count() {
            Ok(())
        } else {
            Err(GraphError::LengthMismatch {
                what: "vertices",
                expected: self.vertex_count(),
                actual: values.len(),
            })
        }
    }

    /// Validate that a per-edge attribute vector has the right length.
    fn check_edge_values<T>(&self, values: &[T]) -> Result<()> {
        if values.len() == self.edge_count() {
            Ok(())
        } else {
            Err(GraphError::LengthMismatch {
                what: "edges",
                expected: self.edge_count(),
                actual: values.len(),
            })
        }
    }
}

impl<G: GraphStorage + ?Sized> GraphStorageExt for G {}

// A reference to a storage is a storage: lets generic consumers accept
// `&&CsrGraph` (closure captures, iterator items) without an explicit deref.
impl<G: GraphStorage + ?Sized> GraphStorage for &G {
    fn offsets(&self) -> &[usize] {
        (**self).offsets()
    }

    fn targets(&self) -> &[VertexId] {
        (**self).targets()
    }

    fn edge_ids(&self) -> &[EdgeId] {
        (**self).edge_ids()
    }

    fn endpoint_pairs(&self) -> &[[u32; 2]] {
        (**self).endpoint_pairs()
    }
}

/// Iterator over all vertex ids of a graph, in increasing order.
#[derive(Clone, Debug)]
pub struct VertexIds {
    range: std::ops::Range<u32>,
}

impl Iterator for VertexIds {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        self.range.next().map(VertexId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for VertexIds {
    #[inline]
    fn next_back(&mut self) -> Option<VertexId> {
        self.range.next_back().map(VertexId)
    }
}

impl ExactSizeIterator for VertexIds {}

/// Iterator over all edges of a graph as [`EdgeRef`]s, in id order.
#[derive(Clone, Debug)]
pub struct EdgeIter<'a> {
    pairs: &'a [[u32; 2]],
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<EdgeRef> {
        let &[u, v] = self.pairs.get(self.pos)?;
        let item = EdgeRef { id: EdgeId::from_index(self.pos), u: VertexId(u), v: VertexId(v) };
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.pairs.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for EdgeIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn dyn_storage_exposes_the_same_surface() {
        let g = triangle_plus_tail();
        let dynamic: &dyn GraphStorage = &g;
        assert_eq!(dynamic.vertex_count(), 4);
        assert_eq!(dynamic.edge_count(), 4);
        assert_eq!(dynamic.degree(VertexId(2)), 3);
        assert_eq!(dynamic.max_degree(), 3);
        assert_eq!(dynamic.vertices().count(), 4);
        assert_eq!(dynamic.edges().count(), 4);
        assert!(dynamic.has_edge(VertexId(0), VertexId(2)));
        assert!(dynamic.find_edge(VertexId(0), VertexId(3)).is_none());
        assert!(dynamic.check_vertex_values(&[0u8; 4]).is_ok());
        assert!(dynamic.check_edge_values(&[0u8; 3]).is_err());
        dynamic.check_invariants().unwrap();
    }

    #[test]
    fn to_csr_graph_round_trips() {
        let g = triangle_plus_tail();
        let dynamic: &dyn GraphStorage = &g;
        assert_eq!(dynamic.to_csr_graph(), g);
    }

    #[test]
    fn vertex_ids_iterate_both_ways() {
        let g = triangle_plus_tail();
        let fwd: Vec<u32> = g.vertices().map(|v| v.0).collect();
        let back: Vec<u32> = GraphStorage::vertices(&g).rev().map(|v| v.0).collect();
        assert_eq!(fwd, vec![0, 1, 2, 3]);
        assert_eq!(back, vec![3, 2, 1, 0]);
        assert_eq!(GraphStorage::vertices(&g).len(), 4);
    }

    #[test]
    fn induced_subgraph_via_dyn_matches_owned() {
        let g = triangle_plus_tail();
        let keep = vec![true, true, true, false];
        let dynamic: &dyn GraphStorage = &g;
        let (sub_dyn, back_dyn) = dynamic.induced_subgraph(&keep);
        let (sub_owned, back_owned) = g.induced_subgraph(&keep);
        assert_eq!(sub_dyn, sub_owned);
        assert_eq!(back_dyn, back_owned);
    }
}
