//! Compressed sparse row (CSR) storage for simple undirected graphs.
//!
//! A [`CsrGraph`] is immutable once built (use [`crate::GraphBuilder`] to
//! construct one). Every undirected edge `{u, v}` is stored once in the edge
//! table (with `u < v`) and appears twice in the adjacency arrays — once in
//! `u`'s neighbor list and once in `v`'s — both entries carrying the same
//! [`EdgeId`]. Neighbor lists are sorted by target vertex id, which gives the
//! whole structure a canonical form: two graphs with the same edge set compare
//! equal and iterate identically.
//!
//! `CsrGraph` is the owned implementation of [`GraphStorage`]; the accessor
//! surface lives on that trait (shared with [`crate::MappedCsrGraph`]) and is
//! mirrored here as inherent methods so plain `&CsrGraph` call sites need no
//! trait import.

use crate::error::Result;
use crate::ids::{EdgeId, VertexId};
use crate::storage::{EdgeIter, GraphStorage, GraphStorageExt, VertexIds};

/// A reference to one undirected edge: its id and its two endpoints.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Identifier of the edge.
    pub id: EdgeId,
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl EdgeRef {
    /// The endpoint of this edge that is not `w`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `w` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        debug_assert!(w == self.u || w == self.v, "vertex is not an endpoint");
        if w == self.u {
            self.v
        } else {
            self.u
        }
    }
}

/// Immutable simple undirected graph in CSR form.
///
/// ```
/// use ugraph::{CsrGraph, GraphBuilder, VertexId};
///
/// // A triangle with a tail: 0-1, 1-2, 2-0, 2-3.
/// let mut b = GraphBuilder::new();
/// for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
///     b.add_edge(u, v);
/// }
/// let g: CsrGraph = b.build();
///
/// assert_eq!((g.vertex_count(), g.edge_count()), (4, 4));
/// assert_eq!(g.degree(VertexId(2)), 3);
/// // Neighbor lists are sorted slices — the canonical iteration order.
/// let nbrs: Vec<u32> = g.neighbor_slice(VertexId(2)).iter().map(|v| v.0).collect();
/// assert_eq!(nbrs, vec![0, 1, 3]);
/// assert!(g.has_edge(VertexId(0), VertexId(2)));
/// assert!(!g.has_edge(VertexId(0), VertexId(3)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` is the slice of `targets`/`edge_ids` holding
    /// the neighbors of vertex `v`.
    offsets: Vec<usize>,
    /// Neighbor vertex for each half-edge, sorted within each vertex.
    targets: Vec<VertexId>,
    /// Edge id for each half-edge, aligned with `targets`.
    edge_ids: Vec<EdgeId>,
    /// Endpoints `[u, v]` with `u < v` for each edge id. Stored as plain
    /// `u32` pairs (guaranteed layout) so the slice type matches what a
    /// memory-mapped snapshot can expose without copying.
    endpoints: Vec<[u32; 2]>,
}

impl CsrGraph {
    /// Build a graph from a vertex count and a list of canonical edges.
    ///
    /// The caller must guarantee that edges are deduplicated, contain no self
    /// loops and are given with `u < v`. [`crate::GraphBuilder`] enforces all
    /// of this; the constructor only debug-asserts it.
    pub(crate) fn from_canonical_edges(
        vertex_count: usize,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        let mut degree = vec![0usize; vertex_count];
        for &(u, v) in &edges {
            debug_assert!(u < v, "edges must be canonical (u < v)");
            debug_assert!(v.index() < vertex_count, "endpoint out of bounds");
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(vertex_count + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut targets = vec![VertexId(0); acc];
        let mut edge_ids = vec![EdgeId(0); acc];
        // `cursor[v]` is the next free slot in v's adjacency block.
        let mut cursor: Vec<usize> = offsets[..vertex_count].to_vec();
        for (i, &(u, v)) in edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            targets[cursor[u.index()]] = v;
            edge_ids[cursor[u.index()]] = id;
            cursor[u.index()] += 1;
            targets[cursor[v.index()]] = u;
            edge_ids[cursor[v.index()]] = id;
            cursor[v.index()] += 1;
        }

        let endpoints = edges.into_iter().map(|(u, v)| [u.0, v.0]).collect();

        // Sort each adjacency block by target id to obtain the canonical form.
        let mut graph = CsrGraph { offsets, targets, edge_ids, endpoints };
        for v in 0..vertex_count {
            let (start, end) = (graph.offsets[v], graph.offsets[v + 1]);
            // Sort the (target, edge_id) pairs together.
            let mut pairs: Vec<(VertexId, EdgeId)> = graph.targets[start..end]
                .iter()
                .copied()
                .zip(graph.edge_ids[start..end].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (k, (t, e)) in pairs.into_iter().enumerate() {
                graph.targets[start + k] = t;
                graph.edge_ids[start + k] = e;
            }
        }
        graph
    }

    /// Assemble a graph directly from the four canonical CSR arrays.
    ///
    /// No validation is performed — the caller must guarantee the invariants
    /// of [`GraphStorage::check_invariants`] (snapshot decoders validate the
    /// arrays first; [`GraphStorage::to_csr_graph`] copies from an
    /// already-valid storage).
    pub(crate) fn from_raw_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        edge_ids: Vec<EdgeId>,
        endpoints: Vec<[u32; 2]>,
    ) -> Self {
        CsrGraph { offsets, targets, edge_ids, endpoints }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of vertex `v` (number of incident edges).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Largest degree over all vertices, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        GraphStorage::max_degree(self)
    }

    /// Iterator over all vertex ids in increasing order.
    pub fn vertices(&self) -> VertexIds {
        GraphStorage::vertices(self)
    }

    /// Iterator over all edges in increasing [`EdgeId`] order.
    pub fn edges(&self) -> EdgeIter<'_> {
        GraphStorage::edges(self)
    }

    /// Endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let [u, v] = self.endpoints[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// Checked variant of [`CsrGraph::endpoints`].
    pub fn try_endpoints(&self, e: EdgeId) -> Result<(VertexId, VertexId)> {
        GraphStorage::try_endpoints(self, e)
    }

    /// Iterator over the neighbors of `v` as `(neighbor, edge id)` pairs,
    /// sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        GraphStorage::neighbors(self, v)
    }

    /// Iterator over just the neighbor vertices of `v`, sorted by id.
    pub fn neighbor_vertices(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbor_slice(v).iter().copied()
    }

    /// Slice of neighbor vertices of `v` (sorted by id).
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        let start = self.offsets[v.index()];
        let end = self.offsets[v.index() + 1];
        &self.targets[start..end]
    }

    /// Incident edge ids of `v`, aligned with [`CsrGraph::neighbor_slice`].
    #[inline]
    pub fn incident_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        let start = self.offsets[v.index()];
        let end = self.offsets[v.index() + 1];
        &self.edge_ids[start..end]
    }

    /// Whether an edge between `u` and `v` exists. `O(log degree)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        GraphStorage::has_edge(self, u, v)
    }

    /// The id of the edge between `u` and `v`, if present. `O(log degree)`.
    ///
    /// The search runs over the smaller of the two adjacency lists.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        GraphStorage::find_edge(self, u, v)
    }

    /// Validate that `v` is a vertex of this graph.
    pub fn check_vertex(&self, v: VertexId) -> Result<()> {
        GraphStorage::check_vertex(self, v)
    }

    /// Validate that a per-vertex attribute vector has the right length.
    pub fn check_vertex_values<T>(&self, values: &[T]) -> Result<()> {
        GraphStorageExt::check_vertex_values(self, values)
    }

    /// Validate that a per-edge attribute vector has the right length.
    pub fn check_edge_values<T>(&self, values: &[T]) -> Result<()> {
        GraphStorageExt::check_edge_values(self, values)
    }

    /// Extract the subgraph induced by `keep` (vertices with `keep[v] == true`).
    ///
    /// Returns the induced graph together with the mapping from new vertex ids
    /// to original vertex ids.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (CsrGraph, Vec<VertexId>) {
        GraphStorage::induced_subgraph(self, keep)
    }

    /// Verify every structural invariant of the CSR representation.
    ///
    /// See [`GraphStorage::check_invariants`] for the list of checked
    /// invariants. `O(|V| + |E|)`.
    ///
    /// ```
    /// use ugraph::generators::rmat;
    ///
    /// rmat(10, 5_000, 42).check_invariants().expect("builder output is canonical");
    /// ```
    pub fn check_invariants(&self) -> Result<()> {
        GraphStorage::check_invariants(self)
    }

    /// Average degree `2|E| / |V|`, or 0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        GraphStorage::average_degree(self)
    }
}

impl GraphStorage for CsrGraph {
    #[inline]
    fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    #[inline]
    fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    #[inline]
    fn edge_ids(&self) -> &[EdgeId] {
        &self.edge_ids
    }

    #[inline]
    fn endpoint_pairs(&self) -> &[[u32; 2]] {
        &self.endpoints
    }

    // The derived defaults are correct for the owned backend too; only the
    // trivially field-backed ones are overridden to skip the slice plumbing.
    #[inline]
    fn vertex_count(&self) -> usize {
        CsrGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
}

/// Iterator over `(neighbor, edge id)` pairs of one vertex.
pub struct NeighborIter<'a> {
    targets: &'a [VertexId],
    edge_ids: &'a [EdgeId],
    pos: usize,
}

impl<'a> NeighborIter<'a> {
    /// Pair up aligned target / edge-id slices of one adjacency block.
    #[inline]
    pub(crate) fn new(targets: &'a [VertexId], edge_ids: &'a [EdgeId]) -> Self {
        debug_assert_eq!(targets.len(), edge_ids.len());
        NeighborIter { targets, edge_ids, pos: 0 }
    }
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = (VertexId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.targets.len() {
            let item = (self.targets[self.pos], self.edge_ids[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for NeighborIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle, plus 2-3 tail.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.degree(VertexId(3)), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted_and_carry_edge_ids() {
        let g = triangle_plus_tail();
        let nbrs: Vec<VertexId> = g.neighbor_vertices(VertexId(2)).collect();
        assert_eq!(nbrs, vec![VertexId(0), VertexId(1), VertexId(3)]);
        for (n, e) in g.neighbors(VertexId(2)) {
            let (u, v) = g.endpoints(e);
            assert!(u == VertexId(2) || v == VertexId(2));
            assert!(u == n || v == n);
        }
    }

    #[test]
    fn find_edge_and_has_edge() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(g.endpoints(e), (VertexId(2), VertexId(3)));
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let g = triangle_plus_tail();
        let edges: Vec<(VertexId, VertexId)> = g.edges().map(|e| (e.u, e.v)).collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(edges, sorted, "edges iterate in canonical sorted order");
        for e in g.edges() {
            assert!(e.u < e.v);
            assert_eq!(e.other(e.u), e.v);
            assert_eq!(e.other(e.v), e.u);
        }
    }

    #[test]
    fn validation_helpers() {
        let g = triangle_plus_tail();
        assert!(g.check_vertex(VertexId(3)).is_ok());
        assert!(g.check_vertex(VertexId(4)).is_err());
        assert!(g.check_vertex_values(&[0.0f64; 4]).is_ok());
        assert!(g.check_vertex_values(&[0.0f64; 3]).is_err());
        assert!(g.check_edge_values(&[0u8; 4]).is_ok());
        assert!(g.check_edge_values(&[0u8; 5]).is_err());
        assert!(g.try_endpoints(EdgeId(100)).is_err());
    }

    #[test]
    fn induced_subgraph_remaps_vertices() {
        let g = triangle_plus_tail();
        // Keep the triangle only.
        let keep = vec![true, true, true, false];
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(back, vec![VertexId(0), VertexId(1), VertexId(2)]);
        // Keep a disconnected pair.
        let keep = vec![true, false, false, true];
        let (sub, _) = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn isolated_vertices_are_preserved() {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(5); // vertices 0..=5 with no edges
        let g = b.build();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(VertexId(5)), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn check_invariants_accepts_builder_output_and_detects_corruption() {
        let g = triangle_plus_tail();
        g.check_invariants().unwrap();
        GraphBuilder::new().build().check_invariants().unwrap();

        let mut corrupt = g.clone();
        corrupt.offsets[1] = 5; // no longer matches the adjacency layout
        assert!(corrupt.check_invariants().is_err());

        let mut corrupt = g.clone();
        corrupt.targets.swap(0, 1); // breaks strict neighbor ordering
        assert!(corrupt.check_invariants().is_err());

        let mut corrupt = g.clone();
        corrupt.endpoints[0] = [1, 0]; // not canonical
        assert!(corrupt.check_invariants().is_err());

        let mut corrupt = g;
        corrupt.edge_ids[0] = EdgeId(3); // half-edge points at the wrong edge
        assert!(corrupt.check_invariants().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
