//! # ugraph — undirected graph substrate
//!
//! This crate provides the graph layer that every other crate of the
//! *graph-terrain* workspace builds on: a compact CSR (compressed sparse row)
//! representation of simple undirected graphs, a mutation-friendly builder,
//! a union–find structure (the workhorse of the scalar-tree algorithms of the
//! paper), traversals, line (dual) graphs, deterministic random generators for
//! the synthetic datasets that stand in for the paper's SNAP datasets, and a
//! streaming ingest boundary ([`io::GraphSource`]) over edge-list, CSV, METIS,
//! JSON-adjacency and versioned binary-snapshot inputs.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — every generator takes an explicit seed, and every
//!    structure has a canonical iteration order, so figures and benchmarks are
//!    reproducible bit-for-bit.
//! 2. **Cache friendliness** — the hot algorithms of the paper (Algorithm 1/3,
//!    K-Core and K-Truss decompositions) stream over adjacency arrays; CSR keeps
//!    those scans contiguous.
//! 3. **Small, explicit API** — only what the upper layers need.
//!
//! The [`par`] module adds a deterministic chunked parallel-for
//! ([`par::map_reduce_chunks`]) that the `measures` crate drives its hot
//! centralities through; its [`Parallelism`] knob changes wall-clock time but
//! never results (chunking is a pure function of the input length), so goal 1
//! survives multithreading.
//!
//! ## Quick example
//!
//! ```
//! use ugraph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.degree(VertexId(0)), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod csr;
pub mod delta;
pub mod dual;
pub mod error;
pub mod generators;
pub mod ids;
pub mod io;
pub mod par;
pub mod storage;
pub mod traversal;
pub mod union_find;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, EdgeRef, NeighborIter};
pub use delta::{CompactedDelta, DeltaApplyStats, DeltaOp, DeltaOverlay, EdgeChange, GraphDelta};
pub use dual::{line_graph, LineGraph};
pub use error::{GraphError, Result};
pub use ids::{EdgeId, VertexId};
pub use io::{GraphFormat, GraphSource, MappedCsrGraph, ParsedEdgeList};
pub use par::Parallelism;
pub use storage::{GraphStorage, GraphStorageExt};
pub use traversal::{bfs_order, connected_components, ConnectedComponents};
pub use union_find::UnionFind;
