//! Property-based tests for the graph substrate: CSR structural invariants,
//! union–find correctness against a naive oracle, line-graph size identities,
//! and I/O round-trips for arbitrary graphs.

use proptest::prelude::*;
use ugraph::dual::{estimated_dual_edges, line_graph};
use ugraph::generators::{lfr, rmat, rmat_with, RmatConfig};
use ugraph::io::{
    decode_binary, decode_binary_auto, decode_binary_v2, encode_binary, encode_binary_v2,
    read_edge_list, write_edge_list, write_edge_list_weighted,
};
use ugraph::{connected_components, CsrGraph, GraphBuilder, UnionFind, VertexId};

fn arbitrary_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(4 * n));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertex(n - 1);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants: degree sums to twice the edge count, neighbor lists are
    /// sorted and self-loop free, every edge appears in both endpoints' lists,
    /// and `find_edge` agrees with membership.
    #[test]
    fn csr_structure_is_consistent((n, edges) in arbitrary_edges(40)) {
        let g = build(n, &edges);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for v in g.vertices() {
            let nbrs = g.neighbor_slice(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
            prop_assert!(!nbrs.contains(&v), "no self loops");
        }
        for e in g.edges() {
            prop_assert!(g.neighbor_slice(e.u).contains(&e.v));
            prop_assert!(g.neighbor_slice(e.v).contains(&e.u));
            prop_assert_eq!(g.find_edge(e.u, e.v), Some(e.id));
            prop_assert_eq!(g.find_edge(e.v, e.u), Some(e.id));
        }
    }

    /// Union–find agrees with connectivity computed by BFS: after unioning the
    /// graph's edges, two vertices share a set iff they share a component.
    #[test]
    fn union_find_matches_connected_components((n, edges) in arbitrary_edges(40)) {
        let g = build(n, &edges);
        let mut uf = UnionFind::new(g.vertex_count());
        for e in g.edges() {
            uf.union(e.u.index(), e.v.index());
        }
        let cc = connected_components(&g);
        prop_assert_eq!(uf.set_count(), cc.count);
        for u in 0..g.vertex_count() {
            for v in (u + 1)..g.vertex_count() {
                prop_assert_eq!(
                    uf.same_set(u, v),
                    cc.same_component(VertexId::from_index(u), VertexId::from_index(v))
                );
            }
        }
    }

    /// Line-graph identities: |Vd| = |E|; |Ed| equals Σ C(deg,2) minus the
    /// number of triangles (each triangle collapses three duplicate pairs into
    /// three distinct ones... precisely: duplicates happen only when two edges
    /// share *two* vertices, which simple graphs forbid, so the estimate is
    /// exact).
    #[test]
    fn line_graph_sizes_match_formula((n, edges) in arbitrary_edges(28)) {
        let g = build(n, &edges);
        let dual = line_graph(&g);
        prop_assert_eq!(dual.graph.vertex_count(), g.edge_count());
        prop_assert_eq!(dual.graph.edge_count(), estimated_dual_edges(&g));
        // Adjacency in the dual means sharing an endpoint in the original.
        for e in dual.graph.edges() {
            let (a1, a2) = g.endpoints(ugraph::EdgeId(e.u.0));
            let (b1, b2) = g.endpoints(ugraph::EdgeId(e.v.0));
            prop_assert!(a1 == b1 || a1 == b2 || a2 == b1 || a2 == b2);
        }
    }

    /// Text and binary serialization round-trip to the identical graph.
    #[test]
    fn io_round_trips((n, edges) in arbitrary_edges(40)) {
        let g = build(n, &edges);
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let parsed = read_edge_list(text.as_slice()).unwrap();
        // Vertex count can differ when trailing vertices are isolated (the
        // text format does not record them), so compare edge sets.
        let edges_of = |g: &CsrGraph| -> Vec<(u32, u32)> {
            g.edges().map(|e| (e.u.0, e.v.0)).collect()
        };
        prop_assert_eq!(edges_of(&parsed.graph), edges_of(&g));

        let decoded = decode_binary(encode_binary(&g)).unwrap();
        prop_assert_eq!(decoded, g);
    }

    /// The weighted edge-list writer and the binary v2 snapshot both
    /// round-trip arbitrary graphs *and* arbitrary finite weights exactly —
    /// same graph, bit-identical weights — end-to-end through the readers.
    #[test]
    fn weighted_round_trips_are_lossless(
        (n, edges) in arbitrary_edges(40),
        raw_bits in proptest::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let g = build(n, &edges);
        // One weight per canonical edge: arbitrary finite bit patterns
        // (subnormals included), with non-finite draws replaced by fixed
        // values that have long decimal expansions.
        let awkward = [0.1 + 0.2, 1.0 / 3.0, -1e-17, f64::MIN_POSITIVE];
        let weights: Vec<f64> = (0..g.edge_count())
            .map(|i| {
                let w = f64::from_bits(raw_bits[i % raw_bits.len()]);
                if w.is_finite() && i % 3 != 0 { w } else { awkward[i % awkward.len()] }
            })
            .collect();
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();

        // Text: write → read preserves the edge set and every weight bit.
        let mut text = Vec::new();
        write_edge_list_weighted(&g, &weights, &mut text).unwrap();
        let parsed = read_edge_list(text.as_slice()).unwrap();
        let edges_of = |g: &CsrGraph| -> Vec<(u32, u32)> {
            g.edges().map(|e| (e.u.0, e.v.0)).collect()
        };
        prop_assert_eq!(edges_of(&parsed.graph), edges_of(&g));
        if g.edge_count() > 0 {
            prop_assert_eq!(bits(&parsed.edge_weights.unwrap()), bits(&weights));
        }

        // Binary v2: the snapshot also preserves isolated trailing vertices,
        // so the whole graph compares equal, and both decoders agree.
        let blob = encode_binary_v2(&g, Some(&weights)).unwrap();
        let direct = decode_binary_v2(&blob).unwrap();
        prop_assert_eq!(&direct.graph, &g);
        prop_assert_eq!(bits(&direct.edge_weights.unwrap()), bits(&weights));
        let auto = decode_binary_auto(&blob).unwrap();
        prop_assert_eq!(&auto.graph, &g);

        // And an unweighted v2 snapshot round-trips the bare graph.
        let bare = decode_binary_v2(&encode_binary_v2(&g, None).unwrap()).unwrap();
        prop_assert_eq!(bare.graph, g);
        prop_assert!(bare.edge_weights.is_none());
    }

    /// Arbitrary builder output satisfies every invariant `check_invariants`
    /// verifies — the check must never reject a safely constructed graph.
    #[test]
    fn builder_output_passes_check_invariants((n, edges) in arbitrary_edges(40)) {
        let g = build(n, &edges);
        prop_assert!(g.check_invariants().is_ok());
    }

    /// Generator determinism: the same seed yields bit-identical edge lists,
    /// and the generated graphs pass the full CSR invariant check.
    #[test]
    fn rmat_is_deterministic_and_well_formed(
        scale in 2u32..9,
        edges in 1usize..2_000,
        seed in 0u64..1_000,
    ) {
        let edge_list = |g: &CsrGraph| -> Vec<(u32, u32)> {
            g.edges().map(|e| (e.u.0, e.v.0)).collect()
        };
        let a = rmat(scale, edges, seed);
        let b = rmat(scale, edges, seed);
        prop_assert_eq!(edge_list(&a), edge_list(&b));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.check_invariants().is_ok());
        prop_assert_eq!(a.vertex_count(), 1usize << scale);
        prop_assert!(a.edge_count() <= edges);
    }

    /// Same property for the LFR-style generator, plus labelling consistency.
    #[test]
    fn lfr_is_deterministic_and_well_formed(
        n in 50usize..400,
        mu_percent in 0usize..=100,
        seed in 0u64..1_000,
    ) {
        let mu = mu_percent as f64 / 100.0;
        let edge_list = |g: &CsrGraph| -> Vec<(u32, u32)> {
            g.edges().map(|e| (e.u.0, e.v.0)).collect()
        };
        let a = lfr(n, mu, seed);
        let b = lfr(n, mu, seed);
        prop_assert_eq!(edge_list(&a.graph), edge_list(&b.graph));
        prop_assert_eq!(&a.community, &b.community);
        prop_assert!(a.graph.check_invariants().is_ok());
        prop_assert_eq!(a.graph.vertex_count(), n);
        prop_assert_eq!(a.community.len(), n);
        prop_assert!(a.community.iter().all(|&c| c < a.community_count));
    }

    /// RMAT quadrant probabilities are normalized: scaling all four by a
    /// common factor never changes the sampled graph.
    #[test]
    fn rmat_probabilities_are_scale_free(
        seed in 0u64..500,
        factor_tenths in 1usize..50,
    ) {
        let factor = factor_tenths as f64 / 10.0;
        let base = RmatConfig::graph500(7, 800, seed);
        let scaled = RmatConfig {
            a: base.a * factor,
            b: base.b * factor,
            c: base.c * factor,
            d: base.d * factor,
            ..base.clone()
        };
        prop_assert_eq!(rmat_with(&base), rmat_with(&scaled));
    }

    /// Induced subgraphs keep exactly the edges with both endpoints retained.
    #[test]
    fn induced_subgraph_edge_filtering((n, edges) in arbitrary_edges(30), mask_seed in 0u64..1000) {
        let g = build(n, &edges);
        let keep: Vec<bool> = (0..g.vertex_count())
            .map(|v| (v as u64).wrapping_mul(2654435761).wrapping_add(mask_seed) % 3 != 0)
            .collect();
        let (sub, back) = g.induced_subgraph(&keep);
        let expected = g
            .edges()
            .filter(|e| keep[e.u.index()] && keep[e.v.index()])
            .count();
        prop_assert_eq!(sub.edge_count(), expected);
        prop_assert_eq!(sub.vertex_count(), keep.iter().filter(|&&k| k).count());
        // Every subgraph edge maps back to an original edge.
        for e in sub.edges() {
            let (u, v) = (back[e.u.index()], back[e.v.index()]);
            prop_assert!(g.has_edge(u, v));
        }
    }
}
