//! The `LOAD_*.json` schema: one recorded run of the terrain server's load
//! generator, committed next to the `BENCH_*.json` perf baselines.
//!
//! Where a bench baseline records single-pipeline wall clock, a load report
//! records *served* behaviour: concurrent clients, request mix, latency
//! percentiles, and the artifact cache's hit rate — the numbers the server
//! story in `PERFORMANCE.md` quotes. As with [`crate::report`], this module
//! is the single source of truth: the writer, the validator and the doc
//! cannot drift apart.

use serde::Serialize;
use serde_json::Value;

use crate::report::JsonObject;

/// Version stamp written into every load report. Version 2 added the
/// `tiles` object (pan/zoom tile traffic); version-1 files remain valid
/// legacy documents without it.
pub const LOAD_SCHEMA_VERSION: u64 = 2;

/// Latency percentiles over one request population, in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyMillis {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Slowest observed request.
    pub max: f64,
}

impl LatencyMillis {
    /// Percentiles from raw per-request latencies (any order). Returns the
    /// zero value for an empty population.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyMillis::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let at = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        LatencyMillis { p50: at(0.50), p90: at(0.90), p99: at(0.99), max: sorted[sorted.len() - 1] }
    }
}

/// Cache counters scraped from the server's `/stats` after the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheOutcome {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Hits over lookups (0.0 before any lookup).
    pub hit_rate: f64,
    /// Entries evicted during the run.
    pub evictions: u64,
    /// `304 Not Modified` responses (served from the ETag, not the cache).
    pub not_modified: u64,
}

/// Tile-route traffic scraped from the generator's own `X-Cache`
/// bookkeeping: how the pan/zoom walk fared against the artifact cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct TileOutcome {
    /// Tile requests issued (including conditional re-requests).
    pub requests: u64,
    /// Responses served from the artifact cache (`X-Cache: hit`).
    pub hits: u64,
    /// Responses rendered on demand (`X-Cache: miss`).
    pub misses: u64,
    /// Hits over rendered lookups (0.0 before any tile request).
    pub hit_rate: f64,
    /// `304 Not Modified` tile responses (ETag replays).
    pub not_modified: u64,
}

/// One complete load-generator run — the top-level object of a
/// `LOAD_*.json` file.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Always [`LOAD_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// ISO date (`YYYY-MM-DD`, UTC) the run started.
    pub created: String,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_rev: String,
    /// Hardware threads visible to the generator process.
    pub host_threads: usize,
    /// Operating system (`std::env::consts::OS`).
    pub host_os: String,
    /// Worker threads the target server ran with.
    pub server_workers: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Total requests issued (`clients * requests_per_client` plus setup).
    pub total_requests: u64,
    /// Responses with status 200/201.
    pub ok_responses: u64,
    /// `304 Not Modified` responses received.
    pub not_modified_responses: u64,
    /// Responses with status >= 400, or transport failures.
    pub failed_requests: u64,
    /// RNG seed driving the request mix.
    pub seed: u64,
    /// Vertices in the graph the run rendered.
    pub graph_vertices: usize,
    /// Edges in the graph the run rendered.
    pub graph_edges: usize,
    /// Wall-clock seconds from first to last response.
    pub wall_seconds: f64,
    /// `total_requests / wall_seconds`.
    pub requests_per_second: f64,
    /// Latency percentiles across every request.
    pub latency_ms: LatencyMillis,
    /// The server's cache counters after the run.
    pub cache: CacheOutcome,
    /// Tile-route traffic (zeroed when the run had no `--tiles` weight).
    pub tiles: TileOutcome,
}

impl Serialize for LatencyMillis {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("p50", &self.p50)
            .field("p90", &self.p90)
            .field("p99", &self.p99)
            .field("max", &self.max);
        obj.finish();
    }
}

impl Serialize for CacheOutcome {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("hit_rate", &self.hit_rate)
            .field("evictions", &self.evictions)
            .field("not_modified", &self.not_modified);
        obj.finish();
    }
}

impl Serialize for TileOutcome {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("requests", &self.requests)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("hit_rate", &self.hit_rate)
            .field("not_modified", &self.not_modified);
        obj.finish();
    }
}

impl Serialize for LoadReport {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("schema_version", &self.schema_version)
            .field("created", &self.created)
            .field("git_rev", &self.git_rev)
            .field("host_threads", &self.host_threads)
            .field("host_os", &self.host_os)
            .field("server_workers", &self.server_workers)
            .field("clients", &self.clients)
            .field("requests_per_client", &self.requests_per_client)
            .field("total_requests", &self.total_requests)
            .field("ok_responses", &self.ok_responses)
            .field("not_modified_responses", &self.not_modified_responses)
            .field("failed_requests", &self.failed_requests)
            .field("seed", &self.seed)
            .field("graph_vertices", &self.graph_vertices)
            .field("graph_edges", &self.graph_edges)
            .field("wall_seconds", &self.wall_seconds)
            .field("requests_per_second", &self.requests_per_second)
            .field("latency_ms", &self.latency_ms)
            .field("cache", &self.cache)
            .field("tiles", &self.tiles);
        obj.finish();
    }
}

/// Validate a parsed `LOAD_*.json` document. Returns every violation
/// (empty = valid).
pub fn validate(doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    let version = doc.get("schema_version").and_then(Value::as_u64);
    match version {
        Some(1) | Some(LOAD_SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("schema_version {v} != supported {LOAD_SCHEMA_VERSION}")),
        None => errors.push("missing numeric schema_version".to_string()),
    }
    for key in ["created", "git_rev", "host_os"] {
        if doc.get(key).and_then(Value::as_str).is_none() {
            errors.push(format!("missing string field {key:?}"));
        }
    }
    for key in [
        "host_threads",
        "server_workers",
        "clients",
        "requests_per_client",
        "total_requests",
        "ok_responses",
        "not_modified_responses",
        "failed_requests",
        "seed",
        "graph_vertices",
        "graph_edges",
    ] {
        if doc.get(key).and_then(Value::as_u64).is_none() {
            errors.push(format!("missing numeric field {key:?}"));
        }
    }
    for key in ["wall_seconds", "requests_per_second"] {
        if doc.get(key).and_then(Value::as_f64).is_none() {
            errors.push(format!("missing numeric field {key:?}"));
        }
    }
    match doc.get("latency_ms") {
        Some(latency) => {
            for key in ["p50", "p90", "p99", "max"] {
                if latency.get(key).and_then(Value::as_f64).is_none() {
                    errors.push(format!("latency_ms: missing numeric field {key:?}"));
                }
            }
        }
        None => errors.push("missing object field \"latency_ms\"".to_string()),
    }
    match doc.get("cache") {
        Some(cache) => {
            for key in ["hits", "misses", "evictions", "not_modified"] {
                if cache.get(key).and_then(Value::as_u64).is_none() {
                    errors.push(format!("cache: missing numeric field {key:?}"));
                }
            }
            if cache.get("hit_rate").and_then(Value::as_f64).is_none() {
                errors.push("cache: missing numeric field \"hit_rate\"".to_string());
            }
        }
        None => errors.push("missing object field \"cache\"".to_string()),
    }
    // The tiles object arrived with schema version 2; version-1 files are
    // complete without it.
    if version == Some(LOAD_SCHEMA_VERSION) {
        match doc.get("tiles") {
            Some(tiles) => {
                for key in ["requests", "hits", "misses", "not_modified"] {
                    if tiles.get(key).and_then(Value::as_u64).is_none() {
                        errors.push(format!("tiles: missing numeric field {key:?}"));
                    }
                }
                if tiles.get("hit_rate").and_then(Value::as_f64).is_none() {
                    errors.push("tiles: missing numeric field \"hit_rate\"".to_string());
                }
            }
            None => errors.push("missing object field \"tiles\"".to_string()),
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{git_short_rev, utc_date};

    fn sample_report() -> LoadReport {
        LoadReport {
            schema_version: LOAD_SCHEMA_VERSION,
            created: utc_date(),
            git_rev: git_short_rev(),
            host_threads: 8,
            host_os: "linux".to_string(),
            server_workers: 4,
            clients: 8,
            requests_per_client: 128,
            total_requests: 1_024,
            ok_responses: 900,
            not_modified_responses: 100,
            failed_requests: 24,
            seed: 20_170_419,
            graph_vertices: 11,
            graph_edges: 19,
            wall_seconds: 2.5,
            requests_per_second: 409.6,
            latency_ms: LatencyMillis::from_samples(&[1.0, 2.0, 3.0, 50.0]),
            cache: CacheOutcome {
                hits: 800,
                misses: 100,
                hit_rate: 800.0 / 900.0,
                evictions: 3,
                not_modified: 100,
            },
            tiles: TileOutcome {
                requests: 200,
                hits: 150,
                misses: 40,
                hit_rate: 150.0 / 190.0,
                not_modified: 10,
            },
        }
    }

    #[test]
    fn emitted_reports_round_trip_through_validate() {
        let json = serde_json::to_string_pretty(&sample_report()).expect("serialize");
        let doc = serde_json::from_str(&json).expect("parse back");
        assert_eq!(validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn validate_names_missing_and_mismatched_fields() {
        let doc = serde_json::from_str("{\"schema_version\": 99}").unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("schema_version 99")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("latency_ms")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("cache")), "{errors:?}");
    }

    #[test]
    fn the_tiles_object_is_required_at_v2_but_not_for_legacy_v1_files() {
        let json = serde_json::to_string_pretty(&sample_report()).expect("serialize");
        // A v2 document missing tiles is a violation...
        let without_tiles = json.replace("\"tiles\"", "\"tiles_renamed\"");
        let doc = serde_json::from_str(&without_tiles).expect("parse back");
        assert!(validate(&doc).iter().any(|e| e.contains("tiles")), "{:?}", validate(&doc));
        // ...but the same document stamped v1 (the pre-tile schema) passes.
        let legacy = without_tiles.replace("\"schema_version\": 2", "\"schema_version\": 1");
        let doc = serde_json::from_str(&legacy).expect("parse back");
        assert_eq!(validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn percentiles_are_order_insensitive_and_bounded_by_max() {
        let shuffled = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0];
        let latency = LatencyMillis::from_samples(&shuffled);
        // Nearest-rank on 10 samples: round(9 * 0.5) = index 5.
        assert_eq!(latency.p50, 6.0);
        assert_eq!(latency.max, 10.0);
        assert!(latency.p50 <= latency.p90 && latency.p90 <= latency.p99);
        assert!(latency.p99 <= latency.max);
        assert_eq!(LatencyMillis::from_samples(&[]).max, 0.0);
    }
}
