//! # bench — shared infrastructure for the table/figure harness
//!
//! The binaries in `src/bin/` regenerate every table and figure of the paper's
//! evaluation section (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for recorded outputs). This library crate holds what they
//! share:
//!
//! * [`datasets`] — the synthetic analogs of the paper's Table I datasets;
//! * [`nn_graph`] — the attribute-table → nearest-neighbor-graph construction
//!   of the Figure 11 query-result experiment;
//! * [`pipeline`] — timed end-to-end runs of the scalar-tree + terrain
//!   pipeline (the quantities of Table II), delegating every stage to the
//!   façade's staged `TerrainPipeline` session;
//! * [`output`] — helpers to write figure artifacts (SVG, JSON, text tables)
//!   under `results/`;
//! * [`parallelism`] — the shared `--threads <serial|auto|N>` flag wiring
//!   the [`ugraph::par`] engine into the binaries;
//! * [`report`] — the `BENCH_*.json` perf-baseline schema and the
//!   regression comparator behind the `scale_ladder` binary (methodology in
//!   `PERFORMANCE.md`);
//! * [`cli`] — the shared I/O-boundary flags: `--input <path>` /
//!   `--input-format <name>` (ingest a real graph file through
//!   [`ugraph::GraphSource`]) and `--format <name>` (pick a
//!   [`terrain::Exporter`] render backend).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod datasets;
pub mod load_report;
pub mod nn_graph;
pub mod output;
pub mod parallelism;
pub mod pipeline;
pub mod report;

pub use cli::{exporter_from, exporter_from_args, input_dataset_from, input_dataset_from_args};
pub use datasets::{load_dataset, DatasetKind, DatasetSpec, FileDataset, GeneratedDataset};
pub use nn_graph::{generate_plant_table, knn_graph, PlantTable};
pub use output::format_table;
pub use parallelism::{parallelism_from, parallelism_from_args, parallelism_list_from};
pub use pipeline::{
    run_edge_pipeline, run_edge_pipeline_configured, run_edge_pipeline_with, run_vertex_pipeline,
    run_vertex_pipeline_configured, run_vertex_pipeline_with, EdgePipelineReport, PipelineConfig,
    VertexPipelineReport,
};
pub use report::{format_table_for, BenchReport, RungResult, StageSeconds, SCHEMA_VERSION};
