//! Shared I/O-boundary flags for the figure/table binaries.
//!
//! Binaries that can run on a real graph file accept
//! `--input <path> [--input-format <edgelist|csv|metis|json|binary>]`
//! (parsed here into a [`FileDataset`] via [`datasets::load_dataset`]), and
//! binaries that render artifacts accept
//! `--format <svg|treemap|obj|ply|ascii|json>` to pick the
//! [`terrain::Exporter`] backend.
//!
//! Like the `--threads` flag ([`crate::parallelism`]), unrecognized *values*
//! warn loudly and fall back to the default instead of aborting a long
//! harness run; a missing or unreadable `--input` file, however, is a hard
//! error — silently substituting a synthetic analog for a requested real
//! dataset would corrupt a recorded experiment.

use crate::datasets::{self, FileDataset};
use terrain::{exporter_by_name, Exporter};
use ugraph::io::GraphFormat;

/// Extract the value of `--flag value` or `--flag=value` from an argument
/// list.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == flag {
            return iter.next().cloned();
        }
    }
    None
}

/// Parse `--input <path>` / `--input-format <name>` into a loaded dataset.
/// Returns `None` when no `--input` was given; exits the process with an
/// error message when the file cannot be loaded or the format name is
/// unknown (a harness run on the wrong data is worse than no run).
pub fn input_dataset_from(args: &[String]) -> Option<FileDataset> {
    let path = flag_value(args, "--input")?;
    let format = flag_value(args, "--input-format").map(|name| {
        GraphFormat::from_name(&name).unwrap_or_else(|| {
            eprintln!(
                "[error] unknown --input-format {name:?}; expected one of: {}",
                GraphFormat::all().iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        })
    });
    match datasets::load_dataset(&path, format) {
        Ok(dataset) => {
            eprintln!(
                "[input] {}: {} vertices, {} edges{}",
                path,
                dataset.graph.vertex_count(),
                dataset.graph.edge_count(),
                if dataset.edge_weights.is_some() { " (weighted)" } else { "" }
            );
            Some(dataset)
        }
        Err(e) => {
            eprintln!("[error] failed to load --input {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// [`input_dataset_from`] over [`std::env::args`].
pub fn input_dataset_from_args() -> Option<FileDataset> {
    let args: Vec<String> = std::env::args().collect();
    input_dataset_from(&args)
}

/// Parse `--format <name>` into an [`Exporter`] backend, defaulting to
/// `default_name` (warning on an unknown value, like `--threads`).
pub fn exporter_from(args: &[String], default_name: &str) -> Box<dyn Exporter> {
    let requested = flag_value(args, "--format");
    let name = requested.as_deref().unwrap_or(default_name);
    exporter_by_name(name).unwrap_or_else(|e| {
        eprintln!("[warn] {e}; using {default_name}");
        exporter_by_name(default_name).expect("default backend exists")
    })
}

/// [`exporter_from`] over [`std::env::args`].
pub fn exporter_from_args(default_name: &str) -> Box<dyn Exporter> {
    let args: Vec<String> = std::env::args().collect();
    exporter_from(&args, default_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_values_parse_both_forms() {
        assert_eq!(
            flag_value(&argv(&["bin", "--input", "g.csv"]), "--input").as_deref(),
            Some("g.csv")
        );
        assert_eq!(
            flag_value(&argv(&["bin", "--input=g.csv"]), "--input").as_deref(),
            Some("g.csv")
        );
        assert_eq!(flag_value(&argv(&["bin"]), "--input"), None);
    }

    #[test]
    fn exporters_resolve_with_fallback() {
        assert_eq!(exporter_from(&argv(&["bin", "--format", "ply"]), "svg").name(), "ply");
        assert_eq!(exporter_from(&argv(&["bin"]), "svg").name(), "svg");
        assert_eq!(exporter_from(&argv(&["bin", "--format", "gif"]), "svg").name(), "svg");
    }

    #[test]
    fn absent_input_flag_is_none() {
        assert!(input_dataset_from(&argv(&["bin", "--large"])).is_none());
    }
}
