//! Output helpers for the figure/table binaries.
//!
//! Every binary writes its artifacts (SVG renderings, JSON series, text
//! tables) under a results directory — `results/` at the workspace root by
//! default, overridable with the `GRAPH_TERRAIN_RESULTS_DIR` environment
//! variable — and also prints the table rows to stdout so `EXPERIMENTS.md`
//! can quote them directly.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The directory figure artifacts are written to.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("GRAPH_TERRAIN_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Write `content` to `results_dir()/name`, creating the directory if needed.
/// Returns the full path written.
pub fn write_artifact(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut file = fs::File::create(&path)?;
    file.write_all(content.as_bytes())?;
    Ok(path)
}

/// Write a serde-serializable value as pretty JSON next to the other
/// artifacts.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string_pretty(value).expect("serializable value");
    write_artifact(name, &json)
}

/// Render a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<Vec<_>>()
            .join("")
    };
    out.push_str(&fmt_row(headers.iter().map(|h| h.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Convenience: does a path exist and contain non-empty content?
pub fn artifact_exists(path: &Path) -> bool {
    fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns_columns() {
        let table = format_table(
            &["name", "nodes"],
            &[
                vec!["GrQc".to_string(), "5242".to_string()],
                vec!["Wikipedia".to_string(), "1815914".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("GrQc"));
        // The numeric column starts at the same offset in both data rows.
        let offset = lines[2].find("5242").unwrap();
        assert_eq!(lines[3].find("1815914").unwrap(), offset);
    }

    #[test]
    fn artifacts_round_trip_through_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("gt-test-{}", std::process::id()));
        std::env::set_var("GRAPH_TERRAIN_RESULTS_DIR", &dir);
        let path = write_artifact("probe.txt", "hello").unwrap();
        assert!(artifact_exists(&path));
        let json_path = write_json("probe.json", &vec![1, 2, 3]).unwrap();
        assert!(artifact_exists(&json_path));
        std::env::remove_var("GRAPH_TERRAIN_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
