//! Synthetic analogs of the paper's Table I datasets — plus real-file ingest.
//!
//! The paper evaluates on eight SNAP-hosted datasets; the reproduction cannot
//! ship those, so every dataset is replaced by a deterministic generator that
//! matches (a) the structural trait each experiment depends on and (b) the
//! approximate size — at `scale = 1.0` the small datasets match the paper's
//! node counts closely, while the two multi-million-edge graphs (Wikipedia,
//! Cit-Patent) default to a scaled-down size so the default harness finishes
//! in seconds; pass a larger `scale` (or `--large` to the binaries) for the
//! full-size scalability runs. See DESIGN.md §4.
//!
//! When the *actual* SNAP dumps (or any other graph file) are on disk,
//! [`load_dataset`] ingests them through [`ugraph::GraphSource`] — every
//! format of the I/O boundary works, so the harness binaries accept
//! `--input <path>` to run the real Table I experiments instead of the
//! analogs.

use std::path::Path;
use ugraph::generators::{
    collaboration_graph, layered_citation, overlapping_communities, planted_partition,
    preferential_attachment, watts_strogatz, CollaborationConfig, OverlappingCommunityConfig,
};
use ugraph::io::{GraphFormat, GraphSource};
use ugraph::CsrGraph;

/// The eight datasets of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// GrQc: General Relativity co-authorship (5,242 nodes / 14,496 edges).
    GrQc,
    /// WikiVote: who-votes-on-whom (7,115 / 103,689).
    WikiVote,
    /// Wikipedia page links (1.8M / 34.0M).
    Wikipedia,
    /// Protein–protein interaction network (4,741 / 15,147).
    Ppi,
    /// Patent citations (3.77M / 16.5M).
    CitPatent,
    /// Amazon co-purchase network (334,863 / 925,872).
    Amazon,
    /// Astro Physics co-authorship (17,903 / 196,972).
    Astro,
    /// DBLP(sub): DB/DM/ML/IR co-authorship subset (27,199 / 66,832).
    Dblp,
}

impl DatasetKind {
    /// All datasets in the order of Table I.
    pub fn all() -> [DatasetKind; 8] {
        [
            DatasetKind::GrQc,
            DatasetKind::WikiVote,
            DatasetKind::Wikipedia,
            DatasetKind::Ppi,
            DatasetKind::CitPatent,
            DatasetKind::Amazon,
            DatasetKind::Astro,
            DatasetKind::Dblp,
        ]
    }

    /// The specification (name, paper sizes, context line) of the dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::GrQc => DatasetSpec {
                name: "GrQc",
                paper_nodes: 5_242,
                paper_edges: 14_496,
                context: "Coauthorship in General Relativity and Quantum Cosmology",
            },
            DatasetKind::WikiVote => DatasetSpec {
                name: "Wikivote",
                paper_nodes: 7_115,
                paper_edges: 103_689,
                context: "Who-votes-on-whom relationship between Wikipedia users",
            },
            DatasetKind::Wikipedia => DatasetSpec {
                name: "Wikipedia",
                paper_nodes: 1_815_914,
                paper_edges: 34_022_831,
                context: "Links between Wikipedia pages",
            },
            DatasetKind::Ppi => DatasetSpec {
                name: "PPI",
                paper_nodes: 4_741,
                paper_edges: 15_147,
                context: "Protein Protein Interaction network",
            },
            DatasetKind::CitPatent => DatasetSpec {
                name: "Cit-Patent",
                paper_nodes: 3_774_768,
                paper_edges: 16_518_947,
                context: "Citations made by patents granted between 1975 and 1999",
            },
            DatasetKind::Amazon => DatasetSpec {
                name: "Amazon",
                paper_nodes: 334_863,
                paper_edges: 925_872,
                context: "Co-Purchase relationship between products in Amazon",
            },
            DatasetKind::Astro => DatasetSpec {
                name: "Astro",
                paper_nodes: 17_903,
                paper_edges: 196_972,
                context: "Coauthorship between authors in Astro Physics",
            },
            DatasetKind::Dblp => DatasetSpec {
                name: "DBLP",
                paper_nodes: 27_199,
                paper_edges: 66_832,
                context: "Coauthorship between authors in (DB, DM, ML, IR)",
            },
        }
    }

    /// Default scale for the default (fast) harness runs: small datasets run
    /// at full size, the two giant graphs at 2% / 1% of their node counts.
    pub fn default_scale(&self) -> f64 {
        match self {
            DatasetKind::Wikipedia => 0.02,
            DatasetKind::CitPatent => 0.01,
            DatasetKind::Amazon => 0.10,
            _ => 1.0,
        }
    }

    /// Generate the synthetic analog at the given scale (`1.0` = paper size).
    pub fn generate(&self, scale: f64) -> GeneratedDataset {
        let spec = self.spec();
        let nodes = ((spec.paper_nodes as f64) * scale).round().max(64.0) as usize;
        let graph = match self {
            DatasetKind::GrQc => collaboration_graph(&CollaborationConfig {
                authors: nodes,
                papers: (nodes as f64 * 0.55) as usize,
                max_authors_per_paper: 5,
                groups: (nodes / 90).max(4),
                groups_per_component: 6,
                dense_groups: (nodes / 1000).max(4),
                dense_group_extra_papers: 50,
                seed: 0x6271c,
                ..Default::default()
            }),
            DatasetKind::Astro => collaboration_graph(&CollaborationConfig {
                authors: nodes,
                papers: (nodes as f64 * 1.3) as usize,
                groups: (nodes / 120).max(6),
                groups_per_component: 10,
                min_authors_per_paper: 2,
                max_authors_per_paper: 8,
                dense_groups: (nodes / 1500).max(4),
                dense_group_extra_papers: 80,
                seed: 0xa57,
                ..Default::default()
            }),
            DatasetKind::Dblp => collaboration_graph(&CollaborationConfig {
                authors: nodes,
                papers: (nodes as f64 * 0.8) as usize,
                max_authors_per_paper: 4,
                groups: (nodes / 150).max(4),
                groups_per_component: 8,
                dense_groups: (nodes / 2000).max(4),
                dense_group_extra_papers: 30,
                seed: 0xdb1b,
                ..Default::default()
            }),
            DatasetKind::WikiVote => preferential_attachment(nodes, 1, 29, 0x71c0),
            DatasetKind::Wikipedia => preferential_attachment(nodes, 1, 37, 0x71c1),
            DatasetKind::Ppi => watts_strogatz(nodes, 6, 0.25, 0x991),
            DatasetKind::CitPatent => layered_citation(nodes, 16, 4, 0.3, 0xc17),
            DatasetKind::Amazon => {
                // Planted communities with a mild power-law of sizes.
                let community_count = (nodes / 120).max(3);
                let base = nodes / community_count;
                let sizes: Vec<usize> = (0..community_count)
                    .map(|i| if i % 7 == 0 { base * 2 } else { base.max(8) })
                    .collect();
                planted_partition(&sizes, (6.0 / base as f64).min(0.5), 0.4 / nodes as f64, 0xa3a)
                    .graph
            }
        };
        GeneratedDataset { kind: *self, spec, scale, graph }
    }

    /// Generate the DBLP(sub)-like *overlapping community* dataset used by
    /// Figures 1(b) and 8 — four communities with sub-groups and ground-truth
    /// community score vectors.
    pub fn generate_dblp_communities(scale: f64) -> ugraph::generators::OverlappingCommunityGraph {
        let size = ((420.0 * scale).round() as usize).max(60);
        overlapping_communities(&OverlappingCommunityConfig {
            communities: 4,
            community_size: size,
            subgroups_per_community: 2,
            overlap_fraction: 0.04,
            p_subgroup: 0.10,
            // Sub-groups of one community never co-author directly — they are
            // only bridged through peripheral members — which is exactly the
            // "authors in one peak do not work with authors in the other
            // peak" reading of Figure 8.
            p_community: 0.0,
            p_background: 0.0005,
            seed: 0xdb1f,
        })
    }
}

/// Static description of one Table I dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in Table I.
    pub name: &'static str,
    /// Node count reported in the paper.
    pub paper_nodes: usize,
    /// Edge count reported in the paper.
    pub paper_edges: usize,
    /// The "Context" column of Table I.
    pub context: &'static str,
}

/// A dataset ingested from disk (a real SNAP dump, a CSV export, a binary
/// snapshot) rather than generated — what `--input <path>` hands the
/// harness binaries.
#[derive(Clone, Debug)]
pub struct FileDataset {
    /// Display name: the file stem.
    pub name: String,
    /// The ingested graph.
    pub graph: CsrGraph,
    /// Per-edge weights, when the file carried them.
    pub edge_weights: Option<Vec<f64>>,
}

/// Ingest a dataset file through [`GraphSource`]: explicit `format` if given,
/// otherwise extension + content detection.
pub fn load_dataset(
    path: impl AsRef<Path>,
    format: Option<GraphFormat>,
) -> ugraph::Result<FileDataset> {
    let path = path.as_ref();
    let source = GraphSource::path(path);
    let source = match format {
        Some(format) => source.with_format(format),
        None => source,
    };
    let parsed = source.load()?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    Ok(FileDataset { name, graph: parsed.graph, edge_weights: parsed.edge_weights })
}

/// A generated dataset: the synthetic graph plus its provenance.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Which Table I dataset this stands in for.
    pub kind: DatasetKind,
    /// The paper-reported specification.
    pub spec: DatasetSpec,
    /// The scale it was generated at (1.0 = paper size).
    pub scale: f64,
    /// The synthetic graph.
    pub graph: CsrGraph,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datasets_match_paper_node_counts() {
        for kind in [DatasetKind::GrQc, DatasetKind::Ppi] {
            let d = kind.generate(1.0);
            let target = d.spec.paper_nodes as f64;
            assert!(
                (d.graph.vertex_count() as f64 - target).abs() / target < 0.02,
                "{}: {} vs {}",
                d.spec.name,
                d.graph.vertex_count(),
                target
            );
        }
    }

    #[test]
    fn scaled_generation_shrinks_graphs() {
        let small = DatasetKind::Astro.generate(0.05);
        assert!(small.graph.vertex_count() < 2_000);
        assert!(small.graph.edge_count() > small.graph.vertex_count() / 2);
    }

    #[test]
    fn wikivote_analog_has_single_dominant_core_structure() {
        let d = DatasetKind::WikiVote.generate(0.2);
        let cores = measures::core_numbers(&d.graph);
        // Preferential attachment: one densest core containing many vertices.
        let densest = cores.densest_core_vertices();
        assert!(densest.len() > 10);
    }

    #[test]
    fn grqc_analog_has_multiple_disconnected_dense_cores() {
        let d = DatasetKind::GrQc.generate(0.25);
        let cores = measures::core_numbers(&d.graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let sg = scalarfield::VertexScalarGraph::new(&d.graph, &scalar).unwrap();
        // At a moderately high K there are several disconnected dense cores
        // (the several-high-peaks structure of Figure 6(c)).
        let alpha = (cores.degeneracy as f64 * 0.6).floor().max(3.0);
        let comps = scalarfield::maximal_alpha_components(&sg, alpha);
        assert!(
            comps.len() >= 2,
            "expected several disconnected dense cores at alpha {alpha}, got {}",
            comps.len()
        );
    }

    #[test]
    fn all_specs_are_consistent() {
        for kind in DatasetKind::all() {
            let spec = kind.spec();
            assert!(spec.paper_edges > spec.paper_nodes / 2);
            assert!(!spec.name.is_empty());
            assert!(kind.default_scale() > 0.0 && kind.default_scale() <= 1.0);
        }
    }

    #[test]
    fn file_datasets_load_through_graph_source() {
        let path = std::env::temp_dir().join(format!("bench_dataset_{}.csv", std::process::id()));
        std::fs::write(&path, "source,target,weight\n0,1,1.5\n1,2,2.5\n0,2,3.5\n").unwrap();
        let d = load_dataset(&path, None).unwrap();
        assert_eq!(d.graph.edge_count(), 3);
        assert_eq!(d.edge_weights.as_ref().map(Vec::len), Some(3));
        assert!(d.name.starts_with("bench_dataset"), "{}", d.name);
        // An explicit format overrides detection (and rejects mismatches).
        assert!(load_dataset(&path, Some(GraphFormat::Metis)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dblp_community_dataset_has_four_score_fields() {
        let d = DatasetKind::generate_dblp_communities(0.3);
        assert_eq!(d.scores.len(), 4);
        assert_eq!(d.scores[0].len(), d.graph.vertex_count());
    }
}
