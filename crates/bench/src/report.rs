//! The `BENCH_*.json` perf-baseline schema, environment capture, and the
//! regression comparator behind `scale_ladder --compare`.
//!
//! A baseline file records one run of the scale ladder: a list of rungs, each
//! a full `TerrainPipeline` execution on a generated graph at one
//! [`Parallelism`] setting, with per-stage wall-clock seconds, throughput and
//! the process peak RSS. `PERFORMANCE.md` documents every field; this module
//! is the single source of truth for writing, validating and comparing the
//! format, so the doc, the CI gate and the binary cannot drift apart.
//!
//! [`Parallelism`]: ugraph::par::Parallelism

use serde::Serialize;
use serde_json::Value;

/// Version stamp written into every baseline. Bump when a field changes
/// meaning; the comparator refuses to diff files with mismatched versions.
///
/// v2 added the per-rung `storage` discriminator and the nullable
/// `open_seconds` field (snapshot-open rungs of the zero-copy storage layer).
pub const SCHEMA_VERSION: u64 = 2;

/// One complete ladder run — the top-level object of a `BENCH_*.json` file.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Always [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// ISO date (`YYYY-MM-DD`, UTC) the run started.
    pub created: String,
    /// `git rev-parse --short HEAD` of the working tree, or `"unknown"`.
    pub git_rev: String,
    /// Hardware threads visible to the process at run time.
    pub host_threads: usize,
    /// Operating system the run executed on (`std::env::consts::OS`).
    pub host_os: String,
    /// One entry per (rung, parallelism) pair, ladder order.
    pub rungs: Vec<RungResult>,
}

/// Per-stage wall-clock seconds of one pipeline run, mirroring
/// [`graph_terrain::StageTimings`] with every stage forced.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSeconds {
    /// Computing the scalar field (the measure).
    pub scalar: f64,
    /// Building the scalar tree (Algorithm 1 / 3).
    pub tree: f64,
    /// Merging into the super tree (Algorithm 2).
    pub super_tree: f64,
    /// Deciding on / applying the Section II-E simplification.
    pub simplify: f64,
    /// The nested 2D boundary layout.
    pub layout: f64,
    /// The 3D mesh extrusion.
    pub mesh: f64,
    /// SVG serialization.
    pub svg: f64,
}

impl StageSeconds {
    /// Sum of all stages — the `total_seconds` written per rung.
    pub fn total(&self) -> f64 {
        self.scalar
            + self.tree
            + self.super_tree
            + self.simplify
            + self.layout
            + self.mesh
            + self.svg
    }
}

/// One (rung, parallelism) measurement.
#[derive(Clone, Debug)]
pub struct RungResult {
    /// Ladder rung name (`"1k"`, `"10k"`, ..., `"10M"`).
    pub rung: String,
    /// Generator that produced the graph (`"rmat"`).
    pub generator: String,
    /// Generator scale parameter (the graph has `2^scale` vertices).
    pub scale: u32,
    /// Edge samples requested from the generator.
    pub target_edges: usize,
    /// Realized vertex count of the generated graph.
    pub vertices: usize,
    /// Realized edge count (dedup and self-loop removal make it < target).
    pub edges: usize,
    /// Seconds spent generating the graph (amortized: the graph is generated
    /// once per rung and shared by every parallelism setting).
    pub generate_seconds: f64,
    /// Measure driving the scalar field (`"pagerank"`, `"degree"`, ...).
    pub measure: String,
    /// How the rung obtained its graph: `"generated"` (in-memory RMAT, the
    /// pipeline rungs), `"snapshot-v2"` (binary v2 full deserialize) or
    /// `"snapshot-v3-mapped"` (binary v3 via [`ugraph::MappedCsrGraph`]).
    pub storage: String,
    /// Seconds to reopen the graph from its snapshot (checksum + validation
    /// included). `None` on `"generated"` rungs, which never touch disk.
    pub open_seconds: Option<f64>,
    /// The `Parallelism` setting, in its `parse` round-trip form
    /// (`"serial"`, `"4"`, `"4x128"`).
    pub parallelism: String,
    /// Thread count the setting resolves to.
    pub threads: usize,
    /// Chunk width the setting resolves to.
    pub width: usize,
    /// Per-stage wall-clock seconds.
    pub stages: StageSeconds,
    /// Sum of all stage seconds.
    pub total_seconds: f64,
    /// `edges / total_seconds` — the ladder's throughput headline.
    pub edges_per_second: f64,
    /// Process peak RSS (`VmHWM` from `/proc/self/status`) observed *after*
    /// this rung, in bytes. Monotone over a run; `null` where unavailable.
    pub peak_rss_bytes: Option<u64>,
}

// Hand-written JSON emission: the vendored serde has no derive macros, so
// each report struct writes its own object with the shared field helper
// (also used by the `LOAD_*.json` sibling schema in [`crate::load_report`]).
pub(crate) struct JsonObject<'a> {
    out: &'a mut String,
    indent: usize,
    any: bool,
}

impl<'a> JsonObject<'a> {
    pub(crate) fn new(out: &'a mut String, indent: usize) -> Self {
        out.push('{');
        JsonObject { out, indent, any: false }
    }

    pub(crate) fn field(&mut self, key: &str, value: &dyn Serialize) -> &mut Self {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent + 1));
        key.json_write(self.out, self.indent + 1);
        self.out.push_str(": ");
        value.json_write(self.out, self.indent + 1);
        self
    }

    pub(crate) fn finish(self) {
        if self.any {
            self.out.push('\n');
            self.out.push_str(&"  ".repeat(self.indent));
        }
        self.out.push('}');
    }
}

impl Serialize for StageSeconds {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("scalar", &self.scalar)
            .field("tree", &self.tree)
            .field("super_tree", &self.super_tree)
            .field("simplify", &self.simplify)
            .field("layout", &self.layout)
            .field("mesh", &self.mesh)
            .field("svg", &self.svg);
        obj.finish();
    }
}

impl Serialize for RungResult {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("rung", &self.rung)
            .field("generator", &self.generator)
            .field("scale", &self.scale)
            .field("target_edges", &self.target_edges)
            .field("vertices", &self.vertices)
            .field("edges", &self.edges)
            .field("generate_seconds", &self.generate_seconds)
            .field("measure", &self.measure)
            .field("storage", &self.storage)
            .field("open_seconds", &self.open_seconds)
            .field("parallelism", &self.parallelism)
            .field("threads", &self.threads)
            .field("width", &self.width)
            .field("stages", &self.stages)
            .field("total_seconds", &self.total_seconds)
            .field("edges_per_second", &self.edges_per_second)
            .field("peak_rss_bytes", &self.peak_rss_bytes);
        obj.finish();
    }
}

impl Serialize for BenchReport {
    fn json_write(&self, out: &mut String, indent: usize) {
        let mut obj = JsonObject::new(out, indent);
        obj.field("schema_version", &self.schema_version)
            .field("created", &self.created)
            .field("git_rev", &self.git_rev)
            .field("host_threads", &self.host_threads)
            .field("host_os", &self.host_os)
            .field("rungs", &self.rungs);
        obj.finish();
    }
}

/// Process peak resident set size in bytes, read from the `VmHWM` line of
/// `/proc/self/status`. `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:    123456 kB"
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Short git revision of the working tree, or `"unknown"` when git is
/// unavailable (e.g. a source tarball).
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's `civil_from_days`.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// A schema violation or regression found by [`validate`] / [`compare`].
pub type SchemaError = String;

/// Validate a parsed `BENCH_*.json` document against the schema this module
/// writes. Returns every violation (empty = valid).
pub fn validate(doc: &Value) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    match doc.get("schema_version").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("schema_version {v} != supported {SCHEMA_VERSION}")),
        None => errors.push("missing numeric schema_version".to_string()),
    }
    for key in ["created", "git_rev", "host_os"] {
        if doc.get(key).and_then(Value::as_str).is_none() {
            errors.push(format!("missing string field {key:?}"));
        }
    }
    if doc.get("host_threads").and_then(Value::as_u64).is_none() {
        errors.push("missing numeric field \"host_threads\"".to_string());
    }
    let Some(rungs) = doc.get("rungs").and_then(Value::as_array) else {
        errors.push("missing array field \"rungs\"".to_string());
        return errors;
    };
    for (i, rung) in rungs.iter().enumerate() {
        for key in ["rung", "generator", "measure", "storage", "parallelism"] {
            if rung.get(key).and_then(Value::as_str).is_none() {
                errors.push(format!("rungs[{i}]: missing string field {key:?}"));
            }
        }
        for key in ["scale", "target_edges", "vertices", "edges", "threads", "width"] {
            if rung.get(key).and_then(Value::as_u64).is_none() {
                errors.push(format!("rungs[{i}]: missing numeric field {key:?}"));
            }
        }
        for key in ["generate_seconds", "total_seconds", "edges_per_second"] {
            if rung.get(key).and_then(Value::as_f64).is_none() {
                errors.push(format!("rungs[{i}]: missing numeric field {key:?}"));
            }
        }
        match rung.get("stages") {
            Some(stages) => {
                for key in ["scalar", "tree", "super_tree", "simplify", "layout", "mesh", "svg"] {
                    if stages.get(key).and_then(Value::as_f64).is_none() {
                        errors.push(format!("rungs[{i}].stages: missing numeric field {key:?}"));
                    }
                }
            }
            None => errors.push(format!("rungs[{i}]: missing object field \"stages\"")),
        }
        match rung.get("peak_rss_bytes") {
            Some(v) if v.is_null() || v.as_u64().is_some() => {}
            _ => errors.push(format!("rungs[{i}]: peak_rss_bytes must be a number or null")),
        }
        match rung.get("open_seconds") {
            Some(v) if v.is_null() || v.as_f64().is_some() => {}
            _ => errors.push(format!("rungs[{i}]: open_seconds must be a number or null")),
        }
    }
    errors
}

/// Reference timings below this are treated as noise and never flagged: at
/// sub-10ms scale, allocator and scheduler jitter routinely exceeds 2x. The
/// floor is set so the CI smoke ladder's 10k/100k rungs (tens of
/// milliseconds) are still gated while the trivial 1k rung is not.
pub const COMPARE_NOISE_FLOOR_SECONDS: f64 = 0.01;

/// Compare a current run against a committed reference baseline.
///
/// Rungs are matched by the `(rung, measure, parallelism, storage)` tuple; a
/// rung
/// present in only one file is skipped (ladders may grow). A matched rung is
/// a regression when `current.total_seconds > tolerance ×
/// reference.total_seconds` and the reference is above
/// [`COMPARE_NOISE_FLOOR_SECONDS`]. Returns one human-readable line per
/// regression (empty = pass).
pub fn compare(current: &Value, reference: &Value, tolerance: f64) -> Vec<SchemaError> {
    let mut problems = Vec::new();
    let version = |doc: &Value| doc.get("schema_version").and_then(Value::as_u64);
    if version(current) != version(reference) {
        problems.push(format!(
            "schema_version mismatch: current {:?} vs reference {:?}",
            version(current),
            version(reference)
        ));
        return problems;
    }
    let key_of = |rung: &Value| -> Option<(String, String, String, String)> {
        Some((
            rung.get("rung")?.as_str()?.to_string(),
            rung.get("measure")?.as_str()?.to_string(),
            rung.get("parallelism")?.as_str()?.to_string(),
            rung.get("storage")?.as_str()?.to_string(),
        ))
    };
    let empty = Vec::new();
    let current_rungs = current.get("rungs").and_then(Value::as_array).unwrap_or(&empty);
    let reference_rungs = reference.get("rungs").and_then(Value::as_array).unwrap_or(&empty);
    for reference_rung in reference_rungs {
        let Some(key) = key_of(reference_rung) else { continue };
        let Some(current_rung) = current_rungs.iter().find(|r| key_of(r).as_ref() == Some(&key))
        else {
            continue;
        };
        let reference_total =
            reference_rung.get("total_seconds").and_then(Value::as_f64).unwrap_or(0.0);
        let current_total =
            current_rung.get("total_seconds").and_then(Value::as_f64).unwrap_or(0.0);
        if reference_total < COMPARE_NOISE_FLOOR_SECONDS {
            continue;
        }
        if current_total > tolerance * reference_total {
            problems.push(format!(
                "{}/{}/{}/{}: {:.3}s vs reference {:.3}s ({:.2}x > {:.2}x tolerance)",
                key.0,
                key.1,
                key.2,
                key.3,
                current_total,
                reference_total,
                current_total / reference_total,
                tolerance
            ));
        }
    }
    problems
}

/// Render a [`BenchReport`] as the aligned text table the binary prints (and
/// `PERFORMANCE.md` quotes).
pub fn format_table_for(report: &BenchReport) -> String {
    let rows: Vec<Vec<String>> = report
        .rungs
        .iter()
        .map(|r| {
            vec![
                r.rung.clone(),
                r.storage.clone(),
                r.parallelism.clone(),
                r.vertices.to_string(),
                r.edges.to_string(),
                match r.open_seconds {
                    Some(open) => format!("{open:.3}"),
                    None => "n/a".to_string(),
                },
                format!("{:.3}", r.stages.scalar),
                format!("{:.3}", r.stages.tree + r.stages.super_tree),
                format!(
                    "{:.3}",
                    r.stages.simplify + r.stages.layout + r.stages.mesh + r.stages.svg
                ),
                format!("{:.3}", r.total_seconds),
                format!("{:.0}", r.edges_per_second),
                match r.peak_rss_bytes {
                    Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
                    None => "n/a".to_string(),
                },
            ]
        })
        .collect();
    crate::output::format_table(
        &[
            "rung", "storage", "par", "vertices", "edges", "open_s", "scalar", "tree", "viz",
            "total_s", "edges/s", "rss_MiB",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            created: "2026-08-07".to_string(),
            git_rev: "abc1234".to_string(),
            host_threads: 4,
            host_os: "linux".to_string(),
            rungs: vec![RungResult {
                rung: "1k".to_string(),
                generator: "rmat".to_string(),
                scale: 7,
                target_edges: 1_000,
                vertices: 128,
                edges: 900,
                generate_seconds: 0.001,
                measure: "pagerank".to_string(),
                storage: "generated".to_string(),
                open_seconds: None,
                parallelism: "serial".to_string(),
                threads: 1,
                width: 32,
                stages: StageSeconds {
                    scalar: 0.1,
                    tree: 0.2,
                    super_tree: 0.3,
                    simplify: 0.0,
                    layout: 0.01,
                    mesh: 0.02,
                    svg: 0.03,
                },
                total_seconds: 0.66,
                edges_per_second: 1363.6,
                peak_rss_bytes: Some(10 * 1024 * 1024),
            }],
        }
    }

    #[test]
    fn report_serializes_and_validates_round_trip() {
        let json = serde_json::to_string_pretty(&sample_report()).unwrap();
        let doc = serde_json::from_str(&json).unwrap();
        assert_eq!(validate(&doc), Vec::<String>::new(), "{json}");
        let rung = &doc.get("rungs").unwrap().as_array().unwrap()[0];
        assert_eq!(rung.get("edges").unwrap().as_u64(), Some(900));
        assert_eq!(rung.get("stages").unwrap().get("tree").unwrap().as_f64(), Some(0.2));
        assert_eq!(rung.get("parallelism").unwrap().as_str(), Some("serial"));
    }

    #[test]
    fn missing_rss_serializes_as_null_and_stays_valid() {
        let mut report = sample_report();
        report.rungs[0].peak_rss_bytes = None;
        let json = serde_json::to_string_pretty(&report).unwrap();
        let doc = serde_json::from_str(&json).unwrap();
        assert!(validate(&doc).is_empty());
        assert!(doc.get("rungs").unwrap().as_array().unwrap()[0]
            .get("peak_rss_bytes")
            .unwrap()
            .is_null());
    }

    #[test]
    fn validate_reports_schema_violations() {
        let doc = serde_json::from_str(r#"{"schema_version": 99, "rungs": [{}]}"#).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("schema_version 99")));
        assert!(errors.iter().any(|e| e.contains("rungs[0]")));
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let reference = serde_json::to_string_pretty(&sample_report()).unwrap();
        let reference = serde_json::from_str(&reference).unwrap();

        // Identical run: no regressions.
        assert!(compare(&reference, &reference, 2.0).is_empty());

        // 3x slower: flagged at 2x tolerance.
        let mut slow = sample_report();
        slow.rungs[0].total_seconds *= 3.0;
        let slow = serde_json::from_str(&serde_json::to_string_pretty(&slow).unwrap()).unwrap();
        let problems = compare(&slow, &reference, 2.0);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("1k/pagerank/serial"), "{}", problems[0]);

        // A sub-noise-floor reference rung never flags.
        let mut tiny = sample_report();
        tiny.rungs[0].total_seconds = 0.005;
        let tiny_ref = serde_json::from_str(&serde_json::to_string_pretty(&tiny).unwrap()).unwrap();
        tiny.rungs[0].total_seconds = 1.0;
        let tiny_cur = serde_json::from_str(&serde_json::to_string_pretty(&tiny).unwrap()).unwrap();
        assert!(compare(&tiny_cur, &tiny_ref, 2.0).is_empty());

        // Rungs only in the reference are skipped, not errors.
        let mut extra = sample_report();
        extra.rungs[0].rung = "10k".to_string();
        let extra = serde_json::from_str(&serde_json::to_string_pretty(&extra).unwrap()).unwrap();
        assert!(compare(&extra, &reference, 2.0).is_empty());
    }

    #[test]
    fn environment_capture_works_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
        let date = utc_date();
        assert_eq!(date.len(), 10);
        assert_eq!(&date[4..5], "-");
        assert!(!git_short_rev().is_empty());
    }

    #[test]
    fn civil_date_conversion_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(20_672), (2026, 8, 7)); // 2026-08-07
    }
}
