//! Timed end-to-end pipeline runs — the measurements behind Table II.
//!
//! Table II reports, per dataset and scalar field:
//!
//! * `Nt` — number of nodes of the final super (edge) scalar tree;
//! * `tc` — time to construct the tree (Algorithm 1 or 3, plus Algorithm 2);
//! * `te` — time of the naive dual-graph edge-tree construction (edge scalars
//!   only);
//! * `tv` — time to turn the tree into the rendered terrain (here: 2D layout +
//!   3D mesh + SVG serialization).
//!
//! The helpers here run those stages with wall-clock timing and return a
//! report struct the Table II binary and the Criterion benches both use.

use measures::{core_numbers, truss_numbers_with};
use scalarfield::{
    build_super_tree, edge_scalar_tree, edge_scalar_tree_naive, simplify_super_tree,
    vertex_scalar_tree, EdgeScalarGraph, VertexScalarGraph,
};
use std::time::Instant;
use terrain::{build_terrain_mesh, layout_super_tree, terrain_to_svg, LayoutConfig, MeshConfig};
use ugraph::par::Parallelism;
use ugraph::CsrGraph;

/// Report of a vertex-scalar (K-Core) pipeline run.
#[derive(Clone, Debug)]
pub struct VertexPipelineReport {
    /// Number of super tree nodes (`Nt`).
    pub super_tree_nodes: usize,
    /// Seconds to compute the scalar field (K-Core decomposition).
    pub scalar_seconds: f64,
    /// Seconds to build the scalar tree + super tree (`tc`).
    pub tree_seconds: f64,
    /// Seconds to lay out, mesh and serialize the terrain (`tv`).
    pub visualization_seconds: f64,
    /// Number of triangles in the rendered mesh.
    pub mesh_triangles: usize,
}

/// Report of an edge-scalar (K-Truss) pipeline run.
#[derive(Clone, Debug)]
pub struct EdgePipelineReport {
    /// Number of super tree nodes (`Nt`).
    pub super_tree_nodes: usize,
    /// Seconds to compute the scalar field (K-Truss decomposition).
    pub scalar_seconds: f64,
    /// Seconds for Algorithm 3 + Algorithm 2 (`tc`).
    pub tree_seconds: f64,
    /// Seconds for the naive dual-graph method + Algorithm 2 (`te`),
    /// `None` if it was skipped (too large).
    pub naive_tree_seconds: Option<f64>,
    /// Seconds to lay out, mesh and serialize the terrain (`tv`).
    pub visualization_seconds: f64,
}

/// Maximum number of super-tree nodes rendered without simplification; larger
/// trees are simplified first, exactly as Section II-E prescribes.
const RENDER_NODE_BUDGET: usize = 4_000;

/// Run the K-Core terrain pipeline on a graph, timing each stage.
/// Single-threaded; see [`run_vertex_pipeline_with`].
pub fn run_vertex_pipeline(graph: &CsrGraph) -> VertexPipelineReport {
    run_vertex_pipeline_with(graph, Parallelism::Serial)
}

/// [`run_vertex_pipeline`] with a [`Parallelism`] budget.
///
/// The K-Core bucket peeling, the union–find tree sweep and the layout are
/// inherently sequential, so `parallelism` is currently accepted for
/// interface symmetry with [`run_edge_pipeline_with`] (where the
/// triangle-support stage does parallelize) and for future stages; reports
/// are identical for every setting.
pub fn run_vertex_pipeline_with(
    graph: &CsrGraph,
    parallelism: Parallelism,
) -> VertexPipelineReport {
    let _ = parallelism;
    let t0 = Instant::now();
    let cores = core_numbers(graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let scalar_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sg = VertexScalarGraph::new(graph, &scalar).expect("scalar field matches graph");
    let tree = vertex_scalar_tree(&sg);
    let super_tree = build_super_tree(&tree);
    let tree_seconds = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let render_tree = if super_tree.node_count() > RENDER_NODE_BUDGET {
        simplify_super_tree(&super_tree, 64)
    } else {
        super_tree.clone()
    };
    let layout = layout_super_tree(&render_tree, &LayoutConfig::default());
    let mesh = build_terrain_mesh(&render_tree, &layout, &MeshConfig::default());
    let svg = terrain_to_svg(&mesh, 900.0, 700.0);
    let visualization_seconds = t2.elapsed().as_secs_f64();
    std::hint::black_box(&svg);

    VertexPipelineReport {
        super_tree_nodes: super_tree.node_count(),
        scalar_seconds,
        tree_seconds,
        visualization_seconds,
        mesh_triangles: mesh.triangle_count(),
    }
}

/// Run the K-Truss terrain pipeline on a graph, timing each stage.
/// Single-threaded; see [`run_edge_pipeline_with`].
///
/// `run_naive` controls whether the dual-graph baseline (`te`) is measured;
/// on graphs with high-degree vertices it can be orders of magnitude slower
/// than Algorithm 3, which is exactly the point of Table II.
pub fn run_edge_pipeline(graph: &CsrGraph, run_naive: bool) -> EdgePipelineReport {
    run_edge_pipeline_with(graph, run_naive, Parallelism::Serial)
}

/// [`run_edge_pipeline`] with a [`Parallelism`] budget.
///
/// The budget currently accelerates the K-Truss scalar stage (its
/// triangle-support initialization is parallel over edges via
/// [`measures::truss_numbers_with`]); the report's numbers are identical for
/// every setting, only the wall-clock timings change.
pub fn run_edge_pipeline_with(
    graph: &CsrGraph,
    run_naive: bool,
    parallelism: Parallelism,
) -> EdgePipelineReport {
    let t0 = Instant::now();
    let truss = truss_numbers_with(graph, parallelism);
    let scalar: Vec<f64> = truss.truss.iter().map(|&t| t as f64).collect();
    let scalar_seconds = t0.elapsed().as_secs_f64();

    let sg = EdgeScalarGraph::new(graph, &scalar).expect("scalar field matches graph");

    let t1 = Instant::now();
    let tree = edge_scalar_tree(&sg);
    let super_tree = build_super_tree(&tree);
    let tree_seconds = t1.elapsed().as_secs_f64();

    let naive_tree_seconds = if run_naive {
        let t = Instant::now();
        let naive = edge_scalar_tree_naive(&sg);
        let naive_super = build_super_tree(&naive);
        std::hint::black_box(naive_super.node_count());
        Some(t.elapsed().as_secs_f64())
    } else {
        None
    };

    let t2 = Instant::now();
    let render_tree = if super_tree.node_count() > RENDER_NODE_BUDGET {
        simplify_super_tree(&super_tree, 64)
    } else {
        super_tree.clone()
    };
    let layout = layout_super_tree(&render_tree, &LayoutConfig::default());
    let mesh = build_terrain_mesh(&render_tree, &layout, &MeshConfig::default());
    let svg = terrain_to_svg(&mesh, 900.0, 700.0);
    let visualization_seconds = t2.elapsed().as_secs_f64();
    std::hint::black_box(&svg);

    EdgePipelineReport {
        super_tree_nodes: super_tree.node_count(),
        scalar_seconds,
        tree_seconds,
        naive_tree_seconds,
        visualization_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn vertex_pipeline_produces_consistent_report() {
        let d = DatasetKind::GrQc.generate(0.15);
        let report = run_vertex_pipeline(&d.graph);
        assert!(report.super_tree_nodes > 1);
        assert!(report.super_tree_nodes <= d.graph.vertex_count());
        assert!(report.mesh_triangles >= 2 * report.super_tree_nodes.min(RENDER_NODE_BUDGET));
        assert!(report.tree_seconds >= 0.0 && report.visualization_seconds >= 0.0);
    }

    #[test]
    fn edge_pipeline_fast_beats_naive_on_skewed_graphs() {
        // WikiVote analog: preferential attachment with hubs, where the dual
        // graph explodes quadratically in hub degree.
        let d = DatasetKind::WikiVote.generate(0.08);
        let report = run_edge_pipeline(&d.graph, true);
        assert!(report.super_tree_nodes >= 1);
        let naive = report.naive_tree_seconds.unwrap();
        assert!(
            naive >= report.tree_seconds,
            "naive ({naive:.4}s) should not beat Algorithm 3 ({:.4}s)",
            report.tree_seconds
        );
    }

    #[test]
    fn edge_pipeline_can_skip_naive() {
        let d = DatasetKind::Ppi.generate(0.1);
        let report = run_edge_pipeline(&d.graph, false);
        assert!(report.naive_tree_seconds.is_none());
        assert!(report.super_tree_nodes >= 1);
    }
}
